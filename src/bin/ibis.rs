//! `ibis` — command-line front end for the in-situ bitmap pipeline.
//!
//! ```text
//! ibis insitu --sim heat3d --steps 40 --select 10 --cores 16 [--machine xeon|mic]
//!             [--method bitmaps|full|sample:<pct>] [--allocation shared|auto|<sim>:<bm>]
//!             [--out DIR]
//! ibis mine   [--grid LONxLATxDEPTH] [--bins N] [--t1 X] [--t2 Y] [--unit N] [--top N]
//! ibis query  --var-a NAME --var-b NAME [--value-a LO:HI] [--value-b LO:HI]
//!             [--region LO:HI] [--grid LONxLATxDEPTH]
//! ibis query  --store DIR --batch FILE [--cache-mb N] [--json-out PATH]
//! ```
//!
//! `insitu --out DIR` persists the selected steps' bitmap indices as
//! `.ibis` files that `ibis::insitu::codec::decode_index` (and the
//! `offline_postanalysis` example) can reload.

use ibis::analysis::{
    correlation_query, correlation_query_mapped, mine_index, Metric, MiningConfig, SubsetQuery,
};
use ibis::core::{Binner, BitmapIndex, RowOrder, ZOrderLayout};
use ibis::datagen::{
    Heat3D, Heat3DConfig, LuleshConfig, MiniLulesh, OceanConfig, OceanModel, Simulation,
};
use ibis::insitu::{
    auto_allocate, is_sharded, run_pipeline, suggest_row_order, CachedStore, CoreAllocation,
    EngineBackend, LocalDisk, MachineModel, MaintenanceConfig, PipelineConfig, QueryEngine,
    QueryServer, Reduction, RobustnessConfig, ScalingModel, ServeConfig, ShardedEngine,
    ShardedWriter, SocketServer, Store, StoreWriter,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "insitu" => cmd_insitu(&flags),
        "mine" => cmd_mine(&flags),
        "query" => cmd_query(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    let result = result.and_then(|()| write_obs_snapshot(&flags));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `--obs-json PATH`: dump the run's metrics snapshot as JSON. With the
/// `obs` feature off the snapshot is empty — the flag still works, the
/// report just contains no metric families.
fn write_obs_snapshot(flags: &Flags) -> Result<(), String> {
    let Some(path) = flags.get("obs-json") else {
        return Ok(());
    };
    let json = ibis::obs::global().snapshot().to_json(2);
    std::fs::write(path, json.as_bytes()).map_err(|e| format!("--obs-json: {e}"))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

const USAGE: &str = "\
ibis — in-situ bitmap generation and bitmap-only analysis

USAGE:
  ibis insitu [--sim heat3d|lulesh] [--steps N] [--select K] [--cores C]
              [--machine xeon|mic] [--method bitmaps|full|sample:<pct>]
              [--allocation shared|auto|<simcores>:<bmcores>] [--out DIR]
              [--shards K] [--lossy-fpr X]
              [--row-order identity|zorder|hilbert|graybin|histsorted|auto]
  ibis mine   [--grid LONxLATxDEPTH] [--bins N] [--t1 X] [--t2 Y]
              [--unit N] [--top N]
  ibis query  --var-a NAME --var-b NAME [--value-a LO:HI] [--value-b LO:HI]
              [--region LO:HI] [--grid LONxLATxDEPTH]
              [--row-order identity|zorder|hilbert|graybin|histsorted]
  ibis query  --store DIR --batch FILE [--cache-mb N] [--json-out PATH]
              [--lossy-fpr X]
  ibis serve  --store DIR [--addr HOST:PORT] [--workers N] [--queue N]
              [--cache-mb N] [--deadline-ms N] [--max-conns N] [--conns N]
              [--shards K] [--maintain-ms N]
  ibis loadgen --addr HOST:PORT --store DIR [--requests N] [--clients N]
              [--deadline-ms N] [--seed N]
  ibis help

`--out DIR --shards K` persists each selected step as K spatial shards
(each its own durable store); `query --store` and `serve --store` detect
a sharded directory automatically and run scatter-gather execution.
`serve --shards K` asserts the expected shard count; `--maintain-ms N`
runs background compaction/eviction maintenance every N ms.

`--lossy-fpr X` (X in [1e-4, 1e-1]): on `insitu --out`, also persist each
variable's lossy superset companion (flat stores only); on `query --store`,
answer subset queries as cheap lossy filter + exact refine when a
companion at or below X is present — answers stay byte-identical.

Any command also accepts --obs-json PATH to dump the run's metrics
snapshot (empty when built with --no-default-features).";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {a:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?
            .clone();
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn get_usize(flags: &Flags, name: &str, default: usize) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
    }
}

fn get_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
    }
}

/// `--lossy-fpr X`: the false-positive-rate bound for lossy superset
/// companions. 0.0 (the default) means "off"; anything else must sit in
/// the supported `[FPR_MIN, FPR_MAX]` band.
fn get_lossy_fpr(flags: &Flags) -> Result<f64, String> {
    let fpr = get_f64(flags, "lossy-fpr", 0.0)?;
    if fpr != 0.0 && !ibis::core::valid_fpr(fpr) {
        return Err(format!(
            "--lossy-fpr: {fpr} outside [{:e}, {:e}]",
            ibis::core::FPR_MIN,
            ibis::core::FPR_MAX
        ));
    }
    Ok(fpr)
}

fn get_range(flags: &Flags, name: &str) -> Result<Option<(f64, f64)>, String> {
    let Some(v) = flags.get(name) else {
        return Ok(None);
    };
    let (lo, hi) = v
        .split_once(':')
        .ok_or_else(|| format!("--{name}: expected LO:HI, got {v:?}"))?;
    let lo: f64 = lo
        .parse()
        .map_err(|_| format!("--{name}: bad number {lo:?}"))?;
    let hi: f64 = hi
        .parse()
        .map_err(|_| format!("--{name}: bad number {hi:?}"))?;
    if hi <= lo {
        return Err(format!("--{name}: empty range {v:?}"));
    }
    Ok(Some((lo, hi)))
}

/// `--row-order NAME`: the compression-aware row ordering applied before
/// bitmap generation. `auto` is only meaningful where a probe simulation
/// exists (`ibis insitu`); callers that can't probe pass `allow_auto =
/// false` and `auto` becomes a usage error.
fn get_row_order(flags: &Flags, allow_auto: bool) -> Result<Option<RowOrder>, String> {
    match flags.get("row-order").map(String::as_str) {
        None => Ok(Some(RowOrder::Identity)),
        Some("auto") if allow_auto => Ok(None),
        Some(name) => RowOrder::parse(name).map(Some).ok_or_else(|| {
            format!(
                "--row-order: unknown order {name:?} (identity|zorder|hilbert|graybin|histsorted)"
            )
        }),
    }
}

fn get_grid(
    flags: &Flags,
    default: (usize, usize, usize),
) -> Result<(usize, usize, usize), String> {
    let Some(v) = flags.get("grid") else {
        return Ok(default);
    };
    let parts: Vec<&str> = v.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("--grid: expected LONxLATxDEPTH, got {v:?}"));
    }
    let dims: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse()).collect();
    let dims = dims.map_err(|_| format!("--grid: bad dimensions {v:?}"))?;
    Ok((dims[0], dims[1], dims[2]))
}

/// `--out` destination: one flat durable store, or K spatial shards.
enum OutWriter {
    Flat(StoreWriter),
    Sharded(ShardedWriter),
}

impl OutWriter {
    fn put(
        &mut self,
        step: usize,
        variable: &str,
        index: &BitmapIndex,
    ) -> ibis::insitu::Result<()> {
        match self {
            OutWriter::Flat(w) => w.put(step, variable, index),
            OutWriter::Sharded(w) => w.put(step, variable, index),
        }
    }

    fn put_order(
        &mut self,
        step: usize,
        order: RowOrder,
        perm: &ibis::core::RowPermutation,
    ) -> ibis::insitu::Result<()> {
        match self {
            OutWriter::Flat(w) => w.put_order(step, order, perm),
            OutWriter::Sharded(w) => w.put_order(step, order, perm),
        }
    }

    fn put_lossy(
        &mut self,
        step: usize,
        variable: &str,
        lossy: &BitmapIndex,
        fpr: f64,
        stats: &ibis::core::LossyStats,
    ) -> ibis::insitu::Result<()> {
        match self {
            OutWriter::Flat(w) => w.put_lossy(step, variable, lossy, fpr, stats),
            // cmd_insitu rejects --lossy-fpr with --shards > 1 up front
            OutWriter::Sharded(_) => unreachable!("lossy companions need a flat store"),
        }
    }

    fn finish(self) -> ibis::insitu::Result<std::path::PathBuf> {
        match self {
            OutWriter::Flat(w) => w.finish(),
            OutWriter::Sharded(w) => w.finish(),
        }
    }
}

fn cmd_insitu(flags: &Flags) -> Result<(), String> {
    let sim_name = flags.get("sim").map(String::as_str).unwrap_or("heat3d");
    let steps = get_usize(flags, "steps", 40)?;
    let select_k = get_usize(flags, "select", (steps / 4).max(1))?;
    let machine = match flags.get("machine").map(String::as_str).unwrap_or("xeon") {
        "xeon" => MachineModel::xeon32(),
        "mic" => MachineModel::mic60(),
        other => return Err(format!("--machine: unknown platform {other:?}")),
    };
    let cores = get_usize(flags, "cores", machine.total_cores.min(16))?;
    if cores == 0 || cores > machine.total_cores {
        return Err(format!("--cores must be 1..={}", machine.total_cores));
    }

    let reduction = match flags.get("method").map(String::as_str).unwrap_or("bitmaps") {
        "bitmaps" => Reduction::Bitmaps,
        "full" => Reduction::FullData,
        m if m.starts_with("sample:") => {
            let pct: f64 = m["sample:".len()..]
                .parse()
                .map_err(|_| format!("--method: bad sample level {m:?}"))?;
            if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                return Err("--method sample:<pct> needs 0 < pct <= 100".into());
            }
            Reduction::Sampling {
                percent: pct,
                method: ibis::analysis::SamplingMethod::Stride,
            }
        }
        other => return Err(format!("--method: unknown method {other:?}")),
    };

    // Build the simulation + per-field binners + scaling profile.
    let (mut sim, binners, metric, scaling): (
        Box<dyn Simulation>,
        Vec<Binner>,
        Metric,
        ScalingModel,
    ) = match sim_name {
        "heat3d" => (
            Box::new(Heat3D::new(Heat3DConfig::default())),
            vec![Binner::precision(-1.0, 101.0, 0)],
            Metric::ConditionalEntropy,
            ScalingModel::heat3d(),
        ),
        "lulesh" => {
            let cfg = LuleshConfig::default();
            let mut probe = MiniLulesh::new(cfg.clone());
            let probe_steps = probe.run(3);
            let binners = (0..probe_steps[0].fields.len())
                .map(|f| {
                    let all: Vec<f64> = probe_steps
                        .iter()
                        .flat_map(|s| s.fields[f].data.iter().copied())
                        .collect();
                    Binner::fit(&all, 48)
                })
                .collect();
            (
                Box::new(MiniLulesh::new(cfg)),
                binners,
                Metric::EmdSpatial,
                ScalingModel::lulesh(),
            )
        }
        other => return Err(format!("--sim: unknown simulation {other:?}")),
    };

    let allocation = match flags
        .get("allocation")
        .map(String::as_str)
        .unwrap_or("shared")
    {
        "shared" => CoreAllocation::Shared,
        "auto" => {
            if cores < 2 {
                return Err("--allocation auto needs at least 2 cores".into());
            }
            auto_allocate(&mut sim, &binners, &machine, cores, 2)
        }
        split => {
            let (s, b) = split
                .split_once(':')
                .ok_or_else(|| format!("--allocation: expected shared|auto|S:B, got {split:?}"))?;
            let s: usize = s
                .parse()
                .map_err(|_| "--allocation: bad core count".to_string())?;
            let b: usize = b
                .parse()
                .map_err(|_| "--allocation: bad core count".to_string())?;
            CoreAllocation::Separate {
                sim_cores: s,
                bitmap_cores: b,
            }
        }
    };

    let row_order = match get_row_order(flags, true)? {
        Some(order) => order,
        None => {
            // `auto`: probe one step of a fresh simulation and keep the
            // order whose reordered index comes out smallest.
            let mut probe: Box<dyn Simulation> = match sim_name {
                "heat3d" => Box::new(Heat3D::new(Heat3DConfig::default())),
                _ => Box::new(MiniLulesh::new(LuleshConfig::default())),
            };
            let dims = probe.grid_dims();
            let out = probe.step();
            let order = suggest_row_order(&out, &binners[0], dims);
            println!("row order (auto): {}", order.name());
            order
        }
    };

    let cfg = PipelineConfig {
        machine: machine.clone(),
        cores,
        allocation,
        reduction,
        steps,
        select_k,
        metric,
        binners: binners.clone(),
        per_step_precision: None,
        row_order,
        queue_capacity: 4,
        sim_scaling: scaling,
        robustness: RobustnessConfig::default(),
    };
    let disk = LocalDisk::new(machine.disk_bw);
    println!(
        "running {sim_name}: {steps} steps, selecting {select_k}, {cores} cores on {} ({:?})",
        machine.name, cfg.allocation
    );
    let report = run_pipeline(sim, &cfg, &disk).map_err(|e| e.to_string())?;

    println!("\nselected steps: {:?}", report.selected);
    println!(
        "phases (modeled s): simulate {:.3}  reduce {:.3}  select {:.3}  output {:.3}",
        report.phases.simulate, report.phases.reduce, report.phases.select, report.phases.output
    );
    println!(
        "total (modeled) {:.3}s   wall {:.3}s   peak memory {:.2} MB   written {:.2} MB",
        report.total_modeled,
        report.wall_seconds,
        report.peak_memory_bytes as f64 / 1e6,
        report.bytes_written as f64 / 1e6
    );

    // Optionally persist the selected steps' bitmaps for post-analysis,
    // flat or split into K spatial shards (each its own durable store).
    if let Some(dir) = flags.get("out") {
        if !matches!(cfg.reduction, Reduction::Bitmaps) {
            return Err("--out requires --method bitmaps".into());
        }
        let shards = get_usize(flags, "shards", 1)?;
        let lossy_fpr = get_lossy_fpr(flags)?;
        if lossy_fpr > 0.0 && shards > 1 {
            return Err("--lossy-fpr: lossy companions need a flat store (--shards 1)".into());
        }
        let mut store = if shards > 1 {
            OutWriter::Sharded(
                ShardedWriter::create(dir, shards).map_err(|e| format!("--out: {e}"))?,
            )
        } else {
            OutWriter::Flat(StoreWriter::create(dir).map_err(|e| format!("--out: {e}"))?)
        };
        // re-simulate the selected steps to materialize their indices
        // (the pipeline freed them after writing the modeled bytes)
        let mut sim2: Box<dyn Simulation> = match sim_name {
            "heat3d" => Box::new(Heat3D::new(Heat3DConfig::default())),
            _ => Box::new(MiniLulesh::new(LuleshConfig::default())),
        };
        let dims: Vec<usize> = sim2.grid_dims().map(|d| d.to_vec()).unwrap_or_default();
        for step in 0..steps {
            let out = sim2.step();
            if !report.selected.contains(&step) {
                continue;
            }
            // Same per-step permutation the pipeline would apply: derived
            // from the first field, shared by every variable of the step.
            let perm = match out.fields.first() {
                Some(f0) if out.fields.iter().all(|f| f.data.len() == f0.data.len()) => {
                    row_order.permutation(&dims, &binners[0], &f0.data)
                }
                _ => None,
            };
            for (f, binner) in out.fields.iter().zip(&binners) {
                let idx = match &perm {
                    Some(p) => BitmapIndex::build_permuted(&f.data, binner.clone(), p),
                    None => BitmapIndex::build(&f.data, binner.clone()),
                };
                store
                    .put(step, f.name, &idx)
                    .map_err(|e| format!("--out: {e}"))?;
                if lossy_fpr > 0.0 {
                    let (lossy, stats) = idx.lossy(lossy_fpr);
                    store
                        .put_lossy(step, f.name, &lossy, lossy_fpr, &stats)
                        .map_err(|e| format!("--out: {e}"))?;
                }
            }
            if let Some(p) = &perm {
                store
                    .put_order(step, row_order, p)
                    .map_err(|e| format!("--out: {e}"))?;
            }
        }
        let dir = store.finish().map_err(|e| format!("--out: {e}"))?;
        println!("persisted selected indices to {}", dir.display());
    }
    Ok(())
}

fn cmd_mine(flags: &Flags) -> Result<(), String> {
    let (nlon, nlat, ndepth) = get_grid(flags, (128, 96, 2))?;
    let bins = get_usize(flags, "bins", 32)?;
    let t1 = get_f64(flags, "t1", 0.002)?;
    let t2 = get_f64(flags, "t2", 0.08)?;
    let unit = get_usize(flags, "unit", 512)? as u64;
    let top = get_usize(flags, "top", 10)?;

    let cfg = OceanConfig {
        nlon,
        nlat,
        ndepth,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg);
    let z = ZOrderLayout::new(&[nlon, nlat, ndepth]);
    let t = z.reorder(&ocean.variable("temperature"));
    let s = z.reorder(&ocean.variable("salinity"));
    let bt = Binner::fit(&t, bins);
    let bs = Binner::fit(&s, bins);
    let it = BitmapIndex::build(&t, bt.clone());
    let is = BitmapIndex::build(&s, bs.clone());
    let result = mine_index(
        &it,
        &is,
        &MiningConfig {
            value_threshold: t1,
            spatial_threshold: t2,
            unit_size: unit,
        },
    );
    println!(
        "mined temperature x salinity on {nlon}x{nlat}x{ndepth}: {} pairs evaluated, {} pruned, {} subsets",
        result.pairs_evaluated, result.pairs_pruned, result.subsets.len()
    );
    println!(
        "\n{:<26} {:<26} {:>6} {:>9}",
        "temperature range", "salinity range", "unit", "MI(bits)"
    );
    for sub in result.subsets.iter().take(top) {
        let (tl, th) = bt.bin_range(sub.bin_a);
        let (sl, sh) = bs.bin_range(sub.bin_b);
        println!(
            "[{tl:8.3}, {th:8.3})       [{sl:8.3}, {sh:8.3})       {:>6} {:>9.4}",
            sub.unit, sub.spatial_mi
        );
    }
    Ok(())
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    if flags.contains_key("store") || flags.contains_key("batch") {
        return cmd_query_store(flags);
    }
    let (nlon, nlat, ndepth) = get_grid(flags, (128, 96, 2))?;
    let var_a = flags.get("var-a").ok_or("--var-a is required")?;
    let var_b = flags.get("var-b").ok_or("--var-b is required")?;
    let cfg = OceanConfig {
        nlon,
        nlat,
        ndepth,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg);
    let known = ibis::datagen::OCEAN_FIELDS;
    for v in [var_a, var_b] {
        if !known.contains(&v.as_str()) {
            return Err(format!("unknown variable {v:?}; available: {known:?}"));
        }
    }
    let a = ocean.variable(var_a);
    let b = ocean.variable(var_b);
    let ba = Binner::fit(&a, 48);
    let bb = Binner::fit(&b, 48);
    // One shared permutation keeps both variables row-aligned; answers are
    // identical to identity order (region predicates map through the
    // inverse), only the index sizes change.
    let order = get_row_order(flags, false)?.unwrap_or(RowOrder::Identity);
    let perm = order.permutation(&[ndepth, nlat, nlon], &ba, &a);
    let (ia, ib) = match &perm {
        Some(p) => (
            BitmapIndex::build_permuted(&a, ba, p),
            BitmapIndex::build_permuted(&b, bb, p),
        ),
        None => (BitmapIndex::build(&a, ba), BitmapIndex::build(&b, bb)),
    };

    let mut qa = SubsetQuery::all();
    let mut qb = SubsetQuery::all();
    if let Some((lo, hi)) = get_range(flags, "value-a")? {
        qa = qa.with_value(lo, hi);
    }
    if let Some((lo, hi)) = get_range(flags, "value-b")? {
        qb = qb.with_value(lo, hi);
    }
    if let Some((lo, hi)) = get_range(flags, "region")? {
        let n = ia.len();
        let (lo, hi) = (lo as u64, (hi as u64).min(n));
        if lo >= hi {
            return Err("--region: empty after clamping".into());
        }
        qa = qa.with_region(lo..hi);
        qb = qb.with_region(lo..hi);
    }
    let ans = match &perm {
        Some(p) => correlation_query_mapped(&ia, &ib, &qa, &qb, p),
        None => correlation_query(&ia, &ib, &qa, &qb),
    }
    .map_err(|e| e.to_string())?;
    println!("{var_a} x {var_b}: {} elements selected", ans.selected);
    println!("mutual information:   {:.4} bits", ans.mutual_information);
    println!("conditional entropy:  {:.4} bits", ans.conditional_entropy);
    match ans.pearson {
        Some(r) => println!("approx. Pearson r:    {r:+.4}"),
        None => println!("approx. Pearson r:    undefined (constant variable)"),
    }
    if let (Some(ma), Some(mb)) = (ans.mean_a, ans.mean_b) {
        println!(
            "means: {var_a} = {:.3} ± {:.3}   {var_b} = {:.3} ± {:.3}",
            ma.value, ma.bound, mb.value, mb.bound
        );
    }
    Ok(())
}

/// Opens `dir` as the right engine backend: scatter-gather over shards
/// when the directory holds a `SHARDS` file, the flat engine otherwise.
fn open_backend(dir: &str, cache_bytes: u64, lossy_fpr: f64) -> Result<EngineBackend, String> {
    if is_sharded(dir) {
        if lossy_fpr > 0.0 {
            return Err("--lossy-fpr: sharded stores carry no lossy companions".into());
        }
        let engine =
            ShardedEngine::open(dir, cache_bytes).map_err(|e| format!("--store {dir}: {e}"))?;
        Ok(engine.into())
    } else {
        let store = Store::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
        let mut engine = QueryEngine::new(CachedStore::new(store, cache_bytes));
        if lossy_fpr > 0.0 {
            engine = engine.with_lossy_fpr(lossy_fpr);
        }
        Ok(engine.into())
    }
}

/// `ibis query --store DIR --batch FILE`: run a JSON batch of
/// subset/correlation queries against a finished run directory through the
/// cached engine, emitting the JSON answers (stdout, or `--json-out PATH`).
/// A malformed batch or an unopenable store fails the command; individual
/// bad queries come back inline as `{"error": ...}` without voiding the
/// rest of the batch.
fn cmd_query_store(flags: &Flags) -> Result<(), String> {
    let dir = flags.get("store").ok_or("--store DIR is required")?;
    let batch = flags.get("batch").ok_or("--batch FILE is required")?;
    let cache_mb = get_usize(flags, "cache-mb", 256)?;
    let text = std::fs::read_to_string(batch).map_err(|e| format!("--batch {batch}: {e}"))?;
    let engine = open_backend(dir, (cache_mb as u64) << 20, get_lossy_fpr(flags)?)?;
    let answers = engine.run_batch_json(&text).map_err(|e| e.to_string())?;
    match flags.get("json-out") {
        Some(path) => {
            std::fs::write(path, answers.as_bytes())
                .map_err(|e| format!("--json-out {path}: {e}"))?;
            eprintln!("wrote answers to {path}");
        }
        None => println!("{answers}"),
    }
    let st = engine.cache_stats();
    eprintln!(
        "cache: {} hits, {} misses, {} evictions, {:.2} MB resident",
        st.hits,
        st.misses,
        st.evictions,
        st.resident_bytes as f64 / 1e6
    );
    Ok(())
}

/// `ibis serve --store DIR`: serve the store's queries over TCP with the
/// full overload-control layer (bounded admission, deadlines, coalescing).
/// With `--conns N` the server exits once N connections have completed —
/// a deterministic stop for smoke tests; otherwise it runs until killed.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let dir = flags.get("store").ok_or("--store DIR is required")?;
    let addr = flags
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7171");
    let cache_mb = get_usize(flags, "cache-mb", 256)?;
    let mut cfg = ServeConfig {
        workers: get_usize(flags, "workers", 4)?,
        queue_capacity: get_usize(flags, "queue", 64)?,
        max_connections: get_usize(flags, "max-conns", 256)?,
        ..ServeConfig::default()
    };
    let deadline_ms = get_usize(flags, "deadline-ms", 0)?;
    if deadline_ms > 0 {
        cfg.default_deadline = Some(Duration::from_millis(deadline_ms as u64));
    }
    let stop_after = get_usize(flags, "conns", 0)? as u64;
    let maintain_ms = get_usize(flags, "maintain-ms", 0)? as u64;

    let engine = open_backend(dir, (cache_mb as u64) << 20, get_lossy_fpr(flags)?)?;
    let want_shards = get_usize(flags, "shards", 0)?;
    if want_shards > 0 && engine.nshards() != want_shards {
        return Err(format!(
            "--shards {want_shards}: store {dir} has {} shard(s)",
            engine.nshards()
        ));
    }
    let tier = if engine.nshards() > 1 {
        format!(" ({}-shard scatter-gather)", engine.nshards())
    } else {
        String::new()
    };
    let server = Arc::new(QueryServer::start(engine, cfg).map_err(|e| e.to_string())?);
    let socket = SocketServer::bind(Arc::clone(&server), addr).map_err(|e| e.to_string())?;
    println!("serving {dir}{tier} on {}", socket.local_addr());

    // Background maintenance for the sharded tier: compact durable
    // debris and keep each shard's cache under its serving budget.
    let maintenance = MaintenanceConfig {
        compact: true,
        hot_steps: None,
        cache_target_bytes: None,
    };
    let mut last_maintain = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if maintain_ms > 0 && last_maintain.elapsed() >= Duration::from_millis(maintain_ms) {
            last_maintain = Instant::now();
            if let Ok(Some(rep)) = server.engine().maintenance_once(&maintenance) {
                if rep.debris_files > 0 || rep.evicted_bytes > 0 {
                    eprintln!(
                        "maintenance: {} debris files ({} B), {} B evicted",
                        rep.debris_files, rep.debris_bytes, rep.evicted_bytes
                    );
                }
            }
        }
        if stop_after > 0 && socket.connections_completed() >= stop_after {
            break;
        }
    }
    let st = server.stats();
    eprintln!(
        "served: {} ok, {} failed, {} shed, {} deadline (adm {} / deq {} / exec {}), \
         {} coalesce hits, queue peak {}/{}",
        st.ok,
        st.failed,
        st.shed,
        st.deadline_admission + st.deadline_dequeue + st.deadline_execution,
        st.deadline_admission,
        st.deadline_dequeue,
        st.deadline_execution,
        st.coalesce_hits,
        st.queue_peak,
        server.config().queue_capacity
    );
    // Surface the (per-shard) cache stats in --obs-json before main
    // snapshots.
    server.engine().publish_obs();
    socket.stop();
    Ok(())
}

/// Deterministic 64-bit generator for the load mix (splitmix64).
struct Mix64(u64);

impl Mix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the zipf-skewed frame catalog for a store: subset queries with
/// varying value windows per (step, variable), plus correlations where a
/// step has two variables. Rank-0 frames are the hot head of the skew.
fn loadgen_catalog(store: &Store) -> Result<Vec<String>, String> {
    let mut frames = Vec::new();
    let steps = store.steps();
    if steps.is_empty() {
        return Err("store has no steps to query".into());
    }
    for &step in &steps {
        let vars: Vec<String> = store
            .variables(step)
            .into_iter()
            .map(str::to_string)
            .collect();
        for v in &vars {
            for w in 0..4u32 {
                let lo = f64::from(w) * 8.0;
                frames.push(format!(
                    "{{\"queries\": [{{\"kind\": \"subset\", \"step\": {step}, \
                     \"variable\": \"{v}\", \"value_range\": [{lo}, {}]}}]}}",
                    lo + 12.0
                ));
            }
        }
        if vars.len() >= 2 {
            frames.push(format!(
                "{{\"queries\": [{{\"kind\": \"correlation\", \"step\": {step}, \
                 \"var_a\": \"{}\", \"var_b\": \"{}\"}}]}}",
                vars[0], vars[1]
            ));
        }
    }
    Ok(frames)
}

/// `ibis loadgen --addr HOST:PORT --store DIR`: closed-loop TCP load
/// generator with a zipf-skewed query mix over the store's catalog (the
/// store is only read to enumerate steps/variables — all queries go over
/// the wire). Prints latency percentiles and typed outcome counts.
fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    let addr = flags.get("addr").ok_or("--addr HOST:PORT is required")?;
    let dir = flags.get("store").ok_or("--store DIR is required")?;
    let requests = get_usize(flags, "requests", 400)?;
    let clients = get_usize(flags, "clients", 4)?.max(1);
    let deadline_ms = get_usize(flags, "deadline-ms", 0)?;
    let seed = get_usize(flags, "seed", 42)? as u64;

    // A sharded store has the same steps/variables in every shard; the
    // first shard's manifest is enough to build the request catalog.
    let catalog_dir = if is_sharded(dir) {
        std::path::Path::new(dir).join("shard-000")
    } else {
        std::path::PathBuf::from(dir)
    };
    let store = Store::open(&catalog_dir).map_err(|e| format!("--store {dir}: {e}"))?;
    let mut frames = loadgen_catalog(&store)?;
    if deadline_ms > 0 {
        for f in &mut frames {
            let body = f
                .strip_suffix('}')
                .ok_or("internal: bad frame template")?
                .to_string();
            *f = format!("{body}, \"deadline_ms\": {deadline_ms}}}");
        }
    }
    // Zipf-ish skew: weight 1/(rank+1); the head frame dominates, which
    // is what exercises coalescing and the warm cache path.
    let cum: Vec<f64> = frames
        .iter()
        .enumerate()
        .scan(0.0f64, |acc, (i, _)| {
            *acc += 1.0 / (i + 1) as f64;
            Some(*acc)
        })
        .collect();
    let total = *cum.last().ok_or("empty query catalog")?;

    let counts = std::sync::Mutex::new(HashMap::<String, u64>::new());
    let latencies = std::sync::Mutex::new(Vec::<u64>::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for c in 0..clients {
            let share = requests / clients + usize::from(c < requests % clients);
            let frames = &frames;
            let cum = &cum;
            let counts = &counts;
            let latencies = &latencies;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let stream = std::net::TcpStream::connect(addr)
                    .map_err(|e| format!("connect {addr}: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut reader =
                    BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                let mut writer = stream;
                let mut rng = Mix64(seed ^ (c as u64).wrapping_mul(0x9E37));
                let mut line = String::new();
                for _ in 0..share {
                    let pick = rng.unit() * total;
                    let idx = cum.partition_point(|&x| x < pick).min(frames.len() - 1);
                    let sent = Instant::now();
                    writeln!(writer, "{}", frames[idx]).map_err(|e| format!("send: {e}"))?;
                    line.clear();
                    reader
                        .read_line(&mut line)
                        .map_err(|e| format!("recv: {e}"))?;
                    let ns = sent.elapsed().as_nanos() as u64;
                    latencies
                        .lock()
                        .map_err(|_| "latency lock poisoned".to_string())?
                        .push(ns);
                    let kind = if line.contains("\"ok\"") {
                        "ok"
                    } else if line.contains("\"kind\": \"shed\"") {
                        "shed"
                    } else if line.contains("\"kind\": \"deadline\"") {
                        "deadline"
                    } else {
                        "error"
                    };
                    *counts
                        .lock()
                        .map_err(|_| "count lock poisoned".to_string())?
                        .entry(kind.to_string())
                        .or_insert(0) += 1;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| "client thread panicked".to_string())??;
        }
        Ok(())
    })?;
    let wall = t0.elapsed().as_secs_f64();

    let mut lat = latencies
        .into_inner()
        .map_err(|_| "latency lock poisoned".to_string())?;
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let i = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[i] as f64 / 1e6
    };
    let counts = counts
        .into_inner()
        .map_err(|_| "count lock poisoned".to_string())?;
    println!(
        "{} requests over {clients} clients in {wall:.2}s ({:.0} req/s)",
        lat.len(),
        lat.len() as f64 / wall.max(1e-9)
    );
    println!(
        "latency ms: p50 {:.3}  p99 {:.3}  p999 {:.3}",
        pct(0.50),
        pct(0.99),
        pct(0.999)
    );
    let mut kinds: Vec<_> = counts.iter().collect();
    kinds.sort();
    for (kind, n) in kinds {
        println!("  {kind}: {n}");
    }
    Ok(())
}
