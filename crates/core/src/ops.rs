//! Logical operations on WAH vectors, executed directly on the compressed
//! form — the fast bitwise kernels behind every bitmap-only analysis:
//! AND for joint value distributions, XOR for the spatial Earth Mover's
//! Distance, OR for range queries and high-level index construction.

use crate::kernels::{self, add_literal_per_unit, lit_mask, DenseBits};
#[cfg(feature = "legacy-kernels")]
use crate::runs::SegCursor;
use crate::wah::WahVec;
#[cfg(feature = "legacy-kernels")]
use crate::wah::{LITERAL_MASK, SEG_BITS};
#[cfg(feature = "legacy-kernels")]
use crate::WahBuilder;

impl WahVec {
    /// Bitwise AND; both vectors must have the same length.
    pub fn and(&self, other: &WahVec) -> WahVec {
        kernels::and_kernel(self, other)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &WahVec) -> WahVec {
        kernels::or_kernel(self, other)
    }

    /// Bitwise XOR — the element-difference kernel of the spatial EMD
    /// (Section 3.2 of the paper).
    pub fn xor(&self, other: &WahVec) -> WahVec {
        kernels::xor_kernel(self, other)
    }

    /// Bitwise AND-NOT (`self & !other`).
    pub fn andnot(&self, other: &WahVec) -> WahVec {
        kernels::andnot_kernel(self, other)
    }

    /// Bitwise complement — a direct one-pass complement over the runs
    /// (fills flip, literals complement under the width mask).
    pub fn not(&self) -> WahVec {
        kernels::not_kernel(self)
    }

    /// Number of positions where the vectors differ: `popcount(a XOR b)`
    /// without materializing the XOR. Adaptive: runs the batched
    /// compressed kernel below the density cutover, decodes once and runs
    /// word-parallel above it.
    pub fn xor_count(&self, other: &WahVec) -> u64 {
        kernels::xor_count_adaptive(self, other)
    }

    /// `popcount(a AND b)` without materializing the AND — the joint-bin
    /// counting kernel of conditional entropy and correlation mining.
    /// Adaptive like [`WahVec::xor_count`].
    pub fn and_count(&self, other: &WahVec) -> u64 {
        kernels::and_count_adaptive(self, other)
    }

    /// Per-unit 1-bit counts of `self AND other` without materializing the
    /// intersection — the correlation miner's spatial stage in one fused
    /// pass (unit `u` covers bits `[u*unit_bits, (u+1)*unit_bits)`).
    pub fn and_count_per_unit(&self, other: &WahVec, unit_bits: u64) -> Vec<u64> {
        assert_eq!(
            self.len(),
            other.len(),
            "binary op on different-length vectors"
        );
        assert!(unit_bits > 0, "unit_bits must be positive");
        if self.is_dense() || other.is_dense() {
            return kernels::and_count_per_unit_adaptive(self, other, unit_bits);
        }
        let nunits = self.len().div_ceil(unit_bits) as usize;
        let mut out = vec![0u64; nunits];
        let mut pos = 0u64;
        let mut ra = self.runs();
        let mut rb = other.runs();
        let mut run_a = ra.next();
        let mut run_b = rb.next();
        let bump = |pos: u64, n: u64, out: &mut [u64]| {
            // add a run of n one-bits at pos, split across unit boundaries
            let mut p = pos;
            let mut rem = n;
            while rem > 0 {
                let u = (p / unit_bits) as usize;
                let in_unit = (u as u64 + 1) * unit_bits - p;
                let take = in_unit.min(rem);
                out[u] += take;
                p += take;
                rem -= take;
            }
        };
        loop {
            match (run_a, run_b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    use crate::runs::Run::*;
                    match (x, y) {
                        (Fill(fa, na), Fill(fb, nb)) => {
                            let n = na.min(nb);
                            if fa && fb {
                                bump(pos, n, &mut out);
                            }
                            pos += n;
                            run_a = shrink_fill(fa, na, n, &mut ra);
                            run_b = shrink_fill(fb, nb, n, &mut rb);
                        }
                        (Fill(fa, na), Literal(p, w)) | (Literal(p, w), Fill(fa, na)) => {
                            if fa {
                                add_literal_per_unit(p, w, pos, unit_bits, &mut out);
                            }
                            pos += w as u64;
                            // shrink whichever side was the fill
                            if matches!(x, Fill(..)) {
                                run_a = shrink_fill(fa, na, w as u64, &mut ra);
                                run_b = rb.next();
                            } else {
                                run_a = ra.next();
                                run_b = shrink_fill(fa, na, w as u64, &mut rb);
                            }
                        }
                        (Literal(pa, wa), Literal(pb, wb)) => {
                            debug_assert_eq!(wa, wb);
                            let v = pa & pb & lit_mask(wa);
                            if v != 0 {
                                add_literal_per_unit(v, wa, pos, unit_bits, &mut out);
                            }
                            pos += wa as u64;
                            run_a = ra.next();
                            run_b = rb.next();
                        }
                    }
                }
                _ => unreachable!("cursors of equal-length vectors end together"),
            }
        }
        out
    }

    /// OR of many vectors (all the same length); used for high-level index
    /// construction and value-range queries. Returns an empty vector for an
    /// empty input.
    ///
    /// Two execution strategies, chosen by the combined compressed size:
    ///
    /// * **Dense accumulator** — when the inputs' compressed words together
    ///   outnumber one packed-`u64` buffer (`Σ words > len/64`), every input
    ///   is OR-ed into a [`DenseBits`] accumulator in one pass each and the
    ///   result is encoded once.
    /// * **Pairwise (tree) reduction** otherwise: with `k` inputs the
    ///   accumulator is combined `log k` times instead of `k` times, so a
    ///   wide union of sparse bins does not repeatedly re-walk an
    ///   ever-denser accumulator. The first round operates on the borrowed
    ///   inputs directly instead of cloning them all up front.
    pub fn or_many<'a, I: IntoIterator<Item = &'a WahVec>>(vecs: I) -> WahVec {
        let inputs: Vec<&WahVec> = vecs.into_iter().collect();
        let Some(&first) = inputs.first() else {
            return WahVec::new();
        };
        if inputs.len() == 1 {
            return first.clone();
        }
        let len = first.len();
        let total_words: usize = inputs.iter().map(|v| v.words().len()).sum();
        if total_words as u64 > len / 64 {
            let mut acc = DenseBits::zeros(len);
            for v in &inputs {
                acc.or_wah(v);
            }
            return acc.to_wah();
        }
        let mut layer: Vec<WahVec> = inputs
            .chunks(2)
            .map(|pair| match pair {
                [a, b] => a.or(b),
                [a] => (*a).clone(),
                _ => unreachable!("chunks(2) yields 1..=2 items"),
            })
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.chunks_exact(2);
            for pair in &mut it {
                next.push(pair[0].or(&pair[1]));
            }
            if let [odd] = it.remainder() {
                next.push(odd.clone());
            }
            layer = next;
        }
        layer.pop().expect("non-empty layer")
    }
}

/// Cross-codec set operations over the sealed codec roof: same-codec pairs
/// run their native kernels (WAH's adaptive paths, Roaring's container-pair
/// dispatch, BBC's byte merge for `and_count`); mixed pairs convert through
/// the cheapest bridge — a WAH operand joins a Roaring operand by exact
/// `from_wah` conversion (runs → ranges, literals → scattered bits, no bit
/// expansion), while BBC bridges through WAH. The result codec is Roaring
/// when either operand is Roaring, WAH otherwise, so op chains stay in the
/// faster codec of their inputs.
impl crate::codec::CodecVec {
    /// Bitwise AND; both vectors must have the same length.
    pub fn and(&self, other: &Self) -> Self {
        self.binary_dispatch(other, WahVec::and, crate::RoaringVec::and)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Self) -> Self {
        self.binary_dispatch(other, WahVec::or, crate::RoaringVec::or)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.binary_dispatch(other, WahVec::xor, crate::RoaringVec::xor)
    }

    /// Bitwise AND-NOT (`self & !other`).
    pub fn andnot(&self, other: &Self) -> Self {
        self.binary_dispatch(other, WahVec::andnot, crate::RoaringVec::andnot)
    }

    /// `popcount(self AND other)` without materializing, on the native
    /// counting kernel of whichever codec pair this is.
    pub fn and_count(&self, other: &Self) -> u64 {
        use crate::codec::CodecVec::*;
        match (self, other) {
            (Wah(a), Wah(b)) => a.and_count(b),
            (Roaring(a), Roaring(b)) => a.and_count(b),
            (Bbc(a), Bbc(b)) => a.and_count(b),
            (Roaring(a), b) => a.and_count(&crate::RoaringVec::from_wah(&b.to_wah())),
            (a, Roaring(b)) => crate::RoaringVec::from_wah(&a.to_wah()).and_count(b),
            (a, b) => a.to_wah().and_count(&b.to_wah()),
        }
    }

    /// `popcount(self XOR other)` without materializing. Same-codec WAH and
    /// Roaring pairs run native; everything else uses the cardinality
    /// identity `|a| + |b| - 2·|a∩b|` over [`CodecVec::and_count`].
    ///
    /// [`CodecVec::and_count`]: crate::codec::CodecVec::and_count
    pub fn xor_count(&self, other: &Self) -> u64 {
        use crate::codec::CodecVec::*;
        match (self, other) {
            (Wah(a), Wah(b)) => a.xor_count(b),
            (Roaring(a), Roaring(b)) => a.xor_count(b),
            (a, b) => a.count_ones() + b.count_ones() - 2 * a.and_count(b),
        }
    }

    fn binary_dispatch(
        &self,
        other: &Self,
        wah_op: impl Fn(&WahVec, &WahVec) -> WahVec,
        roaring_op: impl Fn(&crate::RoaringVec, &crate::RoaringVec) -> crate::RoaringVec,
    ) -> Self {
        use crate::codec::CodecVec::*;
        match (self, other) {
            (Wah(a), Wah(b)) => Wah(wah_op(a, b)),
            (Roaring(a), Roaring(b)) => Roaring(roaring_op(a, b)),
            (Roaring(a), b) => Roaring(roaring_op(a, &crate::RoaringVec::from_wah(&b.to_wah()))),
            (a, Roaring(b)) => Roaring(roaring_op(&crate::RoaringVec::from_wah(&a.to_wah()), b)),
            (a, b) => Wah(wah_op(&a.to_wah(), &b.to_wah())),
        }
    }
}

/// Pre-adaptive closure-generic kernels, kept callable for A/B
/// benchmarking against the monomorphized adaptive paths.
#[cfg(feature = "legacy-kernels")]
impl WahVec {
    /// The pre-adaptive closure-generic `and` (segment-at-a-time).
    pub fn and_legacy(&self, other: &WahVec) -> WahVec {
        binary(self, other, |a, b| a & b)
    }

    /// The pre-adaptive closure-generic `or`.
    pub fn or_legacy(&self, other: &WahVec) -> WahVec {
        binary(self, other, |a, b| a | b)
    }

    /// The pre-adaptive closure-generic `xor`.
    pub fn xor_legacy(&self, other: &WahVec) -> WahVec {
        binary(self, other, |a, b| a ^ b)
    }

    /// The pre-adaptive run-merge `and_count`.
    pub fn and_count_legacy(&self, other: &WahVec) -> u64 {
        fold_binary(self, other, |a, b| a & b)
    }

    /// The pre-adaptive run-merge `xor_count`.
    pub fn xor_count_legacy(&self, other: &WahVec) -> u64 {
        fold_binary(self, other, |a, b| a ^ b)
    }

    /// The pre-adaptive `not` (`binary` against an all-ones vector).
    pub fn not_legacy(&self) -> WahVec {
        let ones = WahVec::ones(self.len());
        binary(self, &ones, |a, b| !a & b)
    }
}

/// Generic compressed binary operation. Fill×fill stretches are combined in
/// O(1) per run pair; mixed stretches fall back to 31-bit segments.
#[cfg(feature = "legacy-kernels")]
fn binary(a: &WahVec, b: &WahVec, f: impl Fn(u32, u32) -> u32) -> WahVec {
    assert_eq!(a.len(), b.len(), "binary op on different-length vectors");
    let mut ca = SegCursor::new(&a.words, a.len_bits);
    let mut cb = SegCursor::new(&b.words, b.len_bits);
    let mut out = WahBuilder::new();
    loop {
        if let (Some((ba, na)), Some((bb, nb))) = (ca.peek_fill(), cb.peek_fill()) {
            let n = na.min(nb);
            let r = f(mask_of(ba), mask_of(bb)) & LITERAL_MASK;
            debug_assert!(r == 0 || r == LITERAL_MASK, "fill op must yield a fill");
            out.append_run(r == LITERAL_MASK, n);
            ca.skip_fill(n);
            cb.skip_fill(n);
            continue;
        }
        match (ca.next_seg(), cb.next_seg()) {
            (None, None) => break,
            (Some((pa, na)), Some((pb, nb))) => {
                debug_assert_eq!(na, nb, "same-length vectors must stay aligned");
                let r = f(pa, pb) & LITERAL_MASK;
                if na as u64 == SEG_BITS {
                    out.append_seg31(r);
                } else {
                    for j in 0..na {
                        out.push_bit(r & (1 << j) != 0);
                    }
                }
            }
            _ => unreachable!("cursors of equal-length vectors end together"),
        }
    }
    out.finish()
}

/// Like [`binary`] but only counts result 1-bits. A run-merge loop: each
/// literal word costs one match, fill×fill stretches cost O(1) — the hot
/// kernel behind `and_count` / `xor_count` in metric evaluation and mining.
#[cfg(feature = "legacy-kernels")]
fn fold_binary(a: &WahVec, b: &WahVec, f: impl Fn(u32, u32) -> u32) -> u64 {
    assert_eq!(a.len(), b.len(), "binary op on different-length vectors");
    let mut ra = a.runs();
    let mut rb = b.runs();
    let mut run_a = ra.next();
    let mut run_b = rb.next();
    let mut total = 0u64;
    loop {
        match (run_a, run_b) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                use crate::runs::Run::*;
                match (x, y) {
                    (Fill(fa, na), Fill(fb, nb)) => {
                        let n = na.min(nb);
                        if f(mask_of(fa), mask_of(fb)) & LITERAL_MASK != 0 {
                            total += n;
                        }
                        run_a = shrink_fill(fa, na, n, &mut ra);
                        run_b = shrink_fill(fb, nb, n, &mut rb);
                    }
                    (Fill(fa, na), Literal(p, w)) => {
                        // a literal run is at most 31 bits, a fill at least 31
                        let mask = lit_mask(w);
                        total += (f(mask_of(fa), p) & mask).count_ones() as u64;
                        run_a = shrink_fill(fa, na, w as u64, &mut ra);
                        run_b = rb.next();
                    }
                    (Literal(p, w), Fill(fb, nb)) => {
                        let mask = lit_mask(w);
                        total += (f(p, mask_of(fb)) & mask).count_ones() as u64;
                        run_a = ra.next();
                        run_b = shrink_fill(fb, nb, w as u64, &mut rb);
                    }
                    (Literal(pa, wa), Literal(pb, wb)) => {
                        debug_assert_eq!(wa, wb, "equal-length vectors stay aligned");
                        total += (f(pa, pb) & lit_mask(wa)).count_ones() as u64;
                        run_a = ra.next();
                        run_b = rb.next();
                    }
                }
            }
            _ => unreachable!("cursors of equal-length vectors end together"),
        }
    }
    total
}

/// Consumes `take` bits from a fill run of `n`, returning the remainder (or
/// the next run when exhausted).
#[inline]
fn shrink_fill(
    bit: bool,
    n: u64,
    take: u64,
    iter: &mut crate::runs::RunIter<'_>,
) -> Option<crate::runs::Run> {
    debug_assert!(take <= n);
    if take == n {
        iter.next()
    } else {
        Some(crate::runs::Run::Fill(bit, n - take))
    }
}

#[cfg(feature = "legacy-kernels")]
#[inline]
fn mask_of(bit: bool) -> u32 {
    if bit {
        LITERAL_MASK
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_op(a: &[bool], b: &[bool], f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    }

    fn cases() -> Vec<(Vec<bool>, Vec<bool>)> {
        let lens = [0usize, 1, 30, 31, 32, 62, 93, 100, 311, 1000];
        lens.iter()
            .map(|&n| {
                let a: Vec<bool> = (0..n).map(|i| (i * 7) % 11 < 5).collect();
                let b: Vec<bool> = (0..n).map(|i| i % 2 == 0 || i > n / 2).collect();
                (a, b)
            })
            .collect()
    }

    #[test]
    fn and_or_xor_andnot_match_naive() {
        for (a_bits, b_bits) in cases() {
            let a = WahVec::from_bits(a_bits.iter().copied());
            let b = WahVec::from_bits(b_bits.iter().copied());
            assert_eq!(
                a.and(&b).to_bools(),
                naive_op(&a_bits, &b_bits, |x, y| x & y)
            );
            assert_eq!(
                a.or(&b).to_bools(),
                naive_op(&a_bits, &b_bits, |x, y| x | y)
            );
            assert_eq!(
                a.xor(&b).to_bools(),
                naive_op(&a_bits, &b_bits, |x, y| x ^ y)
            );
            assert_eq!(
                a.andnot(&b).to_bools(),
                naive_op(&a_bits, &b_bits, |x, y| x & !y)
            );
            a.and(&b).check_canonical().unwrap();
            a.or(&b).check_canonical().unwrap();
            a.xor(&b).check_canonical().unwrap();
        }
    }

    #[test]
    fn counts_match_materialized() {
        for (a_bits, b_bits) in cases() {
            let a = WahVec::from_bits(a_bits.iter().copied());
            let b = WahVec::from_bits(b_bits.iter().copied());
            assert_eq!(a.and_count(&b), a.and(&b).count_ones());
            assert_eq!(a.xor_count(&b), a.xor(&b).count_ones());
        }
    }

    #[test]
    fn cross_codec_ops_agree_with_wah() {
        use crate::codec::{CodecId, CodecVec};
        let a_bits: Vec<bool> = (0..80_000).map(|i| (i * 7) % 13 < 4).collect();
        let b_bits: Vec<bool> = (0..80_000).map(|i| i % 101 == 0 || i > 60_000).collect();
        let wa = WahVec::from_bits(a_bits.iter().copied());
        let wb = WahVec::from_bits(b_bits.iter().copied());
        let ids = [CodecId::Wah, CodecId::Bbc, CodecId::Roaring];
        for ia in ids {
            for ib in ids {
                let ca = CodecVec::with_codec(&wa, ia);
                let cb = CodecVec::with_codec(&wb, ib);
                let label = format!("{}×{}", ia.name(), ib.name());
                assert_eq!(ca.and(&cb).to_wah(), wa.and(&wb), "and {label}");
                assert_eq!(ca.or(&cb).to_wah(), wa.or(&wb), "or {label}");
                assert_eq!(ca.xor(&cb).to_wah(), wa.xor(&wb), "xor {label}");
                assert_eq!(ca.andnot(&cb).to_wah(), wa.andnot(&wb), "andnot {label}");
                assert_eq!(ca.and_count(&cb), wa.and_count(&wb), "and_count {label}");
                assert_eq!(ca.xor_count(&cb), wa.xor_count(&wb), "xor_count {label}");
                // result codec rule: Roaring wins, else WAH
                let want = if ia == CodecId::Roaring || ib == CodecId::Roaring {
                    CodecId::Roaring
                } else {
                    CodecId::Wah
                };
                assert_eq!(ca.and(&cb).id(), want, "result codec {label}");
            }
        }
    }

    #[test]
    fn not_flips_everything() {
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let n = v.not();
        assert_eq!(n.to_bools(), bits.iter().map(|&b| !b).collect::<Vec<_>>());
        assert_eq!(n.count_ones() + v.count_ones(), 200);
        n.check_canonical().unwrap();
    }

    #[test]
    fn fill_fast_path_stays_compressed() {
        let a = WahVec::zeros(1_000_000);
        let b = WahVec::ones(1_000_000);
        let r = a.or(&b);
        assert_eq!(r.count_ones(), 1_000_000);
        assert!(r.words().len() <= 2);
        let r = a.and(&b);
        assert_eq!(r.count_ones(), 0);
        assert!(r.words().len() <= 2);
    }

    #[test]
    fn fill_fast_path_mixed_lengths() {
        // a: big zero fill then ones; b: ones then zero fill — forces the
        // min(na, nb) splitting logic through several iterations.
        let mut a_bits = vec![false; 31 * 50];
        a_bits.extend(vec![true; 31 * 30]);
        let mut b_bits = vec![true; 31 * 20];
        b_bits.extend(vec![false; 31 * 60]);
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        assert_eq!(
            a.xor(&b).to_bools(),
            naive_op(&a_bits, &b_bits, |x, y| x ^ y)
        );
        assert_eq!(a.xor_count(&b), (31 * 20 + 31 * 30) as u64);
    }

    #[test]
    #[should_panic(expected = "different-length")]
    fn length_mismatch_panics() {
        let _ = WahVec::zeros(31).and(&WahVec::zeros(62));
    }

    #[test]
    fn or_many_unions() {
        let vs: Vec<WahVec> = (0..5).map(|k| WahVec::from_ones(&[k * 10], 100)).collect();
        let u = WahVec::or_many(vs.iter());
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![0, 10, 20, 30, 40]);
        assert_eq!(WahVec::or_many(std::iter::empty()).len(), 0);
        let single = WahVec::or_many(std::iter::once(&vs[0]));
        assert_eq!(single, vs[0]);
    }

    #[test]
    fn and_count_per_unit_matches_materialized() {
        for (a_bits, b_bits) in cases() {
            let a = WahVec::from_bits(a_bits.iter().copied());
            let b = WahVec::from_bits(b_bits.iter().copied());
            let joint = a.and(&b);
            for unit in [1u64, 7, 31, 64, 1000] {
                assert_eq!(
                    a.and_count_per_unit(&b, unit),
                    joint.count_ones_per_unit(unit),
                    "len {} unit {unit}",
                    a.len()
                );
            }
        }
    }

    #[test]
    fn and_count_per_unit_fill_heavy() {
        let mut a_bits = vec![true; 31 * 40];
        a_bits.extend(vec![false; 31 * 40]);
        let b_bits = vec![true; 31 * 80];
        let a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        let per = a.and_count_per_unit(&b, 500);
        assert_eq!(per.iter().sum::<u64>(), 31 * 40);
        assert_eq!(per, a.and(&b).count_ones_per_unit(500));
    }

    #[test]
    fn ops_on_empty_vectors() {
        let e = WahVec::new();
        assert_eq!(e.and(&e).len(), 0);
        assert_eq!(e.xor_count(&e), 0);
        assert_eq!(e.not().len(), 0);
    }

    #[test]
    fn demorgan() {
        let a = WahVec::from_bits((0..500).map(|i| (i * 3) % 7 == 0));
        let b = WahVec::from_bits((0..500).map(|i| (i * 5) % 11 < 4));
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }
}
