//! Regenerates the paper's Figure 15 — run with
//! `cargo bench -p ibis-bench --bench fig15_sampling_time`.

fn main() {
    ibis_bench::figures::fig15();
}
