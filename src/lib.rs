//! # ibis — In-situ Bitmap Summaries
//!
//! A reproduction of *"In-Situ Bitmaps Generation and Efficient Data Analysis
//! based on Bitmaps"* (Su, Wang, Agrawal — HPDC 2015).
//!
//! Instead of writing raw simulation output to disk, `ibis` builds
//! WAH-compressed bitmap indices *while the simulation runs*, performs online
//! analysis (time-steps selection) and offline analysis (correlation mining)
//! **purely on the bitmaps**, and writes only the selected bitmaps — cutting
//! both memory footprint and I/O volume without losing accuracy relative to
//! the same binning on full data.
//!
//! The workspace is split into five library crates, re-exported here:
//!
//! * [`core`](ibis_core) — WAH bitvectors, streaming (Algorithm 1)
//!   construction, binning, single- and multi-level bitmap indices, Z-order
//!   layout, parallel generation.
//! * [`datagen`](ibis_datagen) — the simulation substrates the paper
//!   evaluates on: Heat3D, a mini-LULESH hydrodynamics proxy, and a synthetic
//!   POP-style ocean field generator.
//! * [`analysis`](ibis_analysis) — entropy / mutual information /
//!   conditional entropy / Earth Mover's Distance in both full-data and
//!   bitmap-only forms, greedy time-steps selection, correlation mining
//!   (Algorithm 2) and the in-situ sampling baseline.
//! * [`insitu`](ibis_insitu) — the in-situ pipeline: Shared/Separate core
//!   allocation, Eq. 1–2 auto-calibration, I/O and memory cost models, and a
//!   threads-as-nodes cluster environment.
//! * [`obs`](ibis_obs) — zero-dependency observability: a sharded metrics
//!   registry (counters, gauges, histograms, span timers) threaded through
//!   the kernels, pipeline, store, and cluster; compiles to no-ops with
//!   `--no-default-features`.
//!
//! ## Quickstart
//!
//! ```
//! use ibis::core::{Binner, BitmapIndex};
//!
//! let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin()).collect();
//! let binner = Binner::fixed_width(-1.0, 1.0, 32);
//! let index = BitmapIndex::build(&data, binner);
//!
//! // the index is an exact histogram…
//! assert_eq!(index.counts().iter().sum::<u64>(), 1000);
//! // …and a compact one
//! assert!(index.size_bytes() < data.len() * 8);
//! ```

pub use ibis_analysis as analysis;
pub use ibis_core as core;
pub use ibis_datagen as datagen;
pub use ibis_insitu as insitu;
pub use ibis_obs as obs;
