//! Regenerates the paper's Figure 16 — run with
//! `cargo bench -p ibis-bench --bench fig16_sampling_accuracy`.

fn main() {
    ibis_bench::figures::fig16();
}
