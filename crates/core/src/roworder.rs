//! Pluggable row orders — compression-aware permutations of the ingest
//! row order, chosen at generation time.
//!
//! WAH/BBC/Roaring sizes (and every downstream kernel) are dominated by
//! run structure, which is a function of *row order*; the in-situ setting
//! lets us pick that order for free while the data is still in memory
//! (*Sorting improves word-aligned bitmap indexes*, Lemire et al.). A
//! [`RowOrder`] names a strategy; [`RowOrder::permutation`] materializes
//! it as a [`RowPermutation`] — a checked bijection between *original*
//! row ids (the simulation's row-major layout) and *stored* positions
//! (the order the bitmap index is built in).
//!
//! Two families:
//!
//! * **Spatial** ([`RowOrder::ZOrder`], [`RowOrder::Hilbert`]) — reorder
//!   by a space-filling curve over the grid coordinates, so spatially
//!   coherent fields produce long constant runs. Data-independent: the
//!   same grid always yields the same permutation.
//! * **Data-dependent** ([`RowOrder::GrayBin`], [`RowOrder::HistogramSorted`])
//!   — stable-sort rows by a function of their *bin* (Gray-code of the
//!   bin id, or the bin's frequency rank from the same histogram the
//!   calibrator caches), so each bin's bitmap degenerates to a handful
//!   of fills. These depend on the step's values, so the permutation is
//!   persisted next to the index (see `ibis-insitu`'s store).
//!
//! Queries over a reordered index stay transparent: value predicates are
//! order-invariant, and position predicates map through the inverse
//! permutation ([`RowPermutation::inv`]); a stored-order selection maps
//! back to original row ids with
//! [`RowPermutation::map_selection_to_original`].
//!
//! The existing [`crate::ZOrderLayout`] remains the miner's spatial-block
//! layout (strict 2-D/3-D); `RowOrder` additionally handles degenerate
//! shapes (`1×1×N`, 1-D) by dropping size-1 axes and falling back to
//! identity when fewer than two effective dimensions remain.

use crate::binning::Binner;
use crate::wah::WahVec;
use crate::zorder::{morton2, morton3};
use ibis_obs::LazyCounter;

static OBS_PERM_BUILT: LazyCounter = LazyCounter::new("reorder.perm.built");
static OBS_PERM_ROWS: LazyCounter = LazyCounter::new("reorder.perm.rows");

/// A row-reordering strategy for index generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowOrder {
    /// Row-major ingest order, unchanged. Never persists a permutation.
    #[default]
    Identity,
    /// Morton (Z-order) traversal of the grid coordinates.
    ZOrder,
    /// Hilbert-curve traversal of the grid coordinates (Skilling's
    /// transpose algorithm); better locality than Z-order at quadrant
    /// seams.
    Hilbert,
    /// Stable sort of rows by the Gray code of their bin id: adjacent
    /// sort keys differ in one bit, so consecutive bins share long runs.
    GrayBin,
    /// Stable sort of rows by descending bin frequency (histogram rank),
    /// the histogram-aware ordering: the most populous bins become one
    /// solid fill each.
    HistogramSorted,
}

impl RowOrder {
    /// Every order, in tag order — for sweeps and property tests.
    pub const ALL: [RowOrder; 5] = [
        RowOrder::Identity,
        RowOrder::ZOrder,
        RowOrder::Hilbert,
        RowOrder::GrayBin,
        RowOrder::HistogramSorted,
    ];

    /// Stable one-byte tag, persisted in the store's permutation frame.
    pub fn tag(self) -> u8 {
        match self {
            RowOrder::Identity => 0,
            RowOrder::ZOrder => 1,
            RowOrder::Hilbert => 2,
            RowOrder::GrayBin => 3,
            RowOrder::HistogramSorted => 4,
        }
    }

    /// Inverse of [`RowOrder::tag`]; `None` for an unknown byte.
    pub fn from_tag(tag: u8) -> Option<RowOrder> {
        RowOrder::ALL.into_iter().find(|o| o.tag() == tag)
    }

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            RowOrder::Identity => "identity",
            RowOrder::ZOrder => "zorder",
            RowOrder::Hilbert => "hilbert",
            RowOrder::GrayBin => "graybin",
            RowOrder::HistogramSorted => "histsorted",
        }
    }

    /// Parses a [`RowOrder::name`]; `None` for anything else.
    pub fn parse(s: &str) -> Option<RowOrder> {
        RowOrder::ALL.into_iter().find(|o| o.name() == s)
    }

    /// True for the orders computed from the step's values (and therefore
    /// needing their permutation persisted next to the index).
    pub fn is_data_dependent(self) -> bool {
        matches!(self, RowOrder::GrayBin | RowOrder::HistogramSorted)
    }

    /// True for the orders that need the grid shape.
    pub fn is_spatial(self) -> bool {
        matches!(self, RowOrder::ZOrder | RowOrder::Hilbert)
    }

    /// Builds this order's permutation for one step.
    ///
    /// `dims` is the grid shape in row-major order (fastest-varying axis
    /// last is *not* assumed — the curve only needs a bijection, and any
    /// consistent convention compresses equally); size-1 axes are
    /// dropped. `binner` and `data` drive the data-dependent orders.
    ///
    /// Returns `None` when the order *is* the identity and nothing needs
    /// applying or persisting: always for [`RowOrder::Identity`], and for
    /// spatial orders over grids with fewer than two effective
    /// dimensions (a 1-D or `1×1×N` grid has exactly one locality-
    /// preserving traversal — the one we already have), and whenever the
    /// computed permutation comes out as the identity (already-sorted or
    /// constant data).
    ///
    /// # Panics
    /// For spatial orders, when `dims` does not multiply out to
    /// `data.len()` or has more than three effective axes — caller bugs,
    /// checked upstream by the pipeline with a typed error.
    pub fn permutation(
        self,
        dims: &[usize],
        binner: &Binner,
        data: &[f64],
    ) -> Option<RowPermutation> {
        assert!(
            data.len() <= u32::MAX as usize,
            "RowOrder supports at most 2^32-1 rows"
        );
        let perm = match self {
            RowOrder::Identity => return None,
            RowOrder::ZOrder => spatial_perm(dims, data.len(), morton_key)?,
            RowOrder::Hilbert => spatial_perm(dims, data.len(), hilbert_key)?,
            RowOrder::GrayBin => sort_perm(data.len(), |i| {
                let b = binner.bin_of(data[i]) as u64;
                b ^ (b >> 1)
            }),
            RowOrder::HistogramSorted => {
                let mut counts = vec![0u64; binner.nbins()];
                for &v in data {
                    counts[binner.bin_of(v) as usize] += 1;
                }
                let mut bins: Vec<usize> = (0..counts.len()).collect();
                // Descending frequency, ties by bin id — deterministic.
                bins.sort_unstable_by_key(|&b| (std::cmp::Reverse(counts[b]), b));
                let mut rank = vec![0u64; counts.len()];
                for (r, &b) in bins.iter().enumerate() {
                    rank[b] = r as u64;
                }
                sort_perm(data.len(), |i| rank[binner.bin_of(data[i]) as usize])
            }
        };
        let perm = RowPermutation::from_gather(perm);
        if perm.is_identity() {
            // e.g. a data-dependent order over already-sorted (or
            // constant) data: nothing to apply, nothing to persist.
            return None;
        }
        OBS_PERM_BUILT.inc();
        OBS_PERM_ROWS.add(perm.len() as u64);
        Some(perm)
    }
}

/// Stable sort of `0..n` by `key(i)`: `sort_unstable` on `(key, i)` is
/// deterministic and equal to a stable sort on the key alone.
fn sort_perm(n: usize, key: impl Fn(usize) -> u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_unstable_by_key(|&i| (key(i as usize), i));
    perm
}

/// Shared shell of the spatial orders: drop size-1 axes, bail to
/// identity (`None`) under two effective dimensions, then sort row-major
/// ids by the curve key of their coordinates.
fn spatial_perm(dims: &[usize], n: usize, key: impl Fn(&[u32]) -> u64) -> Option<Vec<u32>> {
    let full: Vec<usize> = dims.iter().copied().filter(|&d| d > 1).collect();
    let product: usize = dims.iter().product();
    assert_eq!(product, n, "grid dims {dims:?} do not cover {n} rows");
    if full.len() < 2 {
        return None;
    }
    assert!(
        full.len() <= 3,
        "spatial row orders support 2-D and 3-D grids, got {dims:?}"
    );
    for &d in &full {
        assert!(d <= 1 << 21, "grid dim {d} exceeds 2^21");
    }
    // Walk the *full* shape row-major so stored keys line up with the
    // simulation's linear ids; size-1 axes contribute coordinate 0.
    let mut coords = vec![0u32; full.len()];
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let keys: Vec<u64> = {
        let mut keys = Vec::with_capacity(n);
        let mut counters = vec![0usize; dims.len()];
        for _ in 0..n {
            let mut c = 0;
            for (axis, &d) in dims.iter().enumerate() {
                if d > 1 {
                    coords[c] = counters[axis] as u32;
                    c += 1;
                }
            }
            keys.push(key(&coords));
            // row-major odometer: last axis fastest
            for axis in (0..dims.len()).rev() {
                counters[axis] += 1;
                if counters[axis] < dims[axis] {
                    break;
                }
                counters[axis] = 0;
            }
        }
        keys
    };
    perm.sort_unstable_by_key(|&i| (keys[i as usize], i));
    Some(perm)
}

fn morton_key(c: &[u32]) -> u64 {
    match c {
        [x, y] => morton2(*x, *y),
        [x, y, z] => morton3(*x, *y, *z),
        _ => unreachable!("spatial_perm guarantees 2 or 3 coords"),
    }
}

/// Hilbert-curve key: Skilling's axes→transpose conversion ("Programming
/// the Hilbert curve", AIP Conf. Proc. 707, 2004), then bit interleave of
/// the transposed axes, most significant plane first.
fn hilbert_key(c: &[u32]) -> u64 {
    const BITS: u32 = 21;
    let n = c.len();
    let mut x = [0u32; 3];
    x[..n].copy_from_slice(c);
    let m = 1u32 << (BITS - 1);
    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x[..n].iter_mut() {
        *xi ^= t;
    }
    // Interleave: plane b of every axis, x[0] most significant.
    let mut key = 0u64;
    for b in (0..BITS).rev() {
        for xi in &x[..n] {
            key = (key << 1) | ((xi >> b) & 1) as u64;
        }
    }
    key
}

/// A checked bijection between original row ids and stored positions.
///
/// `perm[stored] = original` (the gather order applied at ingest) and
/// `inv[original] = stored` (the map queries use). Constructed by
/// [`RowOrder::permutation`] or, on the read path, from a persisted
/// inverse via [`RowPermutation::from_inverse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPermutation {
    perm: Vec<u32>,
    inv: Vec<u32>,
}

impl RowPermutation {
    /// Builds from the gather order (`perm[stored] = original`).
    ///
    /// # Panics
    /// When `perm` is not a permutation of `0..len` — only reachable from
    /// a bug in an order implementation, which the property suite pins.
    pub fn from_gather(perm: Vec<u32>) -> Self {
        let mut inv = vec![u32::MAX; perm.len()];
        for (stored, &original) in perm.iter().enumerate() {
            let slot = &mut inv[original as usize];
            assert_eq!(
                *slot,
                u32::MAX,
                "duplicate row id {original} in permutation"
            );
            *slot = stored as u32;
        }
        RowPermutation { perm, inv }
    }

    /// Builds from a persisted inverse (`inv[original] = stored`),
    /// validating it is a bijection — the store's decode path, where a
    /// corrupt blob must surface as an error, not a panic.
    pub fn from_inverse(inv: Vec<u32>) -> Result<Self, String> {
        let n = inv.len();
        let mut perm = vec![u32::MAX; n];
        for (original, &stored) in inv.iter().enumerate() {
            if stored as usize >= n {
                return Err(format!(
                    "stored position {stored} out of range for {n} rows"
                ));
            }
            let slot = &mut perm[stored as usize];
            if *slot != u32::MAX {
                return Err(format!("stored position {stored} claimed twice"));
            }
            *slot = original as u32;
        }
        Ok(RowPermutation { perm, inv })
    }

    /// Rows covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// True when this is the identity permutation (nothing to apply or
    /// persist).
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| p as usize == i)
    }

    /// The gather order: `perm()[stored] = original`.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// The inverse: `inv()[original] = stored` — what the store persists
    /// and position queries map through.
    pub fn inv(&self) -> &[u32] {
        &self.inv
    }

    /// Applies the order: `out[stored] = data[perm[stored]]`, O(n).
    ///
    /// # Panics
    /// When `data.len() != self.len()`.
    pub fn reorder<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "reorder length mismatch");
        self.perm.iter().map(|&o| data[o as usize]).collect()
    }

    /// Undoes the order: `out[original] = stored_data[inv[original]]`.
    ///
    /// # Panics
    /// When `data.len() != self.len()`.
    pub fn restore<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "restore length mismatch");
        self.inv.iter().map(|&s| data[s as usize]).collect()
    }

    /// Maps a stored-order selection back to original row ids: position
    /// `s` set in `sel` becomes original row `perm[s]`. The result is
    /// canonical (positions sorted before building).
    ///
    /// # Panics
    /// When `sel.len() != self.len()`.
    pub fn map_selection_to_original(&self, sel: &WahVec) -> WahVec {
        assert_eq!(sel.len(), self.len() as u64, "selection length mismatch");
        let mut ones: Vec<u64> = sel
            .iter_ones()
            .map(|s| self.perm[s as usize] as u64)
            .collect();
        ones.sort_unstable();
        WahVec::from_ones(&ones, sel.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(p: &RowPermutation, n: usize) {
        assert_eq!(p.len(), n);
        let mut seen = vec![false; n];
        for &o in p.perm() {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        for i in 0..n {
            assert_eq!(p.perm()[p.inv()[i] as usize] as usize, i);
        }
    }

    #[test]
    fn names_and_tags_round_trip() {
        for o in RowOrder::ALL {
            assert_eq!(RowOrder::parse(o.name()), Some(o));
            assert_eq!(RowOrder::from_tag(o.tag()), Some(o));
        }
        assert_eq!(RowOrder::parse("nope"), None);
        assert_eq!(RowOrder::from_tag(200), None);
    }

    #[test]
    fn identity_and_degenerate_spatial_return_none() {
        let binner = Binner::distinct_ints(0, 9);
        let data: Vec<f64> = (0..24).map(|i| (i % 10) as f64).collect();
        assert!(RowOrder::Identity
            .permutation(&[4, 6], &binner, &data)
            .is_none());
        // 1-D and 1×1×N grids have no second axis to curve over
        assert!(RowOrder::ZOrder
            .permutation(&[24], &binner, &data)
            .is_none());
        assert!(RowOrder::Hilbert
            .permutation(&[1, 1, 24], &binner, &data)
            .is_none());
    }

    #[test]
    fn spatial_orders_are_bijections_on_ragged_grids() {
        let binner = Binner::distinct_ints(0, 9);
        for dims in [
            vec![3, 5],
            vec![7, 1, 9],
            vec![4, 4, 4],
            vec![2, 3, 5],
            vec![1, 6, 6],
        ] {
            let n: usize = dims.iter().product();
            let data: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
            for order in [RowOrder::ZOrder, RowOrder::Hilbert] {
                let p = order.permutation(&dims, &binner, &data).unwrap();
                check_bijection(&p, n);
            }
        }
    }

    #[test]
    fn hilbert_neighbors_are_adjacent_on_square_grid() {
        // On a 2^k × 2^k grid the Hilbert walk moves one cell at a time.
        let binner = Binner::distinct_ints(0, 1);
        let data = vec![0.0; 64];
        let p = RowOrder::Hilbert
            .permutation(&[8, 8], &binner, &data)
            .unwrap();
        for w in p.perm().windows(2) {
            let (a, b) = (w[0] as i64, w[1] as i64);
            let (ax, ay) = (a / 8, a % 8);
            let (bx, by) = (b / 8, b % 8);
            assert_eq!(
                (ax - bx).abs() + (ay - by).abs(),
                1,
                "hilbert step {a}→{b} is not a unit move"
            );
        }
    }

    #[test]
    fn data_orders_sort_rows_by_bin_stably() {
        let binner = Binner::distinct_ints(0, 3);
        let data = vec![3.0, 0.0, 2.0, 0.0, 1.0, 3.0, 2.0, 2.0];
        let p = RowOrder::HistogramSorted
            .permutation(&[], &binner, &data)
            .unwrap();
        check_bijection(&p, data.len());
        // 2 is the most frequent bin, so its rows come first, in original
        // order (stability), then ties broken by bin id: 0, 3, 1.
        assert_eq!(p.perm(), &[2, 6, 7, 1, 3, 0, 5, 4]);
        let p = RowOrder::GrayBin.permutation(&[], &binner, &data).unwrap();
        check_bijection(&p, data.len());
        // gray(0)=0, gray(1)=1, gray(2)=3, gray(3)=2: bins order 0,1,3,2
        assert_eq!(p.perm(), &[1, 3, 4, 0, 5, 2, 6, 7]);
    }

    #[test]
    fn reorder_restore_round_trip() {
        let binner = Binner::distinct_ints(0, 6);
        let data: Vec<f64> = (0..35).map(|i| ((i * 13) % 7) as f64).collect();
        for order in RowOrder::ALL {
            let Some(p) = order.permutation(&[5, 7], &binner, &data) else {
                continue;
            };
            let stored = p.reorder(&data);
            assert_eq!(p.restore(&stored), data);
            let back = RowPermutation::from_inverse(p.inv().to_vec()).unwrap();
            assert_eq!(&back, &p);
        }
    }

    #[test]
    fn from_inverse_rejects_non_bijections() {
        assert!(RowPermutation::from_inverse(vec![0, 0]).is_err());
        assert!(RowPermutation::from_inverse(vec![2, 0]).is_err());
        assert!(RowPermutation::from_inverse(vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn selection_maps_back_to_original_rows() {
        let binner = Binner::distinct_ints(0, 4);
        let data = vec![4.0, 1.0, 3.0, 0.0, 2.0, 1.0];
        let p = RowOrder::GrayBin.permutation(&[], &binner, &data).unwrap();
        // select stored positions of the rows whose value is 1.0
        let stored = p.reorder(&data);
        let ones: Vec<u64> = stored
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 1.0)
            .map(|(i, _)| i as u64)
            .collect();
        let sel = WahVec::from_ones(&ones, data.len() as u64);
        let mapped = p.map_selection_to_original(&sel);
        assert_eq!(mapped.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
    }
}
