//! Observability invariants on the Separate-Cores queue instrumentation:
//!
//! * the queue-occupancy gauge's high-water mark never exceeds the
//!   configured bound (`queue_capacity + 1`: up to `capacity` buffered
//!   messages plus at most one in the producer's hand-off), and
//! * the backpressure stall counters stay at zero when the consumer is
//!   guaranteed to outpace the producer (capacity >= steps makes the
//!   queue deterministically never-full, independent of scheduling).
//!
//! Both invariants read the process-wide registry, so they live in one
//! serial `#[test]` — ordering between the two runs matters (the
//! high-water mark is cumulative).

use ibis_analysis::Metric;
use ibis_core::{Binner, RowOrder};
use ibis_datagen::{Heat3D, Heat3DConfig};
use ibis_insitu::{
    run_pipeline, CoreAllocation, LocalDisk, MachineModel, PipelineConfig, Reduction,
    RobustnessConfig, ScalingModel,
};
use ibis_obs::MetricValue;

fn cfg(queue_capacity: usize) -> PipelineConfig {
    PipelineConfig {
        machine: MachineModel::xeon32(),
        cores: 4,
        allocation: CoreAllocation::Separate {
            sim_cores: 2,
            bitmap_cores: 2,
        },
        reduction: Reduction::Bitmaps,
        steps: 13,
        select_k: 4,
        metric: Metric::ConditionalEntropy,
        binners: vec![Binner::precision(-1.0, 101.0, 0)],
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity,
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
    }
}

fn heat() -> Heat3D {
    Heat3D::new(Heat3DConfig {
        nx: 12,
        ny: 12,
        nz: 12,
        ..Heat3DConfig::tiny()
    })
}

fn counter(name: &str) -> u64 {
    match ibis_obs::global().snapshot().get(name) {
        Some(MetricValue::Counter(v)) => *v,
        None => 0,
        other => panic!("{name}: expected a counter, got {other:?}"),
    }
}

fn gauge(name: &str) -> (i64, i64) {
    match ibis_obs::global().snapshot().get(name) {
        Some(MetricValue::Gauge { value, max }) => (*value, *max),
        other => panic!("{name}: expected a gauge, got {other:?}"),
    }
}

#[test]
fn queue_gauge_bounded_and_stalls_zero_when_consumer_keeps_up() {
    if !ibis_obs::ENABLED {
        let disk = LocalDisk::new(1e9);
        run_pipeline(heat(), &cfg(2), &disk).unwrap();
        assert!(
            ibis_obs::global().snapshot().is_empty(),
            "no-op build must record nothing"
        );
        return;
    }

    // --- invariant 1: occupancy high-water mark <= capacity + 1 ---
    let capacity = 2usize;
    let disk = LocalDisk::new(1e9);
    run_pipeline(heat(), &cfg(capacity), &disk).unwrap();

    let (bound, _) = gauge("pipeline.queue.bound");
    assert_eq!(bound, capacity as i64 + 1, "published bound");
    let (in_flight, watermark) = gauge("pipeline.queue.in_flight");
    assert_eq!(in_flight, 0, "a finished run leaves nothing in flight");
    assert!(
        watermark <= bound,
        "queue occupancy watermark {watermark} exceeded bound {bound}"
    );
    assert!(watermark >= 1, "a Separate run must put steps in flight");

    // --- invariant 2: capacity >= steps means the producer can never
    // find the queue full, so the stall path must not fire ---
    let stalls_before = counter("pipeline.queue.stalls");
    let stall_ns_before = counter("pipeline.queue.stall_ns");
    let roomy = cfg(13); // capacity == steps: deterministically never full
    run_pipeline(heat(), &roomy, &disk).unwrap();
    assert_eq!(
        counter("pipeline.queue.stalls"),
        stalls_before,
        "stall counter moved although the queue could never fill"
    );
    assert_eq!(
        counter("pipeline.queue.stall_ns"),
        stall_ns_before,
        "stall time accrued although the queue could never fill"
    );
}
