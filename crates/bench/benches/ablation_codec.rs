//! Codec-comparison ablation — `cargo bench -p ibis-bench --bench ablation_codec`.

fn main() {
    ibis_bench::ablations::ablation_codec();
}
