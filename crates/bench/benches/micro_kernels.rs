//! Criterion micro-benchmarks for the compute kernels: WAH construction
//! and logical operations (vs the uncompressed baseline), the bitmap vs
//! full-data metric kernels, and the correlation-mining inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibis_analysis::emd::{emd_spatial_full, emd_spatial_index};
use ibis_analysis::entropy::{conditional_entropy_full, conditional_entropy_index};
use ibis_analysis::{
    aggregate, correlation_query, mine_full, mine_index, MiningConfig, SubsetQuery,
};
use ibis_core::{Binner, BitmapIndex, Bitset, MultiWahBuilder, WahVec};
use ibis_datagen::{OceanConfig, OceanModel};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 1 << 20; // 1M elements

fn smooth_field(phase: f64) -> Vec<f64> {
    (0..N).map(|i| (i as f64 * 1e-4 + phase).sin() * 50.0).collect()
}

fn bench_build(c: &mut Criterion) {
    let data = smooth_field(0.0);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let ids = binner.bin_all(&data);
    let mut g = c.benchmark_group("build");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("algorithm1_streaming_1M", |b| {
        b.iter(|| {
            let mut mb = MultiWahBuilder::new(binner.nbins());
            mb.extend_from(black_box(&ids));
            black_box(mb.finish())
        })
    });
    g.bench_function("index_build_with_binning_1M", |b| {
        b.iter(|| black_box(BitmapIndex::build(black_box(&data), binner.clone())))
    });
    g.bench_function("uncompressed_bitsets_1M", |b| {
        b.iter(|| {
            let mut sets: Vec<Bitset> =
                (0..binner.nbins()).map(|_| Bitset::new(N as u64)).collect();
            for (i, &id) in ids.iter().enumerate() {
                sets[id as usize].set(i as u64, true);
            }
            black_box(sets)
        })
    });
    g.finish();
}

fn bench_ops(c: &mut Criterion) {
    // runs-heavy vectors (the smooth-field regime WAH targets)
    let a = WahVec::from_bits((0..N as u64).map(|i| (i / 1000) % 3 == 0));
    let b = WahVec::from_bits((0..N as u64).map(|i| (i / 700) % 4 == 0));
    let mut g = c.benchmark_group("wah_ops");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("and_1M", |bch| bch.iter(|| black_box(a.and(&b))));
    g.bench_function("xor_1M", |bch| bch.iter(|| black_box(a.xor(&b))));
    g.bench_function("and_count_1M", |bch| bch.iter(|| black_box(a.and_count(&b))));
    g.bench_function("xor_count_1M", |bch| bch.iter(|| black_box(a.xor_count(&b))));
    g.bench_function("count_ones_1M", |bch| bch.iter(|| black_box(a.count_ones())));
    g.bench_function("count_per_unit_1M", |bch| {
        bch.iter(|| black_box(a.count_ones_per_unit(4096)))
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = smooth_field(0.0);
    let b = smooth_field(0.9);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let ia = BitmapIndex::build(&a, binner.clone());
    let ib = BitmapIndex::build(&b, binner.clone());
    let mut g = c.benchmark_group("metrics");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("cond_entropy_fulldata_1M", |bch| {
        bch.iter(|| black_box(conditional_entropy_full(&a, &b, &binner, &binner)))
    });
    g.bench_function("cond_entropy_bitmaps_1M", |bch| {
        bch.iter(|| black_box(conditional_entropy_index(&ia, &ib)))
    });
    g.bench_function("emd_spatial_fulldata_1M", |bch| {
        bch.iter(|| black_box(emd_spatial_full(&a, &b, &binner)))
    });
    g.bench_function("emd_spatial_bitmaps_1M", |bch| {
        bch.iter(|| black_box(emd_spatial_index(&ia, &ib)))
    });
    g.finish();
}

fn bench_mining(c: &mut Criterion) {
    let cfg = OceanConfig { nlon: 128, nlat: 96, ndepth: 2, ..Default::default() };
    let ocean = OceanModel::new(cfg);
    let t = ocean.variable("temperature");
    let s = ocean.variable("salinity");
    let bt = Binner::fit(&t, 24);
    let bs = Binner::fit(&s, 24);
    let it = BitmapIndex::build(&t, bt.clone());
    let is = BitmapIndex::build(&s, bs.clone());
    let mc = MiningConfig { value_threshold: 0.002, spatial_threshold: 0.08, unit_size: 512 };
    let mut g = c.benchmark_group("mining");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (label, bitmaps) in [("bitmaps", true), ("fulldata", false)] {
        g.bench_with_input(BenchmarkId::new("ocean_24k", label), &bitmaps, |bch, &bm| {
            bch.iter(|| {
                if bm {
                    black_box(mine_index(&it, &is, &mc))
                } else {
                    black_box(mine_full(&t, &s, &bt, &bs, &mc))
                }
            })
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let a = smooth_field(0.0);
    let b = smooth_field(1.3);
    let binner = Binner::fixed_width(-51.0, 51.0, 100);
    let ia = BitmapIndex::build(&a, binner.clone());
    let ib = BitmapIndex::build(&b, binner.clone());
    let mut g = c.benchmark_group("queries");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("range_query_1M", |bch| {
        bch.iter(|| black_box(ia.query_range(black_box(-10.0), black_box(10.0))))
    });
    g.bench_function("approx_mean_1M", |bch| bch.iter(|| black_box(aggregate::mean(&ia))));
    g.bench_function("approx_pearson_1M", |bch| {
        bch.iter(|| black_box(aggregate::pearson(&ia, &ib)))
    });
    let region = SubsetQuery::region(100_000..500_000);
    g.bench_function("correlation_query_region_1M", |bch| {
        bch.iter(|| black_box(correlation_query(&ia, &ib, &region, &SubsetQuery::all())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_ops,
    bench_metrics,
    bench_mining,
    bench_queries
);
criterion_main!(benches);
