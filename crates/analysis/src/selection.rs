//! Importance-driven time-steps selection (Section 3): pick `K` of `N`
//! time-steps that best represent the evolution of the phenomenon.
//!
//! The greedy algorithm of Wang et al. (as implemented by the paper):
//! partition the steps into intervals, and in each interval keep the step
//! with minimum correlation to (maximum dissimilarity from) the previously
//! selected step. Two partitioners are provided — fixed-length and
//! information-volume — plus the dynamic-programming selector of Tong et
//! al. as the extension the paper mentions but does not implement.

use crate::summary::{Metric, StepSummary};
use ibis_obs::{LazyCounter, LazyHistogram};
use rayon::prelude::*;
use std::ops::Range;

static OBS_SELECT_RUNS: LazyCounter = LazyCounter::new("analysis.select.runs");
static OBS_SELECT_NS: LazyHistogram =
    LazyHistogram::new("analysis.select.ns", ibis_obs::TIME_NS_BOUNDS);

/// How to slice the time axis into intervals (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Every interval holds the same number of steps (the paper's
    /// evaluation setting).
    FixedLength,
    /// Intervals hold equal accumulated importance (Shannon entropy).
    InfoVolume,
}

/// The outcome of a selection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Selected step indices in increasing order; always starts with 0.
    pub selected: Vec<usize>,
}

/// Splits indices `1..n` into `parts` non-empty contiguous intervals with
/// (approximately) equal `weights` totals; `weights[i]` is the importance of
/// step `i` (entry 0 is ignored — step 0 is always selected on its own).
pub fn weighted_intervals(weights: &[f64], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    assert!(
        parts >= 1 && parts <= n.saturating_sub(1),
        "cannot cut {n} steps into {parts} parts"
    );
    let total: f64 = weights[1..].iter().sum();
    let target = total / parts as f64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 1usize;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate().skip(1) {
        acc += w;
        let remaining_intervals = parts - out.len();
        let remaining_steps = n - i - 1;
        // close the interval when the quota is met, but keep enough steps
        // for the remaining intervals and never exceed the interval budget
        let must_close = remaining_steps < remaining_intervals;
        if (acc >= target && out.len() + 1 < parts) || must_close {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0.0;
            if out.len() == parts {
                break;
            }
        }
    }
    if out.len() < parts {
        out.push(start..n);
    }
    debug_assert_eq!(out.len(), parts);
    out
}

/// Equal-length split of indices `1..n` into `parts` intervals.
pub fn fixed_intervals(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(
        parts >= 1 && parts <= n.saturating_sub(1),
        "cannot cut {n} steps into {parts} parts"
    );
    let m = n - 1; // steps 1..n
    let base = m / parts;
    let extra = m % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 1usize;
    for p in 0..parts {
        let take = base + usize::from(p < extra);
        out.push(start..start + take);
        start += take;
    }
    out
}

/// Greedy selection (Figure 3): step 0 seeds the chain; each interval
/// contributes the step with the largest `metric(candidate, previous)`.
///
/// Candidate metrics within an interval are independent, so they are
/// evaluated on the rayon pool and collected in interval order; the argmax
/// then runs serially over that ordered table with the same last-maximum
/// tie-breaking as [`Iterator::max_by`], so the selected set is
/// byte-identical to [`select_greedy_serial`] (tested).
///
/// Returns `k` indices in increasing order.
///
/// # Panics
/// Panics if `k` is 0 or exceeds the step count.
pub fn select_greedy(
    steps: &[StepSummary],
    k: usize,
    metric: Metric,
    partitioning: Partitioning,
) -> Selection {
    OBS_SELECT_RUNS.inc();
    let _span = OBS_SELECT_NS.span();
    let n = steps.len();
    assert!(k >= 1 && k <= n, "cannot select {k} of {n} steps");
    let mut selected = vec![0usize];
    if k == 1 || n == 1 {
        return Selection { selected };
    }
    let intervals = partition(steps, k, partitioning);
    let mut prev = 0usize;
    for interval in intervals {
        let scores: Vec<f64> = interval
            .clone()
            .into_par_iter()
            .map(|i| steps[i].metric(&steps[prev], metric))
            .collect();
        let best = interval.start + argmax_last(&scores);
        selected.push(best);
        prev = best;
    }
    Selection { selected }
}

/// Greedy selection evaluated strictly serially — the regression baseline
/// for [`select_greedy`]'s parallel candidate scoring.
pub fn select_greedy_serial(
    steps: &[StepSummary],
    k: usize,
    metric: Metric,
    partitioning: Partitioning,
) -> Selection {
    let n = steps.len();
    assert!(k >= 1 && k <= n, "cannot select {k} of {n} steps");
    let mut selected = vec![0usize];
    if k == 1 || n == 1 {
        return Selection { selected };
    }
    let intervals = partition(steps, k, partitioning);
    let mut prev = 0usize;
    for interval in intervals {
        let best = interval
            .clone()
            .max_by(|&a, &b| {
                let ma = steps[a].metric(&steps[prev], metric);
                let mb = steps[b].metric(&steps[prev], metric);
                ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("intervals are non-empty");
        selected.push(best);
        prev = best;
    }
    Selection { selected }
}

/// Greedy selection over *lossy* step summaries: every bitmap summary is
/// first mapped through its [`lossy superset`](StepSummary::lossy) at
/// `fpr`, then [`select_greedy`] runs on the shrunken summaries. The
/// selection is approximate exactly as far as the FPR lets the per-bin
/// histograms drift — at tight FPRs it reproduces the exact selection
/// (tested) while holding a fraction of the resident bytes during the
/// O(N·K) metric evaluation. Returns the selection plus the merged drop
/// accounting across every summary.
///
/// # Panics
/// Panics if any summary is full-data (lossiness is a bitmap-side notion),
/// if `fpr` is outside the supported range, or on the [`select_greedy`]
/// preconditions.
pub fn select_greedy_lossy(
    steps: &[StepSummary],
    k: usize,
    metric: Metric,
    partitioning: Partitioning,
    fpr: f64,
) -> (Selection, ibis_core::LossyStats) {
    let mut stats = ibis_core::LossyStats::default();
    let lossy: Vec<StepSummary> = steps
        .iter()
        .map(|s| {
            let (l, st) = s.lossy(fpr);
            stats.merge(&st);
            l
        })
        .collect();
    (select_greedy(&lossy, k, metric, partitioning), stats)
}

/// Shared interval computation for the greedy selectors.
fn partition(steps: &[StepSummary], k: usize, partitioning: Partitioning) -> Vec<Range<usize>> {
    let n = steps.len();
    match partitioning {
        Partitioning::FixedLength => fixed_intervals(n, k - 1),
        Partitioning::InfoVolume => {
            let weights: Vec<f64> = steps.iter().map(StepSummary::entropy).collect();
            weighted_intervals(&weights, k - 1)
        }
    }
}

/// Index of the maximum score, taking the **last** of equal maxima —
/// exactly [`Iterator::max_by`]'s tie-breaking (incomparable pairs compare
/// equal, as in the serial selector).
fn argmax_last(scores: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, s) in scores.iter().enumerate().skip(1) {
        if scores[best]
            .partial_cmp(s)
            .unwrap_or(std::cmp::Ordering::Equal)
            != std::cmp::Ordering::Greater
        {
            best = i;
        }
    }
    best
}

/// Dynamic-programming selection (Tong et al.): maximizes the *total*
/// dissimilarity along the selected chain instead of greedily maximizing
/// each link. O(n²·k) metric evaluations — the efficiency cost the paper
/// cites for preferring the greedy method; bitmaps make each evaluation
/// cheap enough to afford it.
pub fn select_dp(steps: &[StepSummary], k: usize, metric: Metric) -> Selection {
    OBS_SELECT_RUNS.inc();
    let _span = OBS_SELECT_NS.span();
    let n = steps.len();
    assert!(k >= 1 && k <= n, "cannot select {k} of {n} steps");
    if k == 1 {
        return Selection { selected: vec![0] };
    }
    // pairwise dissimilarity cache: pair[i][p] = metric(steps[i], steps[p]).
    // Rows are independent, so the O(n²) metric evaluations — the dominant
    // cost — run on the rayon pool; the ordered collect keeps the table
    // (and therefore the DP) identical to a serial fill.
    let pair: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| (0..i).map(|p| steps[i].metric(&steps[p], metric)).collect())
        .collect();
    dp_solve(&pair, n, k)
}

/// [`select_dp`] with a serially-filled pairwise table — the regression
/// baseline for the parallel table build.
pub fn select_dp_serial(steps: &[StepSummary], k: usize, metric: Metric) -> Selection {
    let n = steps.len();
    assert!(k >= 1 && k <= n, "cannot select {k} of {n} steps");
    if k == 1 {
        return Selection { selected: vec![0] };
    }
    let pair: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..i).map(|p| steps[i].metric(&steps[p], metric)).collect())
        .collect();
    dp_solve(&pair, n, k)
}

/// The chain DP over a lower-triangular pairwise dissimilarity table.
fn dp_solve(pair: &[Vec<f64>], n: usize, k: usize) -> Selection {
    const NEG: f64 = f64::NEG_INFINITY;
    // dp[j][i]: best chain value selecting j+1 steps, first = 0, last = i
    let mut dp = vec![vec![NEG; n]; k];
    let mut from = vec![vec![usize::MAX; n]; k];
    dp[0][0] = 0.0;
    for j in 1..k {
        for i in j..n {
            for p in (j - 1)..i {
                if dp[j - 1][p] > NEG {
                    let cand = dp[j - 1][p] + pair[i][p];
                    if cand > dp[j][i] {
                        dp[j][i] = cand;
                        from[j][i] = p;
                    }
                }
            }
        }
    }
    let mut last = (k - 1..n)
        .max_by(|&a, &b| dp[k - 1][a].partial_cmp(&dp[k - 1][b]).unwrap())
        .expect("non-empty range");
    let mut selected = Vec::with_capacity(k);
    for j in (0..k).rev() {
        selected.push(last);
        if j > 0 {
            last = from[j][last];
        }
    }
    selected.reverse();
    Selection { selected }
}

/// Total chain dissimilarity of a selection (the DP objective) — useful for
/// comparing selectors.
pub fn chain_score(steps: &[StepSummary], selected: &[usize], metric: Metric) -> f64 {
    selected
        .windows(2)
        .map(|w| steps[w[1]].metric(&steps[w[0]], metric))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::VarSummary;
    use ibis_core::Binner;

    fn binner() -> Binner {
        Binner::fixed_width(-1.1, 1.1, 16)
    }

    /// Steps drifting smoothly except for abrupt regime changes at given
    /// steps — a good selector must land near the changes.
    fn make_steps(n: usize, bitmap: bool) -> Vec<StepSummary> {
        (0..n)
            .map(|s| {
                let phase = if s < n / 2 { 0.0 } else { 2.0 };
                let data: Vec<f64> = (0..600)
                    .map(|i| ((i as f64 * 0.03) + phase + s as f64 * 0.01).sin())
                    .collect();
                let var = if bitmap {
                    VarSummary::bitmap(&data, binner())
                } else {
                    VarSummary::full(data, binner())
                };
                StepSummary {
                    step: s,
                    vars: vec![var],
                }
            })
            .collect()
    }

    #[test]
    fn fixed_intervals_cover_1_to_n() {
        for (n, parts) in [(10usize, 3usize), (101, 24), (5, 4), (2, 1)] {
            let iv = fixed_intervals(n, parts);
            assert_eq!(iv.len(), parts);
            assert_eq!(iv[0].start, 1);
            assert_eq!(iv.last().unwrap().end, n);
            for w in iv.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn weighted_intervals_balance_mass() {
        let mut weights = vec![1.0; 21];
        // pile importance onto the early steps
        for w in weights.iter_mut().take(6) {
            *w = 10.0;
        }
        let iv = weighted_intervals(&weights, 4);
        assert_eq!(iv.len(), 4);
        assert_eq!(iv[0].start, 1);
        assert_eq!(iv.last().unwrap().end, 21);
        // the first interval should be short (high density of importance)
        assert!(iv[0].len() < iv.last().unwrap().len());
        for r in &iv {
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn weighted_intervals_all_equal_weights_look_fixed() {
        let weights = vec![1.0; 13];
        let iv = weighted_intervals(&weights, 3);
        let lens: Vec<usize> = iv.iter().map(|r| r.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 12);
        assert!(lens.iter().all(|&l| l == 4), "{lens:?}");
    }

    #[test]
    fn greedy_selects_k_increasing_starting_at_zero() {
        let steps = make_steps(20, true);
        for k in [1usize, 2, 5, 10, 20] {
            let sel = select_greedy(&steps, k, Metric::Emd, Partitioning::FixedLength);
            assert_eq!(sel.selected.len(), k);
            assert_eq!(sel.selected[0], 0);
            assert!(sel.selected.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn greedy_bitmap_equals_greedy_full() {
        // The paper's exactness claim carried to the selection level: the
        // two methods pick the identical step set.
        let full = make_steps(16, false);
        let bm = make_steps(16, true);
        for metric in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
            for part in [Partitioning::FixedLength, Partitioning::InfoVolume] {
                let a = select_greedy(&full, 5, metric, part);
                let b = select_greedy(&bm, 5, metric, part);
                assert_eq!(a, b, "{metric:?} {part:?}");
            }
        }
    }

    #[test]
    fn greedy_prefers_regime_change() {
        // With one extra pick beyond the seed, the selector should cross
        // into the second regime (max dissimilarity from step 0).
        let steps = make_steps(20, true);
        let sel = select_greedy(&steps, 2, Metric::EmdSpatial, Partitioning::FixedLength);
        assert!(
            sel.selected[1] >= 10,
            "picked {} — should be in the changed regime",
            sel.selected[1]
        );
    }

    #[test]
    fn parallel_and_serial_selectors_identical() {
        let steps = make_steps(18, true);
        for metric in [Metric::ConditionalEntropy, Metric::Emd, Metric::EmdSpatial] {
            for part in [Partitioning::FixedLength, Partitioning::InfoVolume] {
                for k in [2usize, 5, 9] {
                    let par = select_greedy(&steps, k, metric, part);
                    let ser = select_greedy_serial(&steps, k, metric, part);
                    assert_eq!(par, ser, "{metric:?} {part:?} k={k}");
                }
            }
            let par = select_dp(&steps, 5, metric);
            let ser = select_dp_serial(&steps, 5, metric);
            assert_eq!(par, ser, "{metric:?} dp");
        }
    }

    #[test]
    fn dp_at_least_as_good_as_greedy() {
        let steps = make_steps(12, true);
        let metric = Metric::Emd;
        let greedy = select_greedy(&steps, 4, metric, Partitioning::FixedLength);
        let dp = select_dp(&steps, 4, metric);
        assert_eq!(dp.selected.len(), 4);
        assert_eq!(dp.selected[0], 0);
        let gs = chain_score(&steps, &greedy.selected, metric);
        let ds = chain_score(&steps, &dp.selected, metric);
        assert!(ds >= gs - 1e-9, "dp {ds} must be >= greedy {gs}");
    }

    #[test]
    fn select_all_steps() {
        let steps = make_steps(6, true);
        let sel = select_greedy(&steps, 6, Metric::Emd, Partitioning::FixedLength);
        assert_eq!(sel.selected, vec![0, 1, 2, 3, 4, 5]);
        let dp = select_dp(&steps, 6, Metric::Emd);
        assert_eq!(dp.selected, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_k_zero() {
        let steps = make_steps(3, true);
        let _ = select_greedy(&steps, 0, Metric::Emd, Partitioning::FixedLength);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_k_too_large() {
        let steps = make_steps(3, true);
        let _ = select_dp(&steps, 4, Metric::Emd);
    }

    #[test]
    fn lossy_selection_matches_exact_at_tight_fpr_and_shrinks() {
        let steps = make_steps(20, true);
        let exact = select_greedy(
            &steps,
            5,
            Metric::ConditionalEntropy,
            Partitioning::FixedLength,
        );
        for fpr in [1e-4, 1e-3] {
            let (lossy, stats) = select_greedy_lossy(
                &steps,
                5,
                Metric::ConditionalEntropy,
                Partitioning::FixedLength,
                fpr,
            );
            assert_eq!(lossy, exact, "fpr {fpr} drifted the selection");
            assert!(stats.measured_fpr() <= fpr);
        }
        // at the loose end the summaries must actually shrink — needs a
        // field with short 0-runs: a drifting ramp with single-element
        // excursions pokes one-bit holes into each bin's occupancy run
        let noisy: Vec<StepSummary> = (0..6)
            .map(|s| {
                let data: Vec<f64> = (0..2000)
                    .map(|i| {
                        if (i + s) % 40 == 0 {
                            0.9
                        } else {
                            -1.0 + i as f64 * 0.001
                        }
                    })
                    .collect();
                StepSummary {
                    step: s,
                    vars: vec![VarSummary::bitmap(&data, binner())],
                }
            })
            .collect();
        let (_, stats) = select_greedy_lossy(
            &noisy,
            3,
            Metric::ConditionalEntropy,
            Partitioning::FixedLength,
            1e-1,
        );
        assert!(stats.bits_dropped > 0);
        assert!(stats.measured_fpr() <= 1e-1);
        let lossy_bytes: usize = noisy.iter().map(|s| s.lossy(1e-1).0.size_bytes()).sum();
        let exact_bytes: usize = noisy.iter().map(StepSummary::size_bytes).sum();
        assert!(
            lossy_bytes < exact_bytes,
            "lossy {lossy_bytes} vs exact {exact_bytes} resident bytes"
        );
    }

    #[test]
    #[should_panic(expected = "bitmap summaries only")]
    fn lossy_selection_rejects_full_summaries() {
        let steps = make_steps(4, false);
        let _ = select_greedy_lossy(
            &steps,
            2,
            Metric::ConditionalEntropy,
            Partitioning::FixedLength,
            1e-2,
        );
    }
}
