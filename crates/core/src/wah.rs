//! The WAH-compressed bitvector used throughout `ibis`.
//!
//! This is the 32-bit word-aligned-hybrid variant from the paper's
//! Algorithm 1:
//!
//! * **literal word** — most-significant bit is `0`; the low 31 bits hold a
//!   31-bit segment of the bitvector, LSB-first (bit `j` of the segment is
//!   `1 << j`).
//! * **0-fill word** — the top two bits are `10`; the low 30 bits count the
//!   number of zero *bits* covered (always a multiple of 31).
//! * **1-fill word** — the top two bits are `11`; the low 30 bits count the
//!   number of one *bits* covered (always a multiple of 31).
//!
//! Unlike classic WAH (which counts fill *words*), the paper's variant counts
//! fill *bits* and extends a fill by literally adding `31` to the previous
//! word (`LastSeg += 31` in Algorithm 1); we keep that representation.
//!
//! A vector of `len` bits where `len % 31 != 0` stores its final partial
//! segment in a trailing literal word holding `len % 31` bits; everything
//! before the tail covers whole 31-bit segments.

use std::sync::OnceLock;

use crate::builder::WahBuilder;
use crate::kernels::WahStats;
use crate::runs::{Run, RunIter};

/// Number of payload bits per literal word / per fill increment.
pub const SEG_BITS: u64 = 31;
/// Mask selecting the 31 payload bits of a literal word.
pub const LITERAL_MASK: u32 = 0x7FFF_FFFF;
/// Mask selecting the two flag bits of a word.
pub const FLAG_MASK: u32 = 0xC000_0000;
/// Flag bits of a 0-fill word (`10…`).
pub const ZERO_FILL: u32 = 0x8000_0000;
/// Flag bits of a 1-fill word (`11…`).
pub const ONE_FILL: u32 = 0xC000_0000;
/// Mask selecting the 30-bit fill counter.
pub const COUNT_MASK: u32 = 0x3FFF_FFFF;
/// Largest bit count a single fill word may hold (a multiple of 31 chosen so
/// that adding another 31 bits can never overflow into the flag bits).
pub const MAX_FILL_BITS: u64 = ((COUNT_MASK as u64 - SEG_BITS) / SEG_BITS) * SEG_BITS;

/// Returns `true` if `word` is a fill word (of either bit).
#[inline]
pub fn is_fill(word: u32) -> bool {
    word & ZERO_FILL != 0
}

/// Returns `true` if `word` is a 1-fill word.
#[inline]
pub fn is_one_fill(word: u32) -> bool {
    word & FLAG_MASK == ONE_FILL
}

/// Returns `true` if `word` is a 0-fill word.
#[inline]
pub fn is_zero_fill(word: u32) -> bool {
    word & FLAG_MASK == ZERO_FILL
}

/// Number of bits covered by a fill word.
#[inline]
pub fn fill_bits(word: u32) -> u64 {
    (word & COUNT_MASK) as u64
}

/// Builds a fill word for `bit` covering `nbits` bits.
///
/// # Panics
/// Panics when `nbits` exceeds the 30-bit fill counter or is not a
/// positive multiple of 31. These are real asserts, not debug asserts: a
/// count above [`COUNT_MASK`] would otherwise silently truncate into the
/// flag bits in release builds and corrupt the vector — runs longer than
/// one fill word can hold must be *split* by the caller (as
/// `WahBuilder::append_fill_aligned` does), never clamped here.
#[inline]
pub fn make_fill(bit: bool, nbits: u64) -> u32 {
    assert!(
        nbits <= COUNT_MASK as u64,
        "fill of {nbits} bits overflows the 30-bit counter; split the run"
    );
    assert!(
        nbits.is_multiple_of(SEG_BITS) && nbits > 0,
        "fill of {nbits} bits is not a positive multiple of 31"
    );
    (if bit { ONE_FILL } else { ZERO_FILL }) | nbits as u32
}

/// Why a raw word stream fails [`WahVec::try_from_raw`] validation. A
/// decoder that executes such a stream anyway would read out of bounds or
/// mis-count runs, so every variant must be rejected before construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawWahError {
    /// A fill word with a zero or non-segment-aligned run length.
    MalformedFill {
        /// Index of the offending word.
        word: usize,
    },
    /// A fill word whose run extends past the declared bit length.
    OverlongFill {
        /// Index of the offending word.
        word: usize,
        /// Bits covered before this word.
        covered: u64,
        /// Run length the fill claims.
        run_bits: u64,
        /// Declared total bit length.
        len_bits: u64,
    },
    /// A literal word with bits set beyond the tail mask.
    UnmaskedLiteral {
        /// Index of the offending word.
        word: usize,
    },
    /// Words continue after the declared bit length was already covered.
    TrailingWords {
        /// Index of the first excess word.
        word: usize,
    },
    /// The words end before covering the declared bit length.
    ShortWords {
        /// Bits the words actually cover.
        covered: u64,
        /// Declared total bit length.
        len_bits: u64,
    },
}

impl std::fmt::Display for RawWahError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RawWahError::MalformedFill { word } => {
                write!(f, "word {word}: fill with zero or misaligned run length")
            }
            RawWahError::OverlongFill {
                word,
                covered,
                run_bits,
                len_bits,
            } => write!(
                f,
                "word {word}: fill of {run_bits} bits at offset {covered} \
                 overruns the declared length {len_bits}"
            ),
            RawWahError::UnmaskedLiteral { word } => {
                write!(f, "word {word}: literal with bits beyond the tail mask")
            }
            RawWahError::TrailingWords { word } => {
                write!(f, "word {word}: words continue past the declared length")
            }
            RawWahError::ShortWords { covered, len_bits } => write!(
                f,
                "words cover only {covered} of the declared {len_bits} bits"
            ),
        }
    }
}

impl std::error::Error for RawWahError {}

/// A WAH-compressed bitvector.
///
/// `WahVec` is the compressed bitvector produced by the paper's streaming
/// Algorithm 1 and consumed by every bitmap-only analysis: logical
/// AND/OR/XOR run directly on the compressed words, and 1-bit counts are
/// computed without decompression.
///
/// ```
/// use ibis_core::WahVec;
///
/// let a = WahVec::from_bits((0..100).map(|i| i % 2 == 0));
/// let b = WahVec::from_bits((0..100).map(|i| i % 3 == 0));
/// let both = a.and(&b); // positions divisible by 6
/// assert_eq!(both.count_ones(), 17);
/// ```
#[derive(Clone)]
pub struct WahVec {
    pub(crate) words: Vec<u32>,
    pub(crate) len_bits: u64,
    /// Lazily-computed stats header (word/run counts, popcount, density);
    /// filled on first use and carried along by `Clone`. Not part of the
    /// vector's identity — equality and hashing use only the words.
    pub(crate) stats: OnceLock<WahStats>,
}

impl PartialEq for WahVec {
    fn eq(&self, other: &Self) -> bool {
        self.len_bits == other.len_bits && self.words == other.words
    }
}

impl Eq for WahVec {}

impl std::hash::Hash for WahVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.words.hash(state);
        self.len_bits.hash(state);
    }
}

impl std::fmt::Debug for WahVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WahVec {{ len: {}, ones: {}, words: {} }}",
            self.len_bits,
            self.count_ones(),
            self.words.len()
        )
    }
}

impl WahVec {
    /// The empty bitvector.
    pub fn new() -> Self {
        WahVec {
            words: Vec::new(),
            len_bits: 0,
            stats: OnceLock::new(),
        }
    }

    /// An all-zeros bitvector of `len` bits.
    pub fn zeros(len: u64) -> Self {
        Self::filled(false, len)
    }

    /// An all-ones bitvector of `len` bits.
    pub fn ones(len: u64) -> Self {
        Self::filled(true, len)
    }

    fn filled(bit: bool, len: u64) -> Self {
        let mut b = WahBuilder::new();
        b.append_run(bit, len);
        b.finish()
    }

    /// Builds a vector from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut b = WahBuilder::new();
        for bit in bits {
            b.push_bit(bit);
        }
        b.finish()
    }

    /// Builds a vector of `len` bits with ones at the given sorted,
    /// strictly-increasing positions.
    ///
    /// # Panics
    /// Panics if positions are not strictly increasing or exceed `len`.
    pub fn from_ones(positions: &[u64], len: u64) -> Self {
        let mut b = WahBuilder::new();
        let mut cur = 0u64;
        for &p in positions {
            assert!(p >= cur, "positions must be strictly increasing");
            assert!(p < len, "position {p} out of range {len}");
            b.append_run(false, p - cur);
            b.push_bit(true);
            cur = p + 1;
        }
        b.append_run(false, len - cur);
        b.finish()
    }

    /// Reconstructs a vector from raw compressed words and its bit length
    /// (deserialization). Returns `None` unless the words cover exactly
    /// `len_bits` bits with well-formed fills and masked literals.
    pub fn from_raw(words: Vec<u32>, len_bits: u64) -> Option<Self> {
        Self::try_from_raw(words, len_bits).ok()
    }

    /// [`WahVec::from_raw`] with a typed verdict on *why* the words are
    /// malformed — the distinction a robust decoder needs to report
    /// adversarial or torn inputs instead of collapsing them into `None`.
    pub fn try_from_raw(words: Vec<u32>, len_bits: u64) -> Result<Self, RawWahError> {
        let mut covered = 0u64;
        for (i, &w) in words.iter().enumerate() {
            if covered >= len_bits {
                return Err(RawWahError::TrailingWords { word: i });
            }
            if is_fill(w) {
                let n = fill_bits(w);
                if n == 0 || !n.is_multiple_of(SEG_BITS) {
                    return Err(RawWahError::MalformedFill { word: i });
                }
                if covered + n > len_bits {
                    return Err(RawWahError::OverlongFill {
                        word: i,
                        covered,
                        run_bits: n,
                        len_bits,
                    });
                }
                covered += n;
            } else {
                let nbits = (len_bits - covered).min(SEG_BITS);
                let mask = if nbits == SEG_BITS {
                    LITERAL_MASK
                } else {
                    (1u32 << nbits) - 1
                };
                if w & !mask != 0 {
                    return Err(RawWahError::UnmaskedLiteral { word: i });
                }
                covered += nbits;
            }
        }
        if covered != len_bits {
            return Err(RawWahError::ShortWords { covered, len_bits });
        }
        Ok(WahVec {
            words,
            len_bits,
            stats: OnceLock::new(),
        })
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len_bits
    }

    /// `true` if the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The raw compressed words (for inspection / serialization).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Compressed size in bytes (words + header), the quantity the paper's
    /// memory and I/O accounting uses.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4 + std::mem::size_of::<WahVec>()
    }

    /// Iterates the decoded runs of the vector.
    #[inline]
    pub(crate) fn runs(&self) -> RunIter<'_> {
        RunIter::new(&self.words, self.len_bits)
    }

    /// Number of 1-bits; computed on the compressed form once and cached
    /// in the stats header.
    pub fn count_ones(&self) -> u64 {
        self.stats().ones
    }

    /// The cached statistics header (word count, kernel-run count,
    /// popcount, density), computed in one pass on first use.
    pub fn stats(&self) -> &WahStats {
        self.stats
            .get_or_init(|| crate::kernels::compute_stats(&self.words, self.len_bits))
    }

    /// The adaptive kernels' cutover rule (α = 1): `true` when the
    /// compressed form holds more words than the packed-`u64` verbatim
    /// form (`words > len/64`), at which point ops decode this vector once
    /// and run word-parallel instead of walking its runs.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.words.len() as u64 > self.len_bits / 64
    }

    /// Number of 1-bits in the half-open bit range `[start, end)`.
    pub fn count_ones_in_range(&self, start: u64, end: u64) -> u64 {
        assert!(start <= end && end <= self.len_bits, "range out of bounds");
        let mut total = 0u64;
        let mut pos = 0u64;
        for run in self.runs() {
            if pos >= end {
                break;
            }
            let n = run.len();
            let (lo, hi) = (start.max(pos), end.min(pos + n));
            if lo < hi {
                match run {
                    Run::Fill(true, _) => total += hi - lo,
                    Run::Fill(false, _) => {}
                    Run::Literal(payload, _) => {
                        let off = (lo - pos) as u32;
                        let width = (hi - lo) as u32;
                        let mask = if width == 32 {
                            u32::MAX
                        } else {
                            ((1u32 << width) - 1) << off
                        };
                        total += (payload & mask).count_ones() as u64;
                    }
                }
            }
            pos += n;
        }
        total
    }

    /// 1-bit counts per consecutive unit of `unit_bits` bits (the last unit
    /// may be shorter). One decoding pass; used by the correlation miner's
    /// spatial-unit stage.
    pub fn count_ones_per_unit(&self, unit_bits: u64) -> Vec<u64> {
        assert!(unit_bits > 0, "unit_bits must be positive");
        let nunits = self.len_bits.div_ceil(unit_bits) as usize;
        let mut out = vec![0u64; nunits];
        let mut pos = 0u64;
        for run in self.runs() {
            let mut rem = run.len();
            match run {
                Run::Fill(false, _) => pos += rem,
                Run::Fill(true, _) => {
                    while rem > 0 {
                        let unit = (pos / unit_bits) as usize;
                        let in_unit = (unit as u64 + 1) * unit_bits - pos;
                        let take = in_unit.min(rem);
                        out[unit] += take;
                        pos += take;
                        rem -= take;
                    }
                }
                Run::Literal(payload, nbits) => {
                    let mut payload = payload;
                    let mut rem = nbits as u64;
                    while rem > 0 {
                        let unit = (pos / unit_bits) as usize;
                        let in_unit = (unit as u64 + 1) * unit_bits - pos;
                        let take = in_unit.min(rem) as u32;
                        let mask = if take == 32 {
                            u32::MAX
                        } else {
                            (1u32 << take) - 1
                        };
                        out[unit] += (payload & mask).count_ones() as u64;
                        payload = if take == 32 { 0 } else { payload >> take };
                        pos += take as u64;
                        rem -= take as u64;
                    }
                }
            }
        }
        out
    }

    /// `rank(i)`: number of 1-bits in `[0, i)` — equivalent to
    /// `count_ones_in_range(0, i)` but named for the classic succinct-index
    /// operation.
    pub fn rank(&self, i: u64) -> u64 {
        self.count_ones_in_range(0, i)
    }

    /// `select(k)`: position of the `k`-th 1-bit (0-based), or `None` when
    /// fewer than `k + 1` bits are set. One run-decoding pass.
    pub fn select(&self, k: u64) -> Option<u64> {
        let mut remaining = k;
        let mut pos = 0u64;
        for run in self.runs() {
            match run {
                Run::Fill(false, n) => pos += n,
                Run::Fill(true, n) => {
                    if remaining < n {
                        return Some(pos + remaining);
                    }
                    remaining -= n;
                    pos += n;
                }
                Run::Literal(payload, nbits) => {
                    let ones = payload.count_ones() as u64;
                    if remaining < ones {
                        // walk the word's set bits
                        let mut p = payload;
                        for _ in 0..remaining {
                            p &= p - 1; // clear lowest set bit
                        }
                        return Some(pos + p.trailing_zeros() as u64);
                    }
                    remaining -= ones;
                    pos += nbits as u64;
                }
            }
        }
        None
    }

    /// Reads the bit at position `i` (O(words) scan).
    pub fn get(&self, i: u64) -> bool {
        assert!(
            i < self.len_bits,
            "index {i} out of range {}",
            self.len_bits
        );
        let mut pos = 0u64;
        for run in self.runs() {
            let n = run.len();
            if i < pos + n {
                return match run {
                    Run::Fill(bit, _) => bit,
                    Run::Literal(payload, _) => payload & (1 << (i - pos)) != 0,
                };
            }
            pos += n;
        }
        unreachable!("runs cover fewer bits than len")
    }

    /// Iterates every bit in order.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        self.runs().flat_map(|run| {
            let (bit_fn, n): (Box<dyn Fn(u64) -> bool>, u64) = match run {
                Run::Fill(bit, n) => (Box::new(move |_| bit), n),
                Run::Literal(payload, nbits) => {
                    (Box::new(move |j| payload & (1 << j) != 0), nbits as u64)
                }
            };
            (0..n).map(bit_fn)
        })
    }

    /// Iterates the positions of 1-bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        let mut pos = 0u64;
        self.runs().flat_map(move |run| {
            let base = pos;
            pos += run.len();
            let iter: Box<dyn Iterator<Item = u64>> = match run {
                Run::Fill(true, n) => Box::new(base..base + n),
                Run::Fill(false, _) => Box::new(std::iter::empty()),
                Run::Literal(payload, _) => Box::new(
                    (0..31u64)
                        .filter(move |j| payload & (1 << j) != 0)
                        .map(move |j| base + j),
                ),
            };
            iter
        })
    }

    /// Decompresses into a `Vec<bool>` (testing / debugging aid).
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter_bits().collect()
    }

    /// Appends another vector's bits after this one's. The receiver must end
    /// on a 31-bit segment boundary (the parallel generator partitions data
    /// on such boundaries precisely so sub-block results concatenate).
    ///
    /// # Panics
    /// Panics if `self.len() % 31 != 0` and `other` is non-empty.
    pub fn concat(&mut self, other: &WahVec) {
        if other.is_empty() {
            return;
        }
        assert!(
            self.len_bits.is_multiple_of(SEG_BITS),
            "concat target must end on a segment boundary (len {} % 31 != 0)",
            self.len_bits
        );
        let mut b = WahBuilder::from_vec(std::mem::take(self));
        b.append_wah(other);
        *self = b.finish();
    }

    /// The sub-vector covering the half-open bit range `[start, end)`,
    /// rebuilt in canonical form: slicing and then concatenating
    /// segment-aligned pieces reproduces the original words exactly. This
    /// is the row-range splitter behind spatial sharding — a shard's bin is
    /// `bin.slice(shard_lo..shard_hi)` of the global bin. One pass over the
    /// compressed runs; O(words) when the cut lands inside fills.
    ///
    /// # Panics
    /// Panics when the range is inverted or exceeds the vector length.
    pub fn slice(&self, range: std::ops::Range<u64>) -> WahVec {
        assert!(
            range.start <= range.end && range.end <= self.len_bits,
            "slice {}..{} out of bounds for {} bits",
            range.start,
            range.end,
            self.len_bits
        );
        let mut b = WahBuilder::new();
        let mut pos = 0u64;
        for run in self.runs() {
            if pos >= range.end {
                break;
            }
            let n = run.len();
            let (lo, hi) = (range.start.max(pos), range.end.min(pos + n));
            if lo < hi {
                match run {
                    Run::Fill(bit, _) => b.append_run(bit, hi - lo),
                    Run::Literal(payload, _) => {
                        let off = (lo - pos) as u32;
                        let width = (hi - lo) as u8;
                        let mask = if width as u64 == SEG_BITS {
                            LITERAL_MASK
                        } else {
                            (1u32 << width) - 1
                        };
                        b.append_bits((payload >> off) & mask, width);
                    }
                }
            }
            pos += n;
        }
        b.finish()
    }

    /// Verifies representation invariants; used by tests.
    ///
    /// Checks: fill counts are positive multiples of 31; literal words have
    /// clear flag bits and masked tails; run lengths sum to `len`; adjacent
    /// fills of the same bit only occur when the former is at capacity; no
    /// all-zero / all-one full literal word (those must be fills).
    pub fn check_canonical(&self) -> Result<(), String> {
        let mut covered = 0u64;
        let n = self.words.len();
        for (i, &w) in self.words.iter().enumerate() {
            let last = i + 1 == n;
            if is_fill(w) {
                let bits = fill_bits(w);
                if bits == 0 || !bits.is_multiple_of(SEG_BITS) {
                    return Err(format!("word {i}: fill of {bits} bits"));
                }
                if bits > COUNT_MASK as u64 {
                    return Err(format!("word {i}: fill overflow"));
                }
                if i > 0 {
                    let p = self.words[i - 1];
                    if is_fill(p)
                        && (p & FLAG_MASK) == (w & FLAG_MASK)
                        && fill_bits(p) < MAX_FILL_BITS
                    {
                        return Err(format!("word {i}: mergeable adjacent fills"));
                    }
                }
                covered += bits;
            } else {
                let nbits = if last && !self.len_bits.is_multiple_of(SEG_BITS) {
                    self.len_bits % SEG_BITS
                } else {
                    SEG_BITS
                };
                let mask = if nbits == SEG_BITS {
                    LITERAL_MASK
                } else {
                    (1u32 << nbits) - 1
                };
                if w & !mask != 0 {
                    return Err(format!("word {i}: literal has bits outside mask"));
                }
                if nbits == SEG_BITS && (w == 0 || w == LITERAL_MASK) {
                    return Err(format!("word {i}: uncompressed full literal {w:#x}"));
                }
                covered += nbits;
            }
        }
        if covered != self.len_bits {
            return Err(format!("covers {covered} bits, len is {}", self.len_bits));
        }
        Ok(())
    }
}

impl Default for WahVec {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<bool> for WahVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vec() {
        let v = WahVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert!(v.check_canonical().is_ok());
        assert_eq!(v.to_bools(), Vec::<bool>::new());
    }

    #[test]
    fn zeros_and_ones() {
        for len in [1u64, 30, 31, 32, 62, 93, 100, 1000, 10_000] {
            let z = WahVec::zeros(len);
            assert_eq!(z.len(), len);
            assert_eq!(z.count_ones(), 0);
            z.check_canonical().unwrap();
            let o = WahVec::ones(len);
            assert_eq!(o.len(), len);
            assert_eq!(o.count_ones(), len);
            o.check_canonical().unwrap();
        }
    }

    #[test]
    fn long_fill_is_compact() {
        let v = WahVec::zeros(10_000_000);
        assert!(
            v.words().len() <= 2,
            "10M zero bits should be 1-2 words, got {}",
            v.words().len()
        );
    }

    #[test]
    fn from_bits_roundtrip() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![],
            vec![true],
            vec![false],
            (0..31).map(|i| i % 2 == 0).collect(),
            (0..32).map(|i| i % 3 == 0).collect(),
            (0..100).map(|i| i < 50).collect(),
            (0..310).map(|_| true).collect(),
            (0..311).map(|i| i != 200).collect(),
        ];
        for bits in patterns {
            let v = WahVec::from_bits(bits.iter().copied());
            assert_eq!(v.len(), bits.len() as u64);
            assert_eq!(v.to_bools(), bits);
            v.check_canonical().unwrap();
        }
    }

    #[test]
    fn from_ones_matches() {
        let v = WahVec::from_ones(&[0, 5, 31, 62, 99], 100);
        assert_eq!(v.count_ones(), 5);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 5, 31, 62, 99]);
        assert!(v.get(5));
        assert!(!v.get(6));
        v.check_canonical().unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_ones_rejects_unsorted() {
        let _ = WahVec::from_ones(&[5, 3], 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ones_rejects_oob() {
        let _ = WahVec::from_ones(&[10], 10);
    }

    #[test]
    fn count_ones_in_range_basics() {
        let v = WahVec::from_bits((0..200).map(|i| i % 2 == 0));
        assert_eq!(v.count_ones_in_range(0, 200), 100);
        assert_eq!(v.count_ones_in_range(0, 0), 0);
        assert_eq!(v.count_ones_in_range(0, 1), 1);
        assert_eq!(v.count_ones_in_range(1, 2), 0);
        assert_eq!(v.count_ones_in_range(50, 150), 50);
        assert_eq!(v.count_ones_in_range(199, 200), 0);
    }

    #[test]
    fn count_ones_in_range_over_fills() {
        let mut bits = vec![false; 500];
        for b in bits.iter_mut().take(400).skip(100) {
            *b = true;
        }
        let v = WahVec::from_bits(bits.iter().copied());
        assert_eq!(v.count_ones_in_range(0, 100), 0);
        assert_eq!(v.count_ones_in_range(100, 400), 300);
        assert_eq!(v.count_ones_in_range(50, 150), 50);
        assert_eq!(v.count_ones_in_range(350, 500), 50);
    }

    #[test]
    fn count_per_unit_matches_ranges() {
        let bits: Vec<bool> = (0..1000).map(|i| (i * 7) % 13 < 4).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        for unit in [1u64, 7, 31, 64, 100, 999, 1000, 2000] {
            let per = v.count_ones_per_unit(unit);
            let nunits = (1000u64).div_ceil(unit) as usize;
            assert_eq!(per.len(), nunits);
            for (u, &c) in per.iter().enumerate() {
                let lo = u as u64 * unit;
                let hi = (lo + unit).min(1000);
                assert_eq!(c, v.count_ones_in_range(lo, hi), "unit {u} size {unit}");
            }
        }
    }

    #[test]
    fn rank_select_inverse() {
        let bits: Vec<bool> = (0..800).map(|i| (i * 7) % 13 < 4).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let ones: Vec<u64> = v.iter_ones().collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(v.select(k as u64), Some(pos), "select({k})");
            assert_eq!(v.rank(pos), k as u64, "rank({pos})");
            assert_eq!(v.rank(pos + 1), k as u64 + 1);
        }
        assert_eq!(v.select(ones.len() as u64), None, "past the last one-bit");
        assert_eq!(v.rank(0), 0);
    }

    #[test]
    fn select_inside_long_fill() {
        let mut bits = vec![false; 100];
        bits.extend(vec![true; 500]);
        bits.extend(vec![false; 100]);
        let v = WahVec::from_bits(bits.iter().copied());
        assert_eq!(v.select(0), Some(100));
        assert_eq!(v.select(250), Some(350));
        assert_eq!(v.select(499), Some(599));
        assert_eq!(v.select(500), None);
    }

    #[test]
    fn get_across_runs() {
        let mut bits = [false; 93];
        bits[0] = true;
        bits[45] = true;
        bits[92] = true;
        let v = WahVec::from_bits(bits.iter().copied());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(i as u64), b, "bit {i}");
        }
    }

    #[test]
    fn concat_aligned() {
        let a_bits: Vec<bool> = (0..62).map(|i| i % 5 == 0).collect();
        let b_bits: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let mut a = WahVec::from_bits(a_bits.iter().copied());
        let b = WahVec::from_bits(b_bits.iter().copied());
        a.concat(&b);
        let want: Vec<bool> = a_bits.into_iter().chain(b_bits).collect();
        assert_eq!(a.to_bools(), want);
        a.check_canonical().unwrap();
    }

    #[test]
    fn concat_merges_fills_at_seam() {
        let mut a = WahVec::zeros(62);
        let b = WahVec::zeros(62);
        a.concat(&b);
        assert_eq!(a.len(), 124);
        assert_eq!(a.words().len(), 1, "seam fills should merge");
        a.check_canonical().unwrap();
    }

    #[test]
    #[should_panic(expected = "segment boundary")]
    fn concat_unaligned_panics() {
        let mut a = WahVec::zeros(30);
        let b = WahVec::zeros(31);
        a.concat(&b);
    }

    #[test]
    fn concat_empty_other_is_noop_even_unaligned() {
        let mut a = WahVec::zeros(30);
        a.concat(&WahVec::new());
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn slice_matches_bit_reference() {
        let bits: Vec<bool> = (0..700)
            .map(|i| (i * 7) % 13 < 4 || (200..420).contains(&i))
            .collect();
        let v = WahVec::from_bits(bits.iter().copied());
        for (lo, hi) in [
            (0u64, 700u64),
            (0, 0),
            (700, 700),
            (0, 1),
            (1, 32),
            (30, 33),
            (31, 62),
            (100, 500),
            (199, 421),
            (250, 400),
            (699, 700),
        ] {
            let s = v.slice(lo..hi);
            assert_eq!(s.len(), hi - lo, "slice {lo}..{hi} length");
            assert_eq!(
                s.to_bools(),
                bits[lo as usize..hi as usize].to_vec(),
                "slice {lo}..{hi} bits"
            );
            s.check_canonical().unwrap();
        }
    }

    #[test]
    fn slice_inside_long_fill_is_compact() {
        let v = WahVec::zeros(10_000_000);
        let s = v.slice(1_000_000..9_000_000);
        assert_eq!(s.len(), 8_000_000);
        assert_eq!(s.count_ones(), 0);
        assert!(s.words().len() <= 2, "fill slice stays compressed");
        s.check_canonical().unwrap();
    }

    #[test]
    fn aligned_slices_concat_back_to_original() {
        let bits: Vec<bool> = (0..31 * 20).map(|i| (i * 11) % 17 < 6).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let cut = 31 * 7;
        let mut joined = v.slice(0..cut);
        joined.concat(&v.slice(cut..v.len()));
        assert_eq!(joined, v, "segment-aligned slices must reassemble exactly");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_overlong_range() {
        let _ = WahVec::zeros(100).slice(50..101);
    }

    #[test]
    fn size_bytes_reflects_compression() {
        let sparse = WahVec::from_ones(&[5000], 1_000_000);
        assert!(sparse.size_bytes() < 100);
        let dense: WahVec = (0..1_000_000).map(|i: u64| i.is_multiple_of(2)).collect();
        assert!(dense.size_bytes() > 100_000);
    }

    #[test]
    fn iter_ones_dense() {
        let bits: Vec<bool> = (0..500).map(|i| (i * 31) % 7 == 0).collect();
        let v = WahVec::from_bits(bits.iter().copied());
        let want: Vec<u64> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u64))
            .collect();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), want);
    }

    #[test]
    fn from_raw_roundtrip() {
        let v = WahVec::from_bits((0..400).map(|i| i % 9 < 2));
        let back = WahVec::from_raw(v.words().to_vec(), v.len()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_raw_rejects_bad_input() {
        let v = WahVec::from_bits((0..400).map(|i| i % 9 < 2));
        // wrong length
        assert!(WahVec::from_raw(v.words().to_vec(), v.len() + 31).is_none());
        // a shortened length is caught when the dropped tail bit was set
        let ones = WahVec::ones(400);
        assert!(WahVec::from_raw(ones.words().to_vec(), 399).is_none());
        // zero-length fill word
        assert!(WahVec::from_raw(vec![super::ZERO_FILL], 31).is_none());
        // literal with flag bit set where a tail literal is expected
        assert!(WahVec::from_raw(vec![0xFFFF_FFFF], 5).is_none());
        // empty is fine
        assert!(WahVec::from_raw(vec![], 0).is_some());
    }

    #[test]
    fn debug_format_is_summary() {
        let v = WahVec::ones(62);
        let s = format!("{v:?}");
        assert!(s.contains("len: 62"));
        assert!(s.contains("ones: 62"));
    }
}
