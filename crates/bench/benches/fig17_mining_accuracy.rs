//! Regenerates the paper's Figure 17 — run with
//! `cargo bench -p ibis-bench --bench fig17_mining_accuracy`.

fn main() {
    ibis_bench::figures::fig17();
}
