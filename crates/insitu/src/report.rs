//! Result records for in-situ runs: the per-phase time breakdown the
//! paper's Figures 7–10 plot, plus memory and I/O accounting.

/// Modeled wall seconds per pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Simulation time.
    pub simulate: f64,
    /// Data-reduction time: bitmap generation (bitmaps method) or
    /// down-sampling (sampling method); zero for the full-data method.
    pub reduce: f64,
    /// Time-steps selection (metric evaluation + bookkeeping).
    pub select: f64,
    /// Writing the selected outputs to storage.
    pub output: f64,
}

impl PhaseTimes {
    /// Sum of all phases (the Shared-Cores total; Separate-Cores overlaps
    /// simulate with reduce — see [`InsituReport::total_modeled`]).
    pub fn sum(&self) -> f64 {
        self.simulate + self.reduce + self.select + self.output
    }
}

/// What happened to one time-step under the fault-tolerant pipeline.
/// A fault-free run is all [`StepOutcome::Completed`]; contained failures
/// are recorded explicitly instead of silently dropping the step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step was summarized and offered to the selector normally.
    Completed,
    /// The step was dropped under `FailurePolicy::SkipStep`.
    Skipped {
        /// What failed.
        reason: String,
    },
    /// The step's summary was rebuilt from the sampling baseline after the
    /// primary reduction failed (`FailurePolicy::FallbackSampling`).
    FallbackSampled {
        /// What failed in the primary reduction.
        reason: String,
    },
    /// The step failed and no recovery was possible (e.g. the fallback
    /// itself failed, or the producer never delivered the step).
    Failed {
        /// The failure.
        error: String,
    },
}

impl StepOutcome {
    /// True for [`StepOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, StepOutcome::Completed)
    }
}

/// The complete result of one in-situ pipeline run.
#[derive(Debug, Clone)]
pub struct InsituReport {
    /// Per-phase modeled times.
    pub phases: PhaseTimes,
    /// End-to-end modeled time. Equals `phases.sum()` under Shared-Cores;
    /// under Separate-Cores simulation overlaps reduction, so it is
    /// `max(simulate, reduce + select) + output`.
    pub total_modeled: f64,
    /// Real wall-clock seconds the run took on the host.
    pub wall_seconds: f64,
    /// Selected time-step indices, increasing, starting at 0.
    pub selected: Vec<usize>,
    /// High-water mark of tracked analysis memory (bytes).
    pub peak_memory_bytes: u64,
    /// Bytes shipped to storage (selected summaries only).
    pub bytes_written: u64,
    /// Raw output bytes of one time-step (all fields).
    pub raw_bytes_per_step: u64,
    /// Total summary bytes produced across all steps.
    pub summary_bytes_total: u64,
    /// Steps simulated.
    pub steps: usize,
    /// Per-step outcome, in step order (all `Completed` on a clean run).
    pub step_outcomes: Vec<StepOutcome>,
    /// Deterministic log of every injected fault that fired (empty without
    /// fault injection); two runs of the same plan produce identical logs.
    pub fault_events: Vec<String>,
}

impl InsituReport {
    /// Mean compression ratio: raw step bytes over mean summary bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.summary_bytes_total == 0 || self.steps == 0 {
            return 0.0;
        }
        self.raw_bytes_per_step as f64 / (self.summary_bytes_total as f64 / self.steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_sum() {
        let p = PhaseTimes {
            simulate: 1.0,
            reduce: 2.0,
            select: 0.5,
            output: 1.5,
        };
        assert_eq!(p.sum(), 5.0);
    }

    #[test]
    fn compression_ratio() {
        let r = InsituReport {
            phases: PhaseTimes::default(),
            total_modeled: 0.0,
            wall_seconds: 0.0,
            selected: vec![0],
            peak_memory_bytes: 0,
            bytes_written: 0,
            raw_bytes_per_step: 1000,
            summary_bytes_total: 2000,
            steps: 10,
            step_outcomes: Vec::new(),
            fault_events: Vec::new(),
        };
        assert_eq!(r.compression_ratio(), 5.0);
    }

    #[test]
    fn outcomes_compare() {
        assert!(StepOutcome::Completed.is_completed());
        let a = StepOutcome::Skipped { reason: "x".into() };
        assert_eq!(a, a.clone());
        assert!(!a.is_completed());
    }
}
