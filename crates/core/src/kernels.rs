//! Adaptive dense-path kernels for WAH execution.
//!
//! Monomorphized AND/OR/XOR/ANDNOT and popcount kernels replace the
//! closure-generic segment loops of the original implementation, and an
//! explicit density cutover decodes incompressible operands once into a
//! packed-`u64` form ([`DenseBits`]) so the op runs at verbatim speed.
//! Results are bit-exact and canonical regardless of which path executes.
//!
//! The cutover rule (α = 1): a vector is *dense* when its compressed words
//! outnumber the `u64` words of the verbatim form, `words > len/64`
//! ([`WahVec::is_dense`]). Where the cutover applies:
//!
//! - **Counting ops** (`and_count`/`xor_count`) never decode for a single
//!   call — their compressed kernels batch literal stretches as packed
//!   `u64` words and already run at near-verbatim speed on dense inputs,
//!   so a per-call decode is a pure extra pass. The decode pays off only
//!   under reuse, which is [`PreparedOperand`]'s job: `prepare()` unpacks
//!   a vector above the cutover once, and op fan-outs (m×n joint counts,
//!   wide ORs, the miner's per-unit spatial stage) stream against it.
//! - **Materializing ops** decode both sides, combine word-parallel, and
//!   re-encode when both are above the word cutover *and* genuinely dense
//!   in bits ([`MATERIALIZE_DENSITY_CUTOVER`]) — the round trip only wins
//!   when the result stays literal-heavy too.

use crate::builder::WahBuilder;
use crate::runs::{Run, RunIter};
use crate::wah::{fill_bits, is_fill, is_one_fill, WahVec, LITERAL_MASK, SEG_BITS};
use ibis_obs::{LazyCounter, LazyHistogram};

// Kernel-dispatch metrics (family `kernels`, see DESIGN.md §6e). All
// no-ops when ibis-obs is built without its `obs` feature.
static OBS_DENSE_PATH: LazyCounter = LazyCounter::new("kernels.materialize.dense_path");
static OBS_RUN_PATH: LazyCounter = LazyCounter::new("kernels.materialize.run_path");
static OBS_DECODE_WORDS: LazyCounter = LazyCounter::new("kernels.decode.words");
static OBS_PREPARE_DENSE: LazyCounter = LazyCounter::new("kernels.prepare.dense");
static OBS_PREPARE_COMPRESSED: LazyCounter = LazyCounter::new("kernels.prepare.compressed");
static OBS_COUNT_OPS: LazyCounter = LazyCounter::new("kernels.count.ops");
static OBS_FILL_RUN_BITS: LazyHistogram =
    LazyHistogram::new("kernels.fill_run.bits", ibis_obs::RUN_BITS_BOUNDS);

/// Cached per-vector statistics, computed in one pass over the compressed
/// words. Feeds the adaptive cutover and makes repeated
/// [`WahVec::count_ones`] calls free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WahStats {
    /// Number of compressed words.
    pub words: usize,
    /// Kernel-visible runs: each fill word plus each maximal stretch of
    /// consecutive literal words counts once — the number of outer
    /// iterations a run-level kernel performs.
    pub runs: usize,
    /// Total 1-bits.
    pub ones: u64,
    /// `ones / len` (`0.0` for the empty vector).
    pub density: f64,
}

impl WahStats {
    /// Estimated mean 1-run length in bits: assuming 1-runs and 0-runs
    /// alternate, half of [`WahStats::runs`] carry all the ones. This is
    /// the coherence signal the per-bin codec selection
    /// ([`crate::select_codec`]) keys on — long mean runs are WAH's home
    /// turf, short ones mean scattered bits that containers handle better.
    pub fn mean_run_bits(&self) -> u64 {
        2 * self.ones / (self.runs.max(1) as u64)
    }
}

/// Single-pass stats computation over raw compressed words.
pub(crate) fn compute_stats(words: &[u32], len_bits: u64) -> WahStats {
    let mut ones = 0u64;
    let mut runs = 0usize;
    let mut in_literals = false;
    // Fill-run lengths are bucketed locally and flushed once: this loop is
    // the hot path of every stats computation, so it cannot afford one
    // atomic histogram record per word. `ENABLED` is const, so the no-op
    // build compiles the accumulation away entirely.
    let mut fill_buckets = [0u64; ibis_obs::RUN_BITS_BOUNDS.len() + 1];
    let mut fill_sum = 0u64;
    for &w in words {
        if is_fill(w) {
            runs += 1;
            in_literals = false;
            if ibis_obs::ENABLED {
                fill_buckets[ibis_obs::bucket_index(ibis_obs::RUN_BITS_BOUNDS, fill_bits(w))] += 1;
                fill_sum = fill_sum.wrapping_add(fill_bits(w));
            }
            if is_one_fill(w) {
                ones += fill_bits(w);
            }
        } else {
            if !in_literals {
                runs += 1;
                in_literals = true;
            }
            // Literal flag bit is 0 and tails are masked, so a plain
            // popcount is exact.
            ones += w.count_ones() as u64;
        }
    }
    if ibis_obs::ENABLED {
        OBS_FILL_RUN_BITS.merge_counts(&fill_buckets, fill_sum);
    }
    let density = if len_bits == 0 {
        0.0
    } else {
        ones as f64 / len_bits as f64
    };
    WahStats {
        words: words.len(),
        runs,
        ones,
        density,
    }
}

/// Mask selecting the low `width` bits of a literal payload.
#[inline]
pub(crate) fn lit_mask(width: u8) -> u32 {
    if width as u64 == SEG_BITS {
        LITERAL_MASK
    } else {
        (1u32 << width) - 1
    }
}

/// Scatters a literal word's set bits into per-unit buckets.
#[inline]
pub(crate) fn add_literal_per_unit(
    payload: u32,
    width: u8,
    pos: u64,
    unit_bits: u64,
    out: &mut [u64],
) {
    let mut payload = payload;
    let mut p = pos;
    let mut rem = width as u64;
    while rem > 0 {
        let u = (p / unit_bits) as usize;
        let in_unit = (u as u64 + 1) * unit_bits - p;
        let take = in_unit.min(rem) as u32;
        let mask = if take == 32 {
            u32::MAX
        } else {
            (1u32 << take) - 1
        };
        out[u] += (payload & mask).count_ones() as u64;
        payload = if take == 32 { 0 } else { payload >> take };
        p += take as u64;
        rem -= take as u64;
    }
}

// ---------------------------------------------------------------------------
// DenseBits: the packed-u64 verbatim execution form
// ---------------------------------------------------------------------------

/// A bitvector unpacked into `u64` words (LSB-first within each word) —
/// the verbatim execution form used above the density cutover and for
/// decoded-operand reuse across op fan-outs.
///
/// Invariant: bits at positions `>= len()` are zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBits {
    words: Vec<u64>,
    len_bits: u64,
}

impl DenseBits {
    /// An all-zeros buffer of `len_bits` bits.
    pub fn zeros(len_bits: u64) -> Self {
        DenseBits {
            words: vec![0; len_bits.div_ceil(64) as usize],
            len_bits,
        }
    }

    /// Decodes a compressed vector in one pass over its runs.
    pub fn from_wah(v: &WahVec) -> Self {
        let mut d = DenseBits::zeros(v.len());
        d.or_wah(v);
        OBS_DECODE_WORDS.add(d.words.len() as u64);
        d
    }

    /// Number of bits in the buffer.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len_bits
    }

    /// `true` if the buffer holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Reads the bit at position `i`.
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        assert!(
            i < self.len_bits,
            "index {i} out of range {}",
            self.len_bits
        );
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Total 1-bits (word-parallel popcount).
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// 1-bits in the half-open bit range `[start, end)`.
    pub fn count_ones_in_range(&self, start: u64, end: u64) -> u64 {
        debug_assert!(start <= end && end <= self.len_bits, "range out of bounds");
        if start == end {
            return 0;
        }
        let sw = (start / 64) as usize;
        let ew = ((end - 1) / 64) as usize;
        let smask = u64::MAX << (start % 64);
        let emask = u64::MAX >> (63 - (end - 1) % 64);
        if sw == ew {
            return (self.words[sw] & smask & emask).count_ones() as u64;
        }
        let mut total = (self.words[sw] & smask).count_ones() as u64;
        for &w in &self.words[sw + 1..ew] {
            total += w.count_ones() as u64;
        }
        total + (self.words[ew] & emask).count_ones() as u64
    }

    /// ORs a same-length compressed vector into the buffer — the
    /// accumulator step of the dense `or_many` path.
    pub fn or_wah(&mut self, v: &WahVec) {
        assert_eq!(
            self.len_bits,
            v.len(),
            "binary op on different-length vectors"
        );
        let mut pos = 0u64;
        for run in v.runs() {
            match run {
                Run::Fill(false, n) => pos += n,
                Run::Fill(true, n) => {
                    self.set_range(pos, n);
                    pos += n;
                }
                Run::Literal(p, w) => {
                    self.or_bits(pos, p as u64);
                    pos += w as u64;
                }
            }
        }
    }

    /// Rebuilds `out` as `self AND v` without re-decoding `self`: the
    /// buffer is copied word-parallel, then `v`'s runs stream over it —
    /// 0-fills clear ranges, 1-fills keep, literals clear their complement
    /// bits. This is the per-row step of the prepared-selection joint loop:
    /// the selection (`self`) is decoded once, each bin row costs only the
    /// row's own compressed words plus one memcpy.
    pub fn and_wah_into(&self, v: &WahVec, out: &mut DenseBits) {
        assert_eq!(
            self.len_bits,
            v.len(),
            "binary op on different-length vectors"
        );
        out.words.clear();
        out.words.extend_from_slice(&self.words);
        out.len_bits = self.len_bits;
        let mut pos = 0u64;
        for run in v.runs() {
            match run {
                Run::Fill(true, n) => pos += n,
                Run::Fill(false, n) => {
                    out.clear_range(pos, n);
                    pos += n;
                }
                Run::Literal(p, w) => {
                    let drop = (!p & lit_mask(w)) as u64;
                    if drop != 0 {
                        out.clear_bits(pos, drop);
                    }
                    pos += w as u64;
                }
            }
        }
    }

    /// `self AND v` as a fresh dense buffer (see [`DenseBits::and_wah_into`]).
    pub fn and_wah(&self, v: &WahVec) -> DenseBits {
        let mut out = DenseBits::zeros(self.len_bits);
        self.and_wah_into(v, &mut out);
        out
    }

    /// Sets `n` consecutive bits starting at `pos`.
    fn set_range(&mut self, pos: u64, n: u64) {
        if n == 0 {
            return;
        }
        let end = pos + n;
        let sw = (pos / 64) as usize;
        let ew = ((end - 1) / 64) as usize;
        let smask = u64::MAX << (pos % 64);
        let emask = u64::MAX >> (63 - (end - 1) % 64);
        if sw == ew {
            self.words[sw] |= smask & emask;
        } else {
            self.words[sw] |= smask;
            for w in &mut self.words[sw + 1..ew] {
                *w = u64::MAX;
            }
            self.words[ew] |= emask;
        }
    }

    /// Clears `n` consecutive bits starting at `pos`.
    fn clear_range(&mut self, pos: u64, n: u64) {
        if n == 0 {
            return;
        }
        let end = pos + n;
        let sw = (pos / 64) as usize;
        let ew = ((end - 1) / 64) as usize;
        let smask = u64::MAX << (pos % 64);
        let emask = u64::MAX >> (63 - (end - 1) % 64);
        if sw == ew {
            self.words[sw] &= !(smask & emask);
        } else {
            self.words[sw] &= !smask;
            for w in &mut self.words[sw + 1..ew] {
                *w = 0;
            }
            self.words[ew] &= !emask;
        }
    }

    /// Clears the bits of `mask` (≤ 31 significant bits) at `pos`.
    #[inline]
    fn clear_bits(&mut self, pos: u64, mask: u64) {
        let wi = (pos / 64) as usize;
        let off = pos % 64;
        self.words[wi] &= !(mask << off);
        if off != 0 {
            let hi = mask >> (64 - off);
            if hi != 0 {
                self.words[wi + 1] &= !hi;
            }
        }
    }

    /// ORs up to 64 bits of `val` into the buffer at `pos`.
    #[inline]
    fn or_bits(&mut self, pos: u64, val: u64) {
        let wi = (pos / 64) as usize;
        let off = pos % 64;
        self.words[wi] |= val << off;
        if off != 0 {
            let hi = val >> (64 - off);
            if hi != 0 {
                self.words[wi + 1] |= hi;
            }
        }
    }

    /// Extracts `width` (≤ 31) bits starting at `pos` as a literal payload.
    #[inline]
    fn seg_at(&self, pos: u64, width: u8) -> u32 {
        let wi = (pos / 64) as usize;
        let off = pos % 64;
        let mut bits = self.words[wi] >> off;
        if off + width as u64 > 64 {
            bits |= self.words[wi + 1] << (64 - off);
        }
        bits as u32 & lit_mask(width)
    }

    /// Zeroes any bits at positions `>= len()` in the last word, restoring
    /// the invariant after a word-level complement-like combine.
    fn mask_tail(&mut self) {
        let r = self.len_bits % 64;
        if r != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - r);
            }
        }
    }

    /// Re-encodes into canonical WAH form. The builder merges fills, so the
    /// result is byte-identical to what the compressed kernels produce for
    /// the same bit content.
    pub fn to_wah(&self) -> WahVec {
        let mut b = WahBuilder::new();
        let mut pos = 0u64;
        while pos + SEG_BITS <= self.len_bits {
            b.append_seg31(self.seg_at(pos, SEG_BITS as u8));
            pos += SEG_BITS;
        }
        let tail = self.len_bits - pos;
        if tail > 0 {
            let p = self.seg_at(pos, tail as u8);
            for j in 0..tail {
                b.push_bit(p & (1 << j) != 0);
            }
        }
        b.finish()
    }

    /// `popcount(self AND other)` for two dense buffers.
    pub fn and_count(&self, other: &DenseBits) -> u64 {
        assert_eq!(
            self.len_bits, other.len_bits,
            "binary op on different-length vectors"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// `popcount(self XOR other)` for two dense buffers.
    pub fn xor_count(&self, other: &DenseBits) -> u64 {
        assert_eq!(
            self.len_bits, other.len_bits,
            "binary op on different-length vectors"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum()
    }

    /// `popcount(self AND other)` streaming the compressed side against the
    /// buffer: 0-fills are skipped, 1-fills become range popcounts, literal
    /// words AND against an extracted segment.
    pub fn and_count_wah(&self, other: &WahVec) -> u64 {
        assert_eq!(
            self.len_bits,
            other.len(),
            "binary op on different-length vectors"
        );
        let mut total = 0u64;
        let mut pos = 0u64;
        for run in other.runs() {
            match run {
                Run::Fill(false, n) => pos += n,
                Run::Fill(true, n) => {
                    total += self.count_ones_in_range(pos, pos + n);
                    pos += n;
                }
                Run::Literal(p, w) => {
                    total += (p & self.seg_at(pos, w)).count_ones() as u64;
                    pos += w as u64;
                }
            }
        }
        total
    }

    /// `popcount(self XOR other)` streaming the compressed side against the
    /// buffer.
    pub fn xor_count_wah(&self, other: &WahVec) -> u64 {
        assert_eq!(
            self.len_bits,
            other.len(),
            "binary op on different-length vectors"
        );
        let mut total = 0u64;
        let mut pos = 0u64;
        for run in other.runs() {
            match run {
                Run::Fill(false, n) => {
                    total += self.count_ones_in_range(pos, pos + n);
                    pos += n;
                }
                Run::Fill(true, n) => {
                    total += n - self.count_ones_in_range(pos, pos + n);
                    pos += n;
                }
                Run::Literal(p, w) => {
                    total += (p ^ self.seg_at(pos, w)).count_ones() as u64;
                    pos += w as u64;
                }
            }
        }
        total
    }

    /// Per-unit 1-bit counts of `self AND other` (unit `u` covers bits
    /// `[u*unit_bits, (u+1)*unit_bits)`), streaming the compressed side.
    pub fn and_count_per_unit_wah(&self, other: &WahVec, unit_bits: u64) -> Vec<u64> {
        assert_eq!(
            self.len_bits,
            other.len(),
            "binary op on different-length vectors"
        );
        assert!(unit_bits > 0, "unit_bits must be positive");
        let nunits = self.len_bits.div_ceil(unit_bits) as usize;
        let mut out = vec![0u64; nunits];
        let mut pos = 0u64;
        for run in other.runs() {
            match run {
                Run::Fill(false, n) => pos += n,
                Run::Fill(true, n) => {
                    let end = pos + n;
                    let mut p = pos;
                    while p < end {
                        let u = (p / unit_bits) as usize;
                        let stop = ((u as u64 + 1) * unit_bits).min(end);
                        out[u] += self.count_ones_in_range(p, stop);
                        p = stop;
                    }
                    pos = end;
                }
                Run::Literal(pl, w) => {
                    let v = pl & self.seg_at(pos, w);
                    if v != 0 {
                        add_literal_per_unit(v, w, pos, unit_bits, &mut out);
                    }
                    pos += w as u64;
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Compressed count kernels (monomorphized, batched literal loops)
// ---------------------------------------------------------------------------

/// First index in `[start, start + max)` holding a fill word (clamped to
/// `len`): the exclusive end of the literal stretch beginning at `start`,
/// scanning no further than the caller can consume.
#[inline]
fn literal_stretch_end(w: &[u32], start: usize, max: usize) -> usize {
    let lim = w.len().min(start + max);
    let mut k = start;
    while k < lim && !is_fill(w[k]) {
        k += 1;
    }
    k
}

/// `Σ popcount(w[k])` over a literal stretch, u64-packed.
#[inline]
fn popcount_words(w: &[u32]) -> u64 {
    let mut total: u64 = w
        .chunks_exact(2)
        .map(|x| (x[0] as u64 | (x[1] as u64) << 32).count_ones() as u64)
        .sum();
    if let &[x] = w.chunks_exact(2).remainder() {
        total += x.count_ones() as u64;
    }
    total
}

/// Expands to the literal×literal arm of a count kernel: a fused loop that
/// combines word pairs as packed `u64`s (one popcount per two segments)
/// with inline fill checks — a single pass, no separate stretch scan — and
/// a word-wise mop-up for odd stretch lengths. `$op` is `&` or `^`.
macro_rules! packed_literal_arm {
    ($aw:ident, $bw:ident, $i:ident, $j:ident, $total:ident, $op:tt) => {{
        while $i + 1 < $aw.len() && $j + 1 < $bw.len() {
            let (a0, a1) = ($aw[$i], $aw[$i + 1]);
            let (b0, b1) = ($bw[$j], $bw[$j + 1]);
            if is_fill(a0) || is_fill(a1) || is_fill(b0) || is_fill(b1) {
                break;
            }
            let x = a0 as u64 | (a1 as u64) << 32;
            let y = b0 as u64 | (b1 as u64) << 32;
            $total += (x $op y).count_ones() as u64;
            $i += 2;
            $j += 2;
        }
        while $i < $aw.len() && $j < $bw.len() && !is_fill($aw[$i]) && !is_fill($bw[$j]) {
            $total += ($aw[$i] $op $bw[$j]).count_ones() as u64;
            $i += 1;
            $j += 1;
        }
    }};
}

/// `popcount(a AND b)` on the compressed words. Literal stretches combine
/// as batched `u64`-packed words (no run decoding, no closure, no per-word
/// flag checks); fill×fill stretches gallop in O(1) per overlapping pair.
pub(crate) fn and_count_compressed(a: &WahVec, b: &WahVec) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let (aw, bw) = (a.words(), b.words());
    let (mut i, mut j) = (0usize, 0usize);
    let (mut fa, mut fb) = (0u64, 0u64); // bits left in an active fill
    let (mut ba, mut bb) = (false, false);
    let mut total = 0u64;
    loop {
        if fa == 0 {
            match aw.get(i) {
                None => break,
                Some(&w) if is_fill(w) => {
                    fa = fill_bits(w);
                    ba = is_one_fill(w);
                    i += 1;
                }
                _ => {}
            }
        }
        if fb == 0 {
            match bw.get(j) {
                None => break,
                Some(&w) if is_fill(w) => {
                    fb = fill_bits(w);
                    bb = is_one_fill(w);
                    j += 1;
                }
                _ => {}
            }
        }
        match (fa > 0, fb > 0) {
            (true, true) => {
                let n = fa.min(fb);
                if ba && bb {
                    total += n;
                }
                fa -= n;
                fb -= n;
            }
            (true, false) => {
                // b sits on full 31-bit literals: fills never overlap the
                // tail, and equal consumption means b is not at its tail.
                // Multi-segment fills absorb a whole batch of b's literals
                // at once; single-segment fills skip the stretch-scan cost.
                if fa > SEG_BITS {
                    let k = literal_stretch_end(bw, j, (fa / SEG_BITS) as usize) - j;
                    if ba {
                        total += popcount_words(&bw[j..j + k]);
                    }
                    j += k;
                    fa -= k as u64 * SEG_BITS;
                } else {
                    if ba {
                        total += bw[j].count_ones() as u64;
                    }
                    j += 1;
                    fa = 0;
                }
            }
            (false, true) => {
                if fb > SEG_BITS {
                    let k = literal_stretch_end(aw, i, (fb / SEG_BITS) as usize) - i;
                    if bb {
                        total += popcount_words(&aw[i..i + k]);
                    }
                    i += k;
                    fb -= k as u64 * SEG_BITS;
                } else {
                    if bb {
                        total += aw[i].count_ones() as u64;
                    }
                    i += 1;
                    fb = 0;
                }
            }
            (false, false) => {
                // literal × literal — the dense hot path.
                packed_literal_arm!(aw, bw, i, j, total, &);
            }
        }
    }
    total
}

/// `popcount(a XOR b)` on the compressed words; same structure as
/// [`and_count_compressed`].
pub(crate) fn xor_count_compressed(a: &WahVec, b: &WahVec) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let (aw, bw) = (a.words(), b.words());
    let (mut i, mut j) = (0usize, 0usize);
    let (mut fa, mut fb) = (0u64, 0u64);
    let (mut ba, mut bb) = (false, false);
    let mut total = 0u64;
    loop {
        if fa == 0 {
            match aw.get(i) {
                None => break,
                Some(&w) if is_fill(w) => {
                    fa = fill_bits(w);
                    ba = is_one_fill(w);
                    i += 1;
                }
                _ => {}
            }
        }
        if fb == 0 {
            match bw.get(j) {
                None => break,
                Some(&w) if is_fill(w) => {
                    fb = fill_bits(w);
                    bb = is_one_fill(w);
                    j += 1;
                }
                _ => {}
            }
        }
        match (fa > 0, fb > 0) {
            (true, true) => {
                let n = fa.min(fb);
                if ba != bb {
                    total += n;
                }
                fa -= n;
                fb -= n;
            }
            (true, false) => {
                if fa > SEG_BITS {
                    let k = literal_stretch_end(bw, j, (fa / SEG_BITS) as usize) - j;
                    let ones = popcount_words(&bw[j..j + k]);
                    total += if ba { k as u64 * SEG_BITS - ones } else { ones };
                    j += k;
                    fa -= k as u64 * SEG_BITS;
                } else {
                    let ones = bw[j].count_ones() as u64;
                    total += if ba { SEG_BITS - ones } else { ones };
                    j += 1;
                    fa = 0;
                }
            }
            (false, true) => {
                if fb > SEG_BITS {
                    let k = literal_stretch_end(aw, i, (fb / SEG_BITS) as usize) - i;
                    let ones = popcount_words(&aw[i..i + k]);
                    total += if bb { k as u64 * SEG_BITS - ones } else { ones };
                    i += k;
                    fb -= k as u64 * SEG_BITS;
                } else {
                    let ones = aw[i].count_ones() as u64;
                    total += if bb { SEG_BITS - ones } else { ones };
                    i += 1;
                    fb = 0;
                }
            }
            (false, false) => {
                packed_literal_arm!(aw, bw, i, j, total, ^);
            }
        }
    }
    total
}

/// One-shot `and_count`. Counts never pay a decode: the compressed kernel's
/// u64-packed literal batching already runs at near-verbatim speed on dense
/// inputs, so a per-call `DenseBits::from_wah` (a full extra pass over the
/// output buffer) can only lose. The decoded path wins when its cost is
/// amortized across many ops — that is [`PreparedOperand`]'s job, and the
/// density cutover decides it there (see [`WahVec::prepare`]).
pub(crate) fn and_count_adaptive(a: &WahVec, b: &WahVec) -> u64 {
    assert_eq!(a.len(), b.len(), "binary op on different-length vectors");
    OBS_COUNT_OPS.inc();
    and_count_compressed(a, b)
}

/// One-shot `xor_count`; see [`and_count_adaptive`].
pub(crate) fn xor_count_adaptive(a: &WahVec, b: &WahVec) -> u64 {
    assert_eq!(a.len(), b.len(), "binary op on different-length vectors");
    OBS_COUNT_OPS.inc();
    xor_count_compressed(a, b)
}

/// Adaptive per-unit AND counts; see [`and_count_adaptive`].
pub(crate) fn and_count_per_unit_adaptive(a: &WahVec, b: &WahVec, unit_bits: u64) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    let (dense, sparse) = if a.words().len() >= b.words().len() {
        (a, b)
    } else {
        (b, a)
    };
    DenseBits::from_wah(dense).and_count_per_unit_wah(sparse, unit_bits)
}

// ---------------------------------------------------------------------------
// Materializing kernels
// ---------------------------------------------------------------------------

/// Second gate for the materializing kernels' verbatim path. The word-count
/// cutover ([`WahVec::is_dense`]) cannot tell 10% bit density from 50% —
/// both are almost all literal words — but the decode/recode round trip
/// only pays off when the *result* stays literal-heavy too, which needs the
/// inputs genuinely dense in bits. Below this, the run kernels win.
const MATERIALIZE_DENSITY_CUTOVER: f64 = 0.2;

/// The smaller of the two cached bit densities (`popcount / len`).
#[inline]
fn min_density(a: &WahVec, b: &WahVec) -> f64 {
    a.stats().density.min(b.stats().density)
}

/// What a one-sided fill does to the output in a materializing kernel.
#[derive(Clone, Copy)]
enum FillAction {
    /// Emit a fill of the given bit; the other side's segment is irrelevant.
    Emit(bool),
    /// Copy the other side's segment through unchanged.
    Copy,
    /// Copy the other side's segment complemented.
    CopyNot,
}

/// A run cursor supporting partial consumption of fills; literal runs are
/// consumed whole.
struct RunCursor<'a> {
    runs: RunIter<'a>,
    cur: Option<Run>,
}

impl<'a> RunCursor<'a> {
    fn new(words: &'a [u32], len_bits: u64) -> Self {
        let mut runs = RunIter::new(words, len_bits);
        let cur = runs.next();
        RunCursor { runs, cur }
    }

    #[inline]
    fn peek(&self) -> Option<Run> {
        self.cur
    }

    #[inline]
    fn consume(&mut self, nbits: u64) {
        match self.cur {
            Some(Run::Fill(bit, n)) if nbits < n => {
                self.cur = Some(Run::Fill(bit, n - nbits));
            }
            Some(r) => {
                debug_assert_eq!(r.len(), nbits, "literal runs are consumed whole");
                self.cur = self.runs.next();
            }
            None => panic!("consume past the end of the run stream"),
        }
    }
}

/// One step of fill absorption: `filled` sits on a fill, `other` on a
/// literal — necessarily a full 31-bit segment (fills never overlap the
/// tail). Applies `action` and consumes one segment from both sides.
#[inline]
fn fill_step(
    action: FillAction,
    filled: &mut RunCursor<'_>,
    other: &mut RunCursor<'_>,
    out: &mut WahBuilder,
) {
    let Some(Run::Literal(p, w)) = other.peek() else {
        unreachable!("fill_step requires a literal on the other side")
    };
    debug_assert_eq!(w as u64, SEG_BITS, "fills never overlap the tail literal");
    match action {
        FillAction::Emit(bit) => out.append_run(bit, SEG_BITS),
        FillAction::Copy => out.append_seg31(p),
        FillAction::CopyNot => out.append_seg31(!p & LITERAL_MASK),
    }
    filled.consume(SEG_BITS);
    other.consume(w as u64);
}

/// Defines one monomorphized materializing kernel. `$wexpr` is the word
/// combine (used for `u32` literals, `u64` dense words, and fill bits
/// alike); the fill arms absorb one-sided fills at run granularity instead
/// of expanding them to segments.
macro_rules! binary_kernel {
    ($(#[$doc:meta])* $name:ident,
     ($x:ident, $y:ident) => $wexpr:expr,
     left_fill: ($lb:ident) => $lact:expr,
     right_fill: ($rb:ident) => $ract:expr) => {
        $(#[$doc])*
        pub(crate) fn $name(a: &WahVec, b: &WahVec) -> WahVec {
            assert_eq!(a.len(), b.len(), "binary op on different-length vectors");
            if a.is_dense() && b.is_dense() && min_density(a, b) >= MATERIALIZE_DENSITY_CUTOVER {
                // Verbatim path: unpack both once, combine word-parallel,
                // re-encode once. The builder canonicalizes, so the result
                // is identical to the compressed path's.
                OBS_DENSE_PATH.inc();
                let mut da = DenseBits::from_wah(a);
                let db = DenseBits::from_wah(b);
                for (xw, yw) in da.words.iter_mut().zip(db.words.iter()) {
                    let ($x, $y) = (*xw, *yw);
                    *xw = $wexpr;
                }
                da.mask_tail();
                return da.to_wah();
            }
            OBS_RUN_PATH.inc();
            let mut ca = RunCursor::new(a.words(), a.len());
            let mut cb = RunCursor::new(b.words(), b.len());
            let mut out = WahBuilder::new();
            loop {
                match (ca.peek(), cb.peek()) {
                    (None, None) => break,
                    (Some(Run::Fill(p, na)), Some(Run::Fill(q, nb))) => {
                        let n = na.min(nb);
                        let ($x, $y) = (p, q);
                        out.append_run($wexpr, n);
                        ca.consume(n);
                        cb.consume(n);
                    }
                    (Some(Run::Fill(bit, _)), Some(_)) => {
                        let $lb = bit;
                        fill_step($lact, &mut ca, &mut cb, &mut out);
                    }
                    (Some(_), Some(Run::Fill(bit, _))) => {
                        let $rb = bit;
                        fill_step($ract, &mut cb, &mut ca, &mut out);
                    }
                    (Some(Run::Literal(p, w)), Some(Run::Literal(q, w2))) => {
                        debug_assert_eq!(w, w2, "equal-length vectors stay aligned");
                        let ($x, $y) = (p, q);
                        let r = ($wexpr) & lit_mask(w);
                        if w as u64 == SEG_BITS {
                            out.append_seg31(r);
                        } else {
                            for jj in 0..w {
                                out.push_bit(r & (1 << jj) != 0);
                            }
                        }
                        ca.consume(w as u64);
                        cb.consume(w as u64);
                    }
                    _ => unreachable!("cursors of equal-length vectors end together"),
                }
            }
            out.finish()
        }
    };
}

binary_kernel!(
    /// Materializing AND: a 0-fill emits a 0-fill without touching the
    /// other side; a 1-fill copies the other side through.
    and_kernel,
    (x, y) => x & y,
    left_fill: (bit) => if bit { FillAction::Copy } else { FillAction::Emit(false) },
    right_fill: (bit) => if bit { FillAction::Copy } else { FillAction::Emit(false) }
);

binary_kernel!(
    /// Materializing OR: a 1-fill emits a 1-fill; a 0-fill copies the
    /// other side through.
    or_kernel,
    (x, y) => x | y,
    left_fill: (bit) => if bit { FillAction::Emit(true) } else { FillAction::Copy },
    right_fill: (bit) => if bit { FillAction::Emit(true) } else { FillAction::Copy }
);

binary_kernel!(
    /// Materializing XOR: a 0-fill copies the other side, a 1-fill copies
    /// its complement.
    xor_kernel,
    (x, y) => x ^ y,
    left_fill: (bit) => if bit { FillAction::CopyNot } else { FillAction::Copy },
    right_fill: (bit) => if bit { FillAction::CopyNot } else { FillAction::Copy }
);

binary_kernel!(
    /// Materializing AND-NOT (`a & !b`). Asymmetric: a 0-fill on the left
    /// or a 1-fill on the right zeroes the result; a 1-fill on the left
    /// copies the right side complemented; a 0-fill on the right copies
    /// the left side through.
    andnot_kernel,
    (x, y) => x & !y,
    left_fill: (bit) => if bit { FillAction::CopyNot } else { FillAction::Emit(false) },
    right_fill: (bit) => if bit { FillAction::Emit(false) } else { FillAction::Copy }
);

/// Direct complement over runs: fills flip their bit, literals complement
/// under the width mask — one pass, no scratch all-ones operand.
pub(crate) fn not_kernel(a: &WahVec) -> WahVec {
    let mut out = WahBuilder::new();
    for run in a.runs() {
        match run {
            Run::Fill(bit, n) => out.append_run(!bit, n),
            Run::Literal(p, w) => {
                if w as u64 == SEG_BITS {
                    out.append_seg31(!p & LITERAL_MASK);
                } else {
                    let r = !p & lit_mask(w);
                    for j in 0..w {
                        out.push_bit(r & (1 << j) != 0);
                    }
                }
            }
        }
    }
    out.finish()
}

// ---------------------------------------------------------------------------
// PreparedOperand: decode-once reuse across op fan-outs
// ---------------------------------------------------------------------------

/// A decode-once operand for op fan-outs: when one vector (a histogram row,
/// a mining unit mask, …) participates in many ops, preparing it pays the
/// density cutover's decode cost a single time.
pub enum PreparedOperand<'a> {
    /// Below the cutover — ops run on the compressed form.
    Compressed(&'a WahVec),
    /// Above the cutover — ops stream the other side against the unpacked
    /// buffer.
    Dense {
        /// The original compressed vector.
        source: &'a WahVec,
        /// Its unpacked form.
        bits: DenseBits,
    },
}

impl<'a> PreparedOperand<'a> {
    /// The original compressed vector.
    #[inline]
    pub fn source(&self) -> &'a WahVec {
        match self {
            PreparedOperand::Compressed(v) => v,
            PreparedOperand::Dense { source, .. } => source,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.source().len()
    }

    /// `true` if the operand holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if the operand was unpacked (above the cutover).
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self, PreparedOperand::Dense { .. })
    }

    /// `popcount(self AND other)` reusing the decoded form.
    pub fn and_count(&self, other: &WahVec) -> u64 {
        match self {
            PreparedOperand::Compressed(v) => and_count_adaptive(v, other),
            PreparedOperand::Dense { bits, .. } => bits.and_count_wah(other),
        }
    }

    /// `popcount(self XOR other)` reusing the decoded form.
    pub fn xor_count(&self, other: &WahVec) -> u64 {
        match self {
            PreparedOperand::Compressed(v) => xor_count_adaptive(v, other),
            PreparedOperand::Dense { bits, .. } => bits.xor_count_wah(other),
        }
    }

    /// Per-unit 1-bit counts of `self AND other`, reusing the decoded form.
    pub fn and_count_per_unit(&self, other: &WahVec, unit_bits: u64) -> Vec<u64> {
        match self {
            PreparedOperand::Compressed(v) => v.and_count_per_unit(other, unit_bits),
            PreparedOperand::Dense { bits, .. } => bits.and_count_per_unit_wah(other, unit_bits),
        }
    }
}

impl WahVec {
    /// Prepares this vector for reuse across many ops: unpacks it once if
    /// it is above the density cutover, otherwise borrows it as-is.
    pub fn prepare(&self) -> PreparedOperand<'_> {
        if self.is_dense() {
            OBS_PREPARE_DENSE.inc();
            PreparedOperand::Dense {
                source: self,
                bits: DenseBits::from_wah(self),
            }
        } else {
            OBS_PREPARE_COMPRESSED.inc();
            PreparedOperand::Compressed(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic mixed-density bit patterns exercising fills, literal
    /// stretches, and tails on both sides of the cutover.
    fn patterns() -> Vec<Vec<bool>> {
        let mut out = vec![
            vec![],
            vec![true],
            (0..30).map(|i| i % 3 == 0).collect(),
            (0..31).map(|_| true).collect(),
            (0..100).map(|i| i < 50).collect(),
            (0..311).map(|i| (i * 7) % 13 < 6).collect(),
            (0..1000).map(|i| (i * 31 + 7) % 61 < 30).collect(),
        ];
        // fill-heavy sparse
        let mut sparse = vec![false; 3100];
        sparse[100] = true;
        sparse[2500] = true;
        out.push(sparse);
        // dense random-ish
        out.push(
            (0..2048)
                .map(|i: u64| (i.wrapping_mul(2654435761) >> 7) & 1 == 1)
                .collect(),
        );
        out
    }

    #[test]
    fn dense_roundtrip_is_canonical() {
        for bits in patterns() {
            let v = WahVec::from_bits(bits.iter().copied());
            let d = DenseBits::from_wah(&v);
            assert_eq!(d.len(), v.len());
            assert_eq!(d.count_ones(), v.count_ones());
            let back = d.to_wah();
            assert_eq!(back, v);
            back.check_canonical().unwrap();
        }
    }

    #[test]
    fn hybrid_counts_match_naive() {
        let pats = patterns();
        for a_bits in &pats {
            for b_bits in &pats {
                if a_bits.len() != b_bits.len() {
                    continue;
                }
                let a = WahVec::from_bits(a_bits.iter().copied());
                let b = WahVec::from_bits(b_bits.iter().copied());
                let da = DenseBits::from_wah(&a);
                let db = DenseBits::from_wah(&b);
                let want_and = a_bits.iter().zip(b_bits).filter(|(&x, &y)| x & y).count() as u64;
                let want_xor = a_bits.iter().zip(b_bits).filter(|(&x, &y)| x ^ y).count() as u64;
                assert_eq!(da.and_count_wah(&b), want_and);
                assert_eq!(da.xor_count_wah(&b), want_xor);
                assert_eq!(da.and_count(&db), want_and);
                assert_eq!(da.xor_count(&db), want_xor);
                assert_eq!(and_count_compressed(&a, &b), want_and);
                assert_eq!(xor_count_compressed(&a, &b), want_xor);
                assert_eq!(and_count_adaptive(&a, &b), want_and);
                assert_eq!(xor_count_adaptive(&a, &b), want_xor);
            }
        }
    }

    #[test]
    fn stats_single_pass_matches() {
        for bits in patterns() {
            let v = WahVec::from_bits(bits.iter().copied());
            let s = v.stats();
            assert_eq!(s.words, v.words().len());
            assert_eq!(s.ones, bits.iter().filter(|&&b| b).count() as u64);
            if !bits.is_empty() {
                let want = s.ones as f64 / bits.len() as f64;
                assert!((s.density - want).abs() < 1e-12);
            }
            assert!(s.runs <= s.words.max(1));
        }
    }

    #[test]
    fn cutover_rule_classifies() {
        // A long fill compresses to one word: far below the cutover.
        assert!(!WahVec::zeros(100_000).is_dense());
        // Alternating bits are incompressible literals: above it.
        let v = WahVec::from_bits((0..10_000).map(|i| i % 2 == 0));
        assert!(v.is_dense());
    }

    #[test]
    fn prepared_operand_reuses_decode() {
        let dense = WahVec::from_bits((0..5000).map(|i| i % 2 == 0));
        let sparse = WahVec::from_ones(&[3, 500, 4999], 5000);
        let p = dense.prepare();
        assert!(p.is_dense());
        assert_eq!(p.and_count(&sparse), dense.and_count(&sparse));
        assert_eq!(p.xor_count(&sparse), dense.xor_count(&sparse));
        assert_eq!(
            p.and_count_per_unit(&sparse, 64),
            dense.and_count_per_unit(&sparse, 64)
        );
        let q = sparse.prepare();
        assert!(!q.is_dense());
        assert_eq!(q.and_count(&dense), dense.and_count(&sparse));
        assert_eq!(q.source().len(), 5000);
    }

    #[test]
    fn and_wah_into_matches_materialized_and() {
        let pats = patterns();
        for a_bits in &pats {
            for b_bits in &pats {
                if a_bits.len() != b_bits.len() {
                    continue;
                }
                let a = WahVec::from_bits(a_bits.iter().copied());
                let b = WahVec::from_bits(b_bits.iter().copied());
                let da = DenseBits::from_wah(&a);
                let want = DenseBits::from_wah(&a.and(&b));
                assert_eq!(da.and_wah(&b), want);
                // reuse path: a dirty scratch buffer must be fully rebuilt
                let mut scratch = DenseBits::from_wah(&b);
                da.and_wah_into(&b, &mut scratch);
                assert_eq!(scratch, want);
            }
        }
    }

    #[test]
    fn per_unit_hybrid_matches_materialized() {
        for bits in patterns() {
            let n = bits.len();
            let other: Vec<bool> = (0..n).map(|i| (i * 5) % 9 < 4).collect();
            let a = WahVec::from_bits(bits.iter().copied());
            let b = WahVec::from_bits(other.iter().copied());
            let da = DenseBits::from_wah(&a);
            let joint = a.and(&b);
            for unit in [1u64, 31, 64, 100] {
                assert_eq!(
                    da.and_count_per_unit_wah(&b, unit),
                    joint.count_ones_per_unit(unit),
                    "len {n} unit {unit}"
                );
            }
        }
    }
}
