//! Lossy superset sweep: FPR × simulation pattern, persisted to
//! `BENCH_lossy.json` at the repository root. For each pattern the sweep
//! reports the at-rest size of the exact index against its lossy superset
//! companion, the *measured* false-positive rate against the requested
//! bound, and the filter/refine query times — with the superset identity
//! (`exact & lossy == exact`) and the refine byte-identity asserted before
//! any point is timed.
//!
//! `IBIS_LOSSY_SMOKE=1` shrinks the grids and writes to
//! `target/BENCH_lossy.smoke.json` instead, so CI can schema-check the
//! report without paying for the full sweep.

use ibis_core::{Binner, BitmapIndex, WahVec, ZOrderLayout};
use ibis_datagen::{
    Heat3D, Heat3DConfig, LuleshConfig, MiniLulesh, OceanConfig, OceanModel, Simulation,
};
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per iteration (same calibration scheme as the codec
/// shootout in `codecs.rs`).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

const FPRS: [f64; 4] = [1e-4, 1e-3, 1e-2, 1e-1];

/// One timed point of the sweep.
struct Sample {
    pattern: &'static str,
    fpr: f64,
    exact_bytes: usize,
    lossy_bytes: usize,
    size_reduction: f64,
    measured_fpr: f64,
    bits_dropped: u64,
    fpr_bound_met: bool,
    exact_query_s: f64,
    lossy_filter_s: f64,
    filter_refine_s: f64,
}

/// The three simulation patterns of the paper's experiments, each as one
/// representative late-run field: Heat3D's diffusing temperature, a
/// mini-LULESH array, and the ocean model's temperature in Z-order (the
/// layout its mining pipeline uses).
fn patterns(smoke: bool) -> Vec<(&'static str, Vec<f64>, Binner)> {
    let mut out = Vec::new();

    // Surface dither (the absorbable short gaps) scales with shell *area*
    // while the FPR budget scales with *volume*, so the larger production
    // grid is where the lossy pass earns its keep.
    let (hn, heat_steps) = if smoke { (48, 2) } else { (112, 3) };
    let mut heat = Heat3D::new(Heat3DConfig {
        nx: hn,
        ny: hn,
        nz: hn,
        ..Default::default()
    });
    let mut last = heat.step();
    for _ in 1..heat_steps {
        last = heat.step();
    }
    let data = last.fields.swap_remove(0).data;
    let binner = Binner::fit(&data, 32);
    out.push(("heat3d_temperature_early", data, binner));

    let mut lulesh = MiniLulesh::new(LuleshConfig::default());
    let lulesh_steps = if smoke { 3 } else { 12 };
    let mut last = lulesh.step();
    for _ in 1..lulesh_steps {
        last = lulesh.step();
    }
    let fx = last
        .fields
        .iter()
        .position(|f| f.name == "force_x")
        .expect("force_x present");
    let data = last.fields.swap_remove(fx).data;
    let binner = Binner::fit(&data, 32);
    out.push(("lulesh_force_x", data, binner));

    let (nlon, nlat, ndepth) = if smoke { (48, 36, 2) } else { (128, 96, 2) };
    let ocean = OceanModel::new(OceanConfig {
        nlon,
        nlat,
        ndepth,
        ..Default::default()
    });
    let data = ocean.variable("temperature");
    let binner = Binner::fit(&data, 32);
    out.push(("ocean_temperature", data, binner));

    let ocean = OceanModel::new(OceanConfig {
        nlon,
        nlat,
        ndepth,
        ..Default::default()
    });
    let z = ZOrderLayout::new(&[nlon, nlat, ndepth]);
    let data = z.reorder(&ocean.variable("temperature"));
    let binner = Binner::fit(&data, 32);
    out.push(("ocean_temperature_zorder", data, binner));

    out
}

/// OR-fold of a contiguous bin range — the core of a value-range query.
fn range_or(idx: &BitmapIndex, lo: usize, hi: usize) -> WahVec {
    let mut acc = idx.bin(lo).clone();
    for b in lo + 1..hi {
        acc = acc.or(idx.bin(b));
    }
    acc
}

fn main() {
    let smoke = std::env::var("IBIS_LOSSY_SMOKE").is_ok_and(|v| v == "1");
    let mut samples: Vec<Sample> = Vec::new();

    for (pattern, data, binner) in patterns(smoke) {
        let exact = BitmapIndex::build(&data, binner);
        let nbins = exact.nbins();
        let (qlo, qhi) = (nbins / 4, nbins / 2);
        let exact_sel = range_or(&exact, qlo, qhi);

        for fpr in FPRS {
            let (lossy, stats) = exact.lossy(fpr);

            // -- identity gate: per-bin superset, budget, and refine
            // byte-identity, all before anything is timed --
            for b in 0..nbins {
                let (e, l) = (exact.bin(b), lossy.bin(b));
                l.check_canonical().expect("lossy bin canonical");
                assert_eq!(&e.and(l), e, "{pattern}/fpr={fpr}: bin {b} lost a bit");
            }
            let measured = stats.measured_fpr();
            assert!(
                measured <= fpr,
                "{pattern}: measured FPR {measured} above requested {fpr}"
            );
            let lossy_sel = range_or(&lossy, qlo, qhi);
            let refined = exact_sel.and(&lossy_sel);
            assert_eq!(
                refined.words(),
                exact_sel.words(),
                "{pattern}/fpr={fpr}: refine is not byte-identical"
            );

            let exact_bytes = exact.size_bytes();
            let lossy_bytes = lossy.size_bytes();
            let size_reduction = exact_bytes as f64 / lossy_bytes as f64;

            let exact_query_s = measure(|| range_or(&exact, qlo, qhi).count_ones());
            let lossy_filter_s = measure(|| range_or(&lossy, qlo, qhi).count_ones());
            let filter_refine_s = measure(|| {
                let filter = range_or(&lossy, qlo, qhi);
                if filter.count_ones() == 0 {
                    return 0;
                }
                range_or(&exact, qlo, qhi).and(&filter).count_ones()
            });

            println!(
                "lossy: {pattern:<26} fpr {fpr:>6.0e}  size {:>8} -> {:>8} ({size_reduction:>5.2}x)  \
                 measured {measured:.2e}  dropped {:>7}",
                exact_bytes, lossy_bytes, stats.bits_dropped
            );
            samples.push(Sample {
                pattern,
                fpr,
                exact_bytes,
                lossy_bytes,
                size_reduction,
                measured_fpr: measured,
                bits_dropped: stats.bits_dropped,
                fpr_bound_met: measured <= fpr,
                exact_query_s,
                lossy_filter_s,
                filter_refine_s,
            });
        }
    }

    // Headline target: at a *usable* bound (FPR ≤ 1e-2), at least one
    // pattern's companion is ≥1.5× smaller than its exact index.
    let target_met = samples
        .iter()
        .any(|s| s.fpr <= 1e-2 + 1e-15 && s.size_reduction >= 1.5);
    let all_bounds_met = samples.iter().all(|s| s.fpr_bound_met);
    println!(
        "lossy: size target (>=1.5x at fpr<=1e-2) met: {target_met}; all FPR bounds met: {all_bounds_met}"
    );

    let mut out = String::from("{\n  \"identity_checked\": true,\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"fpr\": {:e}, \"exact_bytes\": {}, \
             \"lossy_bytes\": {}, \"size_reduction\": {:.3}, \"measured_fpr\": {:e}, \
             \"bits_dropped\": {}, \"fpr_bound_met\": {}, \"exact_query_s\": {:e}, \
             \"lossy_filter_s\": {:e}, \"filter_refine_s\": {:e}}}{}\n",
            s.pattern,
            s.fpr,
            s.exact_bytes,
            s.lossy_bytes,
            s.size_reduction,
            s.measured_fpr,
            s.bits_dropped,
            s.fpr_bound_met,
            s.exact_query_s,
            s.lossy_filter_s,
            s.filter_refine_s,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"targets\": {\n");
    out.push_str(&format!(
        "    \"size_reduction_ge_1p5x_at_fpr_le_1e-2\": {target_met},\n"
    ));
    out.push_str(&format!("    \"all_fpr_bounds_met\": {all_bounds_met}\n"));
    out.push_str("  }\n}\n");

    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_lossy.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lossy.json")
    };
    std::fs::write(path, out).expect("write BENCH_lossy report");
    println!("lossy: wrote {path}");
}
