//! Overload-safe serving sweep: drives `QueryServer` with closed- and
//! open-loop zipf-skewed load and proves the core SLO property — under
//! injected slow workers, p99 latency of *admitted* requests stays
//! bounded (deadlines drop what can't finish in budget) and excess load
//! turns into typed sheds, never queueing collapse. Written to
//! `BENCH_serving.json` at the repository root.
//!
//!     cargo bench -p ibis-bench --bench serving
//!
//! Phases:
//! 1. closed-loop, fault-free: 8 clients over a zipf query mix —
//!    baseline p50/p99/p999 of server-side completion latency;
//! 2. saturation ramp: closed-loop throughput at 1..16 clients, the max
//!    is the saturation throughput;
//! 3. open-loop overload with slow-worker faults (every 4th request
//!    +10 ms): arrivals at a fixed schedule regardless of completion, a
//!    per-request deadline of ~3x the fault-free p99 — asserts the
//!    SLO + typed-shed + queue-bound properties;
//! 4. coalescing proof: 8 concurrent identical queries on a cold cache
//!    with a slowed leader — exactly one store decode, 7 coalesce hits;
//! 5. socket round-trip p50 over the TCP front end.
//!
//! `IBIS_SERVE_SMOKE=1` shrinks everything and writes to
//! `target/BENCH_serving.smoke.json` so CI can schema-check the report
//! without clobbering the committed full-size numbers.

use ibis_analysis::SubsetQuery;
use ibis_core::{Binner, BitmapIndex};
use ibis_insitu::{
    CachedStore, FaultPlan, QueryEngine, QueryRequest, QueryServer, ServeConfig, ServeError,
    SocketServer, Store, StoreWriter,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const NBINS: usize = 64;
const QUEUE_CAP: usize = 32;
const WORKERS: usize = 4;
const SLOW_EVERY: u64 = 4;
const SLOW_MS: u64 = 10;

/// A smooth simulation-like field (same shape as the query bench).
fn temperature(step: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            32.0 + 28.0 * (x * 9.0 + step as f64 * 0.7).sin() + 3.0 * (x * 151.0).sin()
        })
        .collect()
}

fn salinity(temp: &[f64]) -> Vec<f64> {
    temp.iter()
        .enumerate()
        .map(|(i, &t)| 20.0 + t * 0.5 + 6.0 * ((i as f64 * 0.013).cos()))
        .collect()
}

/// splitmix64, for the zipf pick (the bench must be self-deterministic).
struct Mix64(u64);

impl Mix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The query catalog: subset drills and correlations per step, ranked so
/// a zipf pick makes the head entries hot (the coalescing/cache regime)
/// while the tail keeps cold work in the mix.
fn catalog(nsteps: usize) -> Vec<QueryRequest> {
    // Wide enough that overload cannot hide behind coalescing: distinct
    // in-flight keys must be able to exceed the queue bound, or the
    // inflight map alone would absorb any arrival rate.
    let mut out = Vec::new();
    for step in 0..nsteps {
        for w in 0..24u32 {
            let lo = f64::from(w) * 2.5;
            out.push(QueryRequest::Subset {
                step,
                variable: "temperature".into(),
                query: SubsetQuery::value(lo, lo + 14.0),
            });
        }
        for w in 0..8u32 {
            let lo = f64::from(w) * 6.0;
            out.push(QueryRequest::Correlation {
                step,
                var_a: "temperature".into(),
                var_b: "salinity".into(),
                query_a: SubsetQuery::value(lo, lo + 18.0),
                query_b: SubsetQuery::all(),
            });
        }
    }
    out
}

/// Zipf cumulative weights over the catalog (weight 1/rank).
fn zipf_cum(len: usize) -> Vec<f64> {
    let mut acc = 0.0;
    (0..len)
        .map(|i| {
            acc += 1.0 / (i + 1) as f64;
            acc
        })
        .collect()
}

fn pick<'a>(catalog: &'a [QueryRequest], cum: &[f64], rng: &mut Mix64) -> &'a QueryRequest {
    let total = cum[cum.len() - 1];
    let x = rng.unit() * total;
    &catalog[cum.partition_point(|&c| c < x).min(catalog.len() - 1)]
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let i = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[i] as f64 / 1e6
}

fn open_engine(dir: &std::path::Path) -> QueryEngine {
    QueryEngine::new(CachedStore::new(
        Store::open(dir).expect("open bench store"),
        256 << 20,
    ))
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        queue_capacity: QUEUE_CAP,
        record_latencies: true,
        ..ServeConfig::default()
    }
}

/// Closed-loop burst: `clients` threads each running their share of
/// `total` zipf-picked requests; returns (wall seconds, completed).
fn closed_loop(
    server: &Arc<QueryServer>,
    cat: &[QueryRequest],
    cum: &[f64],
    clients: usize,
    total: usize,
    seed: u64,
) -> (f64, u64) {
    let completed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let share = total / clients + usize::from(c < total % clients);
            let server = Arc::clone(server);
            let completed = &completed;
            scope.spawn(move || {
                let mut rng = Mix64(seed ^ (c as u64).wrapping_mul(0xA5A5_1234));
                for _ in 0..share {
                    let req = pick(cat, cum, &mut rng);
                    if server.submit(req, None).is_ok() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    (t0.elapsed().as_secs_f64(), completed.into_inner())
}

fn main() {
    let smoke = std::env::var("IBIS_SERVE_SMOKE").is_ok_and(|v| v == "1");
    let n: usize = if smoke { 1 << 14 } else { 1 << 18 };
    let nsteps: usize = if smoke { 2 } else { 4 };
    let closed_total: usize = if smoke { 240 } else { 2400 };
    let open_per_client: usize = if smoke { 120 } else { 600 };
    let open_clients: usize = 8;
    let binner = Binner::fixed_width(0.0, 66.0, NBINS);

    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-serving-store");
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).expect("create bench store");
    for step in 0..nsteps {
        let t = temperature(step, n);
        let s = salinity(&t);
        w.put(step, "temperature", &BitmapIndex::build(&t, binner.clone()))
            .expect("put temperature");
        w.put(step, "salinity", &BitmapIndex::build(&s, binner.clone()))
            .expect("put salinity");
    }
    w.finish().expect("finish bench store");

    let cat = catalog(nsteps);
    let cum = zipf_cum(cat.len());

    // --- phase 1: closed-loop fault-free baseline ---
    let server = Arc::new(
        QueryServer::start(open_engine(&dir), base_config()).expect("start baseline server"),
    );
    // warm the cache so the baseline measures the serving layer, not disk
    for req in &cat {
        server.submit(req, None).expect("warmup query");
    }
    server.take_latencies();
    let (wall, completed) = closed_loop(&server, &cat, &cum, 8, closed_total, 0xBA5E);
    let mut free_ns = server.take_latencies();
    free_ns.sort_unstable();
    let free_p50 = percentile_ms(&free_ns, 0.50);
    let free_p99 = percentile_ms(&free_ns, 0.99);
    let free_p999 = percentile_ms(&free_ns, 0.999);
    let free_stats = server.stats();
    println!(
        "serving: fault-free closed loop {completed} done in {wall:.2}s  p50 {free_p50:.3} ms  \
         p99 {free_p99:.3} ms  p999 {free_p999:.3} ms  (coalesced {})",
        free_stats.coalesce_hits
    );
    server.shutdown();

    // --- phase 2: saturation ramp ---
    let ramp_total = closed_total / 2;
    let mut saturation_qps = 0.0f64;
    let mut ramp = Vec::new();
    for clients in [1usize, 2, 4, 8, 16] {
        let server = Arc::new(
            QueryServer::start(open_engine(&dir), base_config()).expect("start ramp server"),
        );
        for req in &cat {
            server.submit(req, None).expect("ramp warmup");
        }
        let (wall, done) = closed_loop(
            &server,
            &cat,
            &cum,
            clients,
            ramp_total,
            0x5A7 + clients as u64,
        );
        let qps = done as f64 / wall.max(1e-9);
        saturation_qps = saturation_qps.max(qps);
        ramp.push(format!("{{\"clients\": {clients}, \"qps\": {qps:.0}}}"));
        server.shutdown();
    }
    println!("serving: saturation ramp max {saturation_qps:.0} req/s");

    // --- phase 3: open-loop overload + slow workers ---
    // Deadline ~3x the fault-free p99: admitted requests mechanically
    // finish within ~4x (dequeue re-check caps queue wait at the
    // deadline), anything slower becomes a typed deadline drop, and the
    // arrival surplus becomes typed sheds. Floor at 2 ms so the smoke
    // config doesn't set a sub-scheduler-tick budget.
    let deadline = Duration::from_secs_f64((3.0 * free_p99 / 1e3).max(2e-3));
    let mut faults = FaultPlan::none();
    let open_total = (open_clients * open_per_client) as u64;
    for op in (0..open_total * 2).step_by(SLOW_EVERY as usize) {
        faults = faults.with_slow_request(op, SLOW_MS);
    }
    let cfg = ServeConfig {
        // shed immediately when the queue is full: open-loop arrivals
        // should not stack up behind a blocking admission window
        admission_timeout: Duration::ZERO,
        faults,
        ..base_config()
    };
    let server =
        Arc::new(QueryServer::start(open_engine(&dir), cfg).expect("start overload server"));
    for req in &cat {
        server.submit(req, None).expect("overload warmup");
    }
    server.take_latencies();
    let warm_stats = server.stats();
    // Offered load must overwhelm the pool *after* coalescing: with the
    // zipf head mostly in flight, ~90% of arrivals coalesce, so only the
    // distinct-key tail reaches admission. 8 clients at this arrival
    // spacing push that tail well past the slow-fault-degraded worker
    // capacity (~1.5k req/s) — a sustained overload that must surface as
    // typed sheds, not a growing queue.
    let arrival = Duration::from_micros(if smoke { 200 } else { 300 });
    std::thread::scope(|scope| {
        for c in 0..open_clients {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let mut rng = Mix64(0xF417 ^ (c as u64).wrapping_mul(0x77));
                let cat = catalog(nsteps);
                let cum = zipf_cum(cat.len());
                for _ in 0..open_per_client {
                    let req = pick(&cat, &cum, &mut rng);
                    // fire-and-forget: the ticket is dropped, the request
                    // still executes and resolves for coalesced peers
                    match server.submit_async(req, Some(deadline)) {
                        Ok(_) | Err(ServeError::Shed { .. }) | Err(ServeError::Deadline { .. }) => {
                        }
                        Err(e) => panic!("unexpected admission outcome: {e}"),
                    }
                    std::thread::sleep(arrival);
                }
            });
        }
    });
    // drain: every admitted leader resolves as ok/failed/deadline/panic
    loop {
        let st = server.stats();
        let settled = st.ok + st.failed + st.deadline_dequeue + st.deadline_execution
            - (warm_stats.ok + warm_stats.failed);
        if settled >= st.admitted - warm_stats.admitted && st.queue_depth == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut faulted_ns = server.take_latencies();
    faulted_ns.sort_unstable();
    let faulted_p50 = percentile_ms(&faulted_ns, 0.50);
    let faulted_p99 = percentile_ms(&faulted_ns, 0.99);
    let st = server.stats();
    let shed = st.shed;
    let deadline_drops = st.deadline_admission + st.deadline_dequeue + st.deadline_execution;
    let faulted_over = if free_p99 > 0.0 {
        faulted_p99 / free_p99
    } else {
        0.0
    };
    let within_5x = faulted_over <= 5.0;
    let queue_peak = st.queue_peak;
    let mut queue_bound_respected = queue_peak <= QUEUE_CAP as u64;
    // The obs gauge is the zero-collapse witness: its max watermark over
    // the whole process (every phase uses the same capacity) must stay
    // within the configured bound.
    if ibis_obs::ENABLED {
        match ibis_obs::global().snapshot().get("serving.queue.depth") {
            Some(ibis_obs::MetricValue::Gauge { max, .. }) => {
                assert!(
                    *max <= QUEUE_CAP as i64,
                    "obs queue depth max {max} exceeded bound {QUEUE_CAP}"
                );
                queue_bound_respected &= *max <= QUEUE_CAP as i64;
            }
            other => panic!("serving.queue.depth gauge missing: {other:?}"),
        }
    }
    assert!(
        within_5x,
        "faulted p99 {faulted_p99:.3} ms exceeds 5x fault-free p99 {free_p99:.3} ms"
    );
    assert!(shed > 0, "overload phase must shed (typed), got zero sheds");
    assert!(queue_bound_respected, "queue exceeded its configured bound");
    println!(
        "serving: overload p50 {faulted_p50:.3} ms  p99 {faulted_p99:.3} ms \
         ({faulted_over:.2}x fault-free, <=5x: {within_5x})  shed {shed}  \
         deadline {deadline_drops}  queue peak {queue_peak}/{QUEUE_CAP}"
    );
    server.shutdown();

    // --- phase 4: coalescing on a cold cache ---
    // The leader is slowed so all 8 arrivals overlap its execution: one
    // decode (one cache miss), 7 coalesce hits, 8 equal answers.
    let cfg = ServeConfig {
        faults: FaultPlan::none().with_slow_request(0, 100),
        ..base_config()
    };
    let server =
        Arc::new(QueryServer::start(open_engine(&dir), cfg).expect("start coalesce server"));
    let req = QueryRequest::Subset {
        step: 0,
        variable: "temperature".into(),
        query: SubsetQuery::value(5.0, 25.0),
    };
    let barrier = Arc::new(Barrier::new(8));
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                scope.spawn(move || {
                    barrier.wait();
                    server.submit(&req, None)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joiner"))
            .collect()
    });
    let st = server.stats();
    let cache = server.engine().cache_stats();
    assert!(answers.iter().all(|a| a.is_ok() && *a == answers[0]));
    assert_eq!(cache.misses, 1, "thundering herd must decode exactly once");
    assert_eq!(
        (st.coalesce_leads, st.coalesce_hits),
        (1, 7),
        "8 identical queries: 1 leader + 7 coalesced"
    );
    println!(
        "serving: coalesce 8 identical cold queries -> {} decode, {} coalesce hits",
        cache.misses, st.coalesce_hits
    );
    server.shutdown();

    // --- phase 5: socket round-trip ---
    let server = Arc::new(
        QueryServer::start(open_engine(&dir), base_config()).expect("start socket server"),
    );
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("bind socket");
    let addr = socket.local_addr();
    let frames: usize = if smoke { 60 } else { 400 };
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut rtt_ns: Vec<u64> = Vec::with_capacity(frames);
    let mut line = String::new();
    for i in 0..frames {
        let step = i % nsteps;
        let frame = format!(
            "{{\"queries\": [{{\"kind\": \"subset\", \"step\": {step}, \
             \"variable\": \"temperature\", \"value_range\": [10, 30]}}]}}"
        );
        let t0 = Instant::now();
        writeln!(writer, "{frame}").expect("send frame");
        line.clear();
        reader.read_line(&mut line).expect("read response");
        rtt_ns.push(t0.elapsed().as_nanos() as u64);
        assert!(line.contains("\"ok\""), "socket answer: {line}");
    }
    drop(writer);
    drop(reader);
    rtt_ns.sort_unstable();
    let socket_rtt_p50 = percentile_ms(&rtt_ns, 0.50);
    println!("serving: socket round-trip p50 {socket_rtt_p50:.3} ms over {frames} frames");
    socket.stop();
    server.shutdown();

    let samples = free_ns.len() + faulted_ns.len() + rtt_ns.len();
    let out = format!(
        "{{\n  \"workload\": \"zipf query mix, {n} elements/step, {nsteps} steps, {} catalog entries, \
         {WORKERS} workers, queue {QUEUE_CAP}\",\n  \
         \"samples\": {samples},\n  \
         \"fault_free_p50_ms\": {free_p50:.4},\n  \
         \"fault_free_p99_ms\": {free_p99:.4},\n  \
         \"fault_free_p999_ms\": {free_p999:.4},\n  \
         \"saturation_ramp\": [{}],\n  \
         \"saturation_qps\": {saturation_qps:.0},\n  \
         \"slow_worker_every\": {SLOW_EVERY},\n  \
         \"slow_worker_ms\": {SLOW_MS},\n  \
         \"deadline_ms\": {:.4},\n  \
         \"faulted_p50_ms\": {faulted_p50:.4},\n  \
         \"faulted_p99_ms\": {faulted_p99:.4},\n  \
         \"faulted_over_fault_free_p99\": {faulted_over:.3},\n  \
         \"faulted_p99_within_5x\": {within_5x},\n  \
         \"shed\": {shed},\n  \
         \"deadline_drops\": {deadline_drops},\n  \
         \"coalesce_hits\": 7,\n  \
         \"coalesce_decodes\": 1,\n  \
         \"queue_peak\": {queue_peak},\n  \
         \"queue_bound\": {QUEUE_CAP},\n  \
         \"queue_bound_respected\": {queue_bound_respected},\n  \
         \"socket_rtt_p50_ms\": {socket_rtt_p50:.4}\n}}\n",
        cat.len(),
        ramp.join(", "),
        deadline.as_secs_f64() * 1e3,
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_serving.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json")
    };
    std::fs::write(path, out).expect("write BENCH_serving report");
    std::fs::remove_dir_all(&dir).ok();
    println!("serving: wrote {path}");
}
