//! Parallel (cluster) in-situ analysis — the paper's Figure 13 scenario:
//! Heat3D distributed over N nodes with halo exchange, per-node bitmap
//! generation, globally coordinated time-steps selection, and output to
//! either node-local disks or one shared 100 MB/s remote data server.
//!
//! ```text
//! cargo run --release --example cluster_insitu
//! ```

use ibis::core::Binner;
use ibis::datagen::Heat3DConfig;
use ibis::insitu::{
    run_cluster, ClusterConfig, ClusterIo, ClusterReduction, MachineModel, RobustnessConfig,
    ScalingModel,
};

fn main() {
    let heat = Heat3DConfig {
        nx: 32,
        ny: 32,
        nz: 32,
        ..Default::default()
    };
    let base = ClusterConfig {
        nodes: 4,
        cores_per_node: 8,
        machine: MachineModel::oakley_node(),
        heat,
        sweeps_per_step: 2,
        steps: 16,
        select_k: 4,
        binner: Binner::precision(-1.0, 101.0, 0),
        reduction: ClusterReduction::Bitmaps,
        io: ClusterIo::Local,
        remote_bw: MachineModel::remote_link_bw(),
        sim_scaling: ScalingModel::heat3d(),
        robustness: RobustnessConfig::default(),
        coordinator_timeout: std::time::Duration::from_secs(30),
    };

    println!(
        "Heat3D {}³ across {} nodes × {} cores, selecting {} of {} steps\n",
        base.heat.nx, base.nodes, base.cores_per_node, base.select_k, base.steps
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "configuration", "sim(s)", "bitmap(s)", "output(s)", "total(s)", "written"
    );

    let mut selections = Vec::new();
    for (label, reduction, io) in [
        (
            "bitmaps / local",
            ClusterReduction::Bitmaps,
            ClusterIo::Local,
        ),
        (
            "full data / local",
            ClusterReduction::FullData,
            ClusterIo::Local,
        ),
        (
            "bitmaps / remote",
            ClusterReduction::Bitmaps,
            ClusterIo::Remote,
        ),
        (
            "full data / remote",
            ClusterReduction::FullData,
            ClusterIo::Remote,
        ),
    ] {
        let cfg = ClusterConfig {
            reduction,
            io,
            ..base.clone()
        };
        let r = run_cluster(&cfg).expect("run");
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7.1} MB",
            label,
            r.phases.simulate,
            r.phases.reduce,
            r.phases.output,
            r.total_modeled,
            r.bytes_written as f64 / 1e6
        );
        selections.push(r.selected);
    }
    assert!(
        selections.windows(2).all(|w| w[0] == w[1]),
        "all configurations must select the same steps"
    );
    println!(
        "\nAll four configurations selected the identical steps: {:?}",
        selections[0]
    );
    println!(
        "On the shared remote link the full-data method queues behind its own bulk —\n\
         the bitmaps method ships a fraction of the bytes and wins by the larger factor."
    );
}
