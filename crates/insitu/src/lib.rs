#![warn(missing_docs)]
// Non-test pipeline code must not panic on recoverable failures: every
// fallible path goes through `IbisError`. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # ibis-insitu — the in-situ analysis pipeline
//!
//! Runs a simulation and its bitmap-based analysis together on a modeled
//! platform, reproducing the paper's Section 5 experiments:
//!
//! * [`machine`] — platform profiles (Xeon-32, MIC-60, Oakley node) with
//!   per-workload Amdahl scaling curves; compute phases are really executed
//!   and measured, core-count effects and I/O times are modeled.
//! * [`pipeline`] — the Shared-Cores and Separate-Cores strategies
//!   (Section 2.3), streaming greedy time-steps selection (Figure 3), and
//!   the three reductions: bitmaps, full data, sampling.
//! * [`calibrate`] — the Equations 1–2 automatic core split.
//! * [`cluster`] — threads-as-nodes Heat3D with halo exchange, global
//!   selection via additive joint counts, and local vs contended-remote
//!   storage (Figure 13).
//! * [`io`] / [`memory`] / [`report`] — storage cost models (plus a real
//!   file sink and WAH codec), the Figure 11 memory accounting, and result
//!   records.
//! * [`store`] / [`cache`] / [`engine`] — the durable run-directory store,
//!   its sharded byte-budgeted LRU read cache, and the panic-free
//!   query-serving layer (subset/correlation queries, JSON batch protocol
//!   for `ibis query`).
//! * [`serving`] — the overload-control shell around the engine: bounded
//!   admission with typed sheds, per-request deadlines, duplicate
//!   coalescing, a respawning worker pool, and a split-frame-safe TCP
//!   front end (`ibis serve`).
//! * [`shard`] — the sharded distributed store: per-shard durable stores
//!   with independent crash-resume, scatter-gather query execution with
//!   byte-identical merged answers, region-based shard pruning, and
//!   background compaction/eviction maintenance.

pub mod cache;
pub mod calibrate;
pub mod cluster;
pub mod crc;
pub mod engine;
pub mod error;
pub mod fault;
pub mod io;
pub mod json;
pub mod machine;
pub mod memory;
pub mod pipeline;
pub mod report;
pub mod retry;
pub mod serving;
pub mod shard;
pub mod store;

pub use cache::{CacheStats, CachedStore};
pub use engine::{QueryAnswer, QueryEngine, QueryRequest};

pub use calibrate::{auto_allocate, calibrate, suggest_row_order, Calibration};
pub use cluster::{run_cluster, ClusterConfig, ClusterIo, ClusterReduction, ClusterReport};
pub use error::{DecodeError, IbisError, Result, WorkerRole};
pub use fault::{FaultInjector, FaultPlan, FaultSite, WriteFault};
pub use io::{codec, FileSink, LocalDisk, RemoteLink, Storage, StorageError};
pub use machine::{host_parallelism, modeled_seconds, MachineModel, ScalingModel};
pub use memory::MemoryTracker;
pub use pipeline::{
    resume_durable, run_durable, run_pipeline, CoreAllocation, FailurePolicy, PipelineConfig,
    Reduction, RobustnessConfig,
};
pub use report::{InsituReport, PhaseTimes, StepOutcome};
pub use retry::{write_with_retry, RetryPolicy, WriteReceipt};
pub use serving::{
    DeadlineStage, QueryServer, ServeConfig, ServeError, ServeResult, ServeStats, SocketServer,
    Ticket,
};
pub use shard::{
    is_sharded, shard_cuts, CompactReport, EngineBackend, MaintenanceConfig, MaintenanceReport,
    ShardedEngine, ShardedStore, ShardedWriter, SHARDS_FILE,
};
pub use store::{
    FsckReport, LossyCompanion, QuarantinedBlob, Store, StoreWriter, LOSSY_PREFIX, ORDER_VARIABLE,
};
