#![warn(missing_docs)]
//! # ibis-bench — figure-regeneration harnesses and micro-benchmarks
//!
//! One bench target per evaluation figure of the paper (Figures 7–17); each
//! prints the same rows/series the paper plots and appends a CSV under
//! `target/figures/`. Absolute numbers differ from the paper's testbed (our
//! substrate runs at laptop scale with modeled cores and I/O — see
//! DESIGN.md §3), but the *shape* — who wins, by what rough factor, where
//! the crossovers fall — is the reproduction target, recorded in
//! EXPERIMENTS.md.
//!
//! Workload sizes scale with the `IBIS_SCALE` environment variable
//! (default 1.0): set e.g. `IBIS_SCALE=2` for larger grids or `0.5` for a
//! quick pass.

pub mod ablations;
pub mod figures;

use ibis_core::Binner;
use ibis_datagen::{Heat3DConfig, LuleshConfig, MiniLulesh, Simulation};
use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

/// The global size multiplier from `IBIS_SCALE`.
pub fn scale() -> f64 {
    scale_from(std::env::var("IBIS_SCALE").ok().as_deref())
}

/// Parses an `IBIS_SCALE` setting: absent, unparsable, or non-positive
/// values fall back to 1.0. Pure so tests can cover every case without
/// touching the process environment.
pub fn scale_from(var: Option<&str>) -> f64 {
    var.and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}

/// Scales a linear dimension.
pub fn scaled_dim(base: usize) -> usize {
    ((base as f64 * scale().cbrt()).round() as usize).max(8)
}

/// Scales a count (steps, nodes, …).
pub fn scaled_count(base: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(2)
}

/// The benchmark Heat3D problem (paper: 800×1000×1000; here 64³ × scale).
pub fn heat3d_config() -> Heat3DConfig {
    let d = scaled_dim(64);
    Heat3DConfig {
        nx: d,
        ny: d,
        nz: d,
        ..Default::default()
    }
}

/// The benchmark Heat3D binning scale. The paper bins to one decimal digit
/// over each step's range, yielding 64–206 bitvectors; our fixed global
/// range at integer precision lands in the same regime (103 bins).
pub fn heat3d_binner() -> Binner {
    Binner::precision(-1.0, 101.0, 0)
}

/// The benchmark mini-LULESH problem.
pub fn lulesh_config() -> LuleshConfig {
    LuleshConfig {
        edge: scaled_dim(14),
        ..Default::default()
    }
}

/// Fits one binner per LULESH output array from a short probe run (the
/// binning scale must be shared across steps for cross-step metrics).
pub fn lulesh_binners(cfg: &LuleshConfig, probe_steps: usize, bins: usize) -> Vec<Binner> {
    let mut probe = MiniLulesh::new(cfg.clone());
    let steps = probe.run(probe_steps);
    (0..steps[0].fields.len())
        .map(|f| {
            let all: Vec<f64> = steps
                .iter()
                .flat_map(|s| s.fields[f].data.iter().copied())
                .collect();
            Binner::fit(&all, bins)
        })
        .collect()
}

/// The paper's 100-steps-select-25 setting, scaled.
pub fn steps_and_k() -> (usize, usize) {
    let steps = scaled_count(32);
    (steps, (steps / 4).max(2))
}

/// A printed + CSV-persisted result table for one figure.
pub struct Figure {
    id: &'static str,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Figure {
    /// Starts a figure table with the given identifier (e.g. `"fig07"`) and
    /// column headers.
    pub fn new(id: &'static str, title: &str, columns: &[&str]) -> Self {
        println!("\n=== {id}: {title} ===");
        Figure {
            id,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Prints the table and writes `target/figures/<id>.csv`.
    pub fn finish(self) {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.columns);
        for row in &self.rows {
            print_row(row);
        }
        // CSV
        let dir = figures_dir();
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{}.csv", self.id));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", self.columns.join(","));
            for row in &self.rows {
                let _ = writeln!(f, "{}", row.join(","));
            }
            println!("  [written {}]", path.display());
        }
    }
}

/// Where figure CSVs are collected.
pub fn figures_dir() -> PathBuf {
    // target/ relative to the workspace root, regardless of cwd
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("target").join("figures")
}

/// Formats seconds with 3 decimals (table cells).
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a speedup factor.
pub fn speedup(full: f64, ours: f64) -> String {
    format!("{:.2}x", full / ours)
}

/// Formats bytes as MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_covers_every_case() {
        // pure-function test: runs (and asserts) regardless of whether the
        // ambient environment sets IBIS_SCALE
        assert_eq!(scale_from(None), 1.0, "unset falls back");
        assert_eq!(scale_from(Some("2.5")), 2.5);
        assert_eq!(scale_from(Some("0.5")), 0.5);
        assert_eq!(scale_from(Some("not-a-number")), 1.0, "garbage falls back");
        assert_eq!(scale_from(Some("0")), 1.0, "zero is rejected");
        assert_eq!(scale_from(Some("-3")), 1.0, "negative is rejected");
    }

    #[test]
    fn figure_writes_csv() {
        let mut f = Figure::new("figtest", "smoke", &["a", "b"]);
        f.row(&[&1, &"x"]);
        f.row(&[&2, &"y"]);
        f.finish();
        let p = figures_dir().join("figtest.csv");
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("a,b"));
        assert!(s.contains("2,y"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn helpers_format() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(speedup(2.0, 1.0), "2.00x");
        assert_eq!(mb(1_500_000), "1.50");
    }

    #[test]
    fn lulesh_binners_cover_probe() {
        let cfg = LuleshConfig::tiny();
        let binners = lulesh_binners(&cfg, 2, 16);
        assert_eq!(binners.len(), 12);
    }
}
