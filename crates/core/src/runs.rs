//! Run decoding for WAH words: turns the compressed word stream into a
//! sequence of [`Run`]s without materializing bits.

use crate::wah::{fill_bits, is_fill, is_one_fill, LITERAL_MASK, SEG_BITS};

/// One decoded run of a WAH vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Run {
    /// A fill of `u64` bits of the given value; always a multiple of 31.
    Fill(bool, u64),
    /// A literal segment: payload (LSB-first) and its bit width (31 for all
    /// words except a partial tail).
    Literal(u32, u8),
}

impl Run {
    /// Number of bits this run covers.
    #[inline]
    pub fn len(&self) -> u64 {
        match *self {
            Run::Fill(_, n) => n,
            Run::Literal(_, n) => n as u64,
        }
    }
}

/// Iterator over the runs of a WAH word slice.
pub(crate) struct RunIter<'a> {
    words: &'a [u32],
    idx: usize,
    /// Bits remaining to be produced (drives tail-literal widths).
    remaining: u64,
}

impl<'a> RunIter<'a> {
    pub fn new(words: &'a [u32], len_bits: u64) -> Self {
        RunIter {
            words,
            idx: 0,
            remaining: len_bits,
        }
    }
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        if self.remaining == 0 {
            debug_assert_eq!(self.idx, self.words.len(), "words extend past len");
            return None;
        }
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        let run = if is_fill(w) {
            let n = fill_bits(w);
            debug_assert!(n <= self.remaining, "fill exceeds remaining bits");
            Run::Fill(is_one_fill(w), n)
        } else {
            let nbits = self.remaining.min(SEG_BITS) as u8;
            Run::Literal(w & LITERAL_MASK, nbits)
        };
        self.remaining -= run.len();
        Some(run)
    }
}

/// A cursor over runs that can hand out 31-bit segments on demand and skip
/// whole fills; the workhorse behind the legacy closure-generic binary
/// operations (the adaptive kernels in `kernels.rs` use [`RunIter`] and raw
/// word loops instead).
#[cfg_attr(not(any(test, feature = "legacy-kernels")), allow(dead_code))]
pub(crate) struct SegCursor<'a> {
    runs: RunIter<'a>,
    current: Option<Run>,
}

#[cfg_attr(not(any(test, feature = "legacy-kernels")), allow(dead_code))]
impl<'a> SegCursor<'a> {
    pub fn new(words: &'a [u32], len_bits: u64) -> Self {
        let mut runs = RunIter::new(words, len_bits);
        let current = runs.next();
        SegCursor { runs, current }
    }

    /// If positioned on a fill, returns `(bit, remaining_bits)`.
    #[inline]
    pub fn peek_fill(&self) -> Option<(bool, u64)> {
        match self.current {
            Some(Run::Fill(bit, n)) => Some((bit, n)),
            _ => None,
        }
    }

    /// Consumes `nbits` from the current fill; `nbits` must be a multiple of
    /// 31 not exceeding the fill's remaining length.
    #[inline]
    pub fn skip_fill(&mut self, nbits: u64) {
        match self.current {
            Some(Run::Fill(bit, n)) => {
                debug_assert!(nbits <= n && nbits.is_multiple_of(SEG_BITS));
                if nbits == n {
                    self.current = self.runs.next();
                } else {
                    self.current = Some(Run::Fill(bit, n - nbits));
                }
            }
            _ => panic!("skip_fill on a non-fill run"),
        }
    }

    /// Produces the next segment as `(payload, nbits)`; fills are expanded to
    /// 31-bit all-zero / all-one segments. Returns `None` at the end.
    #[inline]
    pub fn next_seg(&mut self) -> Option<(u32, u8)> {
        match self.current {
            None => None,
            Some(Run::Literal(payload, nbits)) => {
                self.current = self.runs.next();
                Some((payload, nbits))
            }
            Some(Run::Fill(bit, n)) => {
                let payload = if bit { LITERAL_MASK } else { 0 };
                if n == SEG_BITS {
                    self.current = self.runs.next();
                } else {
                    self.current = Some(Run::Fill(bit, n - SEG_BITS));
                }
                Some((payload, SEG_BITS as u8))
            }
        }
    }

    /// `true` once every bit has been consumed.
    #[cfg(test)]
    pub fn is_done(&self) -> bool {
        self.current.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WahVec;

    fn runs_of(v: &WahVec) -> Vec<Run> {
        RunIter::new(v.words(), v.len()).collect()
    }

    #[test]
    fn decodes_fill_and_literal() {
        let mut bits = vec![false; 62];
        bits.extend([true, false, true]);
        let v = WahVec::from_bits(bits.iter().copied());
        let runs = runs_of(&v);
        assert_eq!(runs, vec![Run::Fill(false, 62), Run::Literal(0b101, 3)]);
    }

    #[test]
    fn tail_literal_width() {
        let v = WahVec::from_bits((0..40).map(|i| i % 2 == 0));
        let runs = runs_of(&v);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].len(), 31);
        assert_eq!(runs[1].len(), 9);
    }

    #[test]
    fn run_lengths_sum_to_len() {
        for len in [0u64, 1, 31, 62, 63, 310, 311, 1000] {
            let v = WahVec::from_bits((0..len).map(|i| i % 7 < 3));
            let total: u64 = runs_of(&v).iter().map(Run::len).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn seg_cursor_expands_fills() {
        let v = WahVec::ones(93);
        let mut c = SegCursor::new(v.words(), v.len());
        for _ in 0..3 {
            assert_eq!(c.next_seg(), Some((LITERAL_MASK, 31)));
        }
        assert_eq!(c.next_seg(), None);
        assert!(c.is_done());
    }

    #[test]
    fn seg_cursor_skip_fill() {
        let v = WahVec::zeros(31 * 10);
        let mut c = SegCursor::new(v.words(), v.len());
        assert_eq!(c.peek_fill(), Some((false, 310)));
        c.skip_fill(31 * 9);
        assert_eq!(c.peek_fill(), Some((false, 31)));
        assert_eq!(c.next_seg(), Some((0, 31)));
        assert!(c.is_done());
    }

    #[test]
    fn seg_cursor_tail() {
        let v = WahVec::from_bits((0..33).map(|_| true));
        let mut c = SegCursor::new(v.words(), v.len());
        assert_eq!(c.next_seg(), Some((LITERAL_MASK, 31)));
        assert_eq!(c.next_seg(), Some((0b11, 2)));
        assert_eq!(c.next_seg(), None);
    }
}
