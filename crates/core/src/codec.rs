//! One roof over the three bitmap codecs — WAH ([`WahVec`]), BBC
//! ([`BbcVec`]), and Roaring ([`RoaringVec`]) — plus the per-bin selection
//! policy the index uses to pick between them.
//!
//! The [`Codec`] trait is **sealed**: the codec set is part of the on-disk
//! blob format (each codec owns a stable wire tag via [`CodecId`]), so new
//! codecs are an explicit format revision, not an extension point.
//! [`CodecVec`] is the dynamic side of the same roof — a tagged union the
//! index, store, and query layers pass around when the codec is a runtime
//! (per-bin) decision, with cross-codec set operations that dispatch to
//! native kernels when both operands share a codec and convert through WAH
//! otherwise (see `ops.rs`).
//!
//! [`select_codec`] is the policy: a pure function of the [`WahStats`] the
//! adaptive kernels already cache per bitvector, so batched ingestion pays
//! nothing extra to decide. Coherent bins (long mean fill runs that WAH
//! actually compresses) stay WAH; scattered sparse bins and dense noise —
//! where WAH degenerates to one literal word per 31 bits — go to Roaring,
//! whose array/bitset containers are exactly the forms those populations
//! want. BBC is never auto-selected (strictly slower than WAH on every
//! swept pattern, see `BENCH_codecs.json`); it stays available as an
//! explicit choice and an A/B baseline.

use crate::bbc::BbcVec;
use crate::kernels::WahStats;
use crate::roaring::RoaringVec;
use crate::wah::WahVec;
use ibis_obs::LazyCounter;

// Selection tallies: how many bins the policy routed to each codec.
// Const-folded to no-ops when ibis-obs is built without its `obs` feature.
static OBS_SELECT_WAH: LazyCounter = LazyCounter::new("codec.select.wah");
static OBS_SELECT_ROARING: LazyCounter = LazyCounter::new("codec.select.roaring");

mod sealed {
    pub trait Sealed {}
    impl Sealed for crate::wah::WahVec {}
    impl Sealed for crate::bbc::BbcVec {}
    impl Sealed for crate::roaring::RoaringVec {}
}

/// Identity of a bitmap codec — the unit of per-bin selection and the
/// stable wire tag written into store blob frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecId {
    /// 31-bit word-aligned hybrid run-length code (the paper's codec).
    Wah,
    /// Byte-aligned bitmap code.
    Bbc,
    /// Roaring-style 64Ki containers (array / bitset / runs).
    Roaring,
}

impl CodecId {
    /// The stable on-disk tag (`IBB3` frame header, v2 index payload).
    pub fn tag(self) -> u8 {
        match self {
            CodecId::Wah => 0,
            CodecId::Bbc => 1,
            CodecId::Roaring => 2,
        }
    }

    /// Inverse of [`CodecId::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<CodecId> {
        match tag {
            0 => Some(CodecId::Wah),
            1 => Some(CodecId::Bbc),
            2 => Some(CodecId::Roaring),
            _ => None,
        }
    }

    /// Human-readable name (bench reports, fsck messages).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Wah => "wah",
            CodecId::Bbc => "bbc",
            CodecId::Roaring => "roaring",
        }
    }
}

/// The sealed common surface of the three codecs. WAH is the interchange
/// form: every codec converts to and from it exactly (round-trip identity
/// is property-tested in `prop_codecs.rs`), which is what makes cross-codec
/// operations and the v2-compatible store format possible.
pub trait Codec: sealed::Sealed {
    /// This codec's identity.
    const ID: CodecId;
    /// Exact conversion from canonical WAH.
    fn from_wah(v: &WahVec) -> Self;
    /// Exact conversion to canonical WAH.
    fn to_wah(&self) -> WahVec;
    /// Number of bits.
    fn len_bits(&self) -> u64;
    /// Number of set bits.
    fn ones(&self) -> u64;
    /// At-rest size in bytes.
    fn bytes(&self) -> usize;
}

impl Codec for WahVec {
    const ID: CodecId = CodecId::Wah;
    fn from_wah(v: &WahVec) -> Self {
        v.clone()
    }
    fn to_wah(&self) -> WahVec {
        self.clone()
    }
    fn len_bits(&self) -> u64 {
        self.len()
    }
    fn ones(&self) -> u64 {
        self.count_ones()
    }
    fn bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl Codec for BbcVec {
    const ID: CodecId = CodecId::Bbc;
    fn from_wah(v: &WahVec) -> Self {
        BbcVec::from_bits(v.iter_bits())
    }
    fn to_wah(&self) -> WahVec {
        WahVec::from_bits(self.to_bools())
    }
    fn len_bits(&self) -> u64 {
        self.len()
    }
    fn ones(&self) -> u64 {
        self.count_ones()
    }
    fn bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl Codec for RoaringVec {
    const ID: CodecId = CodecId::Roaring;
    fn from_wah(v: &WahVec) -> Self {
        RoaringVec::from_wah(v)
    }
    fn to_wah(&self) -> WahVec {
        self.to_wah()
    }
    fn len_bits(&self) -> u64 {
        self.len()
    }
    fn ones(&self) -> u64 {
        self.count_ones()
    }
    fn bytes(&self) -> usize {
        self.size_bytes()
    }
}

/// Mean fill-run length below which WAH stops compressing well enough to
/// beat containers: a 64-bit mean run still gives WAH ~2× compression, but
/// the adaptive kernels' literal path starts dominating op time.
const WAH_MIN_MEAN_RUN: u64 = 64;
/// Compression ratio (WAH payload bits / logical bits) above which the
/// vector is literal-heavy and container forms win.
const WAH_MAX_COMPRESSION: f64 = 0.5;

/// Picks the codec for one bin from its cached [`WahStats`] — the per-bin
/// auto-selection policy:
///
/// * empty / all-zero bins stay **WAH** (two words, nothing to win);
/// * bins whose mean 1-run length is at least [`WAH_MIN_MEAN_RUN`] *and*
///   whose WAH encoding compresses to at most [`WAH_MAX_COMPRESSION`] of
///   the logical bits stay **WAH** — coherent data is WAH's home turf;
/// * everything else — scattered sparse bins (low-occupancy outer bins →
///   array containers) and dense noise (middle bins → bitset containers) —
///   goes to **Roaring**.
///
/// BBC is never auto-selected; see the module docs.
pub fn select_codec(stats: &WahStats, len_bits: u64) -> CodecId {
    if len_bits == 0 || stats.ones == 0 {
        OBS_SELECT_WAH.inc();
        return CodecId::Wah;
    }
    let compression = stats.words as f64 * 31.0 / len_bits as f64;
    if stats.mean_run_bits() >= WAH_MIN_MEAN_RUN && compression <= WAH_MAX_COMPRESSION {
        OBS_SELECT_WAH.inc();
        CodecId::Wah
    } else {
        OBS_SELECT_ROARING.inc();
        CodecId::Roaring
    }
}

/// A bitvector in whichever codec its bin selected — the runtime side of
/// the sealed [`Codec`] roof. Set operations live in `ops.rs`.
#[derive(Debug, Clone)]
pub enum CodecVec {
    /// WAH-coded.
    Wah(WahVec),
    /// BBC-coded.
    Bbc(BbcVec),
    /// Roaring-coded.
    Roaring(RoaringVec),
}

impl CodecVec {
    /// Converts a WAH vector into the codec [`select_codec`] picks from its
    /// cached stats. The conversion is exact; all-WAH selections are free.
    pub fn from_wah_auto(v: &WahVec) -> CodecVec {
        match select_codec(v.stats(), v.len()) {
            CodecId::Wah => CodecVec::Wah(v.clone()),
            CodecId::Roaring => CodecVec::Roaring(RoaringVec::from_wah(v)),
            // select_codec never picks BBC; explicit choices go through
            // `with_codec`.
            CodecId::Bbc => unreachable!("BBC is never auto-selected"),
        }
    }

    /// Owned variant of [`CodecVec::from_wah_auto`]: all-WAH selections
    /// move the vector instead of cloning (the batched-ingestion path,
    /// [`crate::MultiWahBuilder::finish_codecs_reset`]).
    pub fn from_wah_auto_owned(v: WahVec) -> CodecVec {
        match select_codec(v.stats(), v.len()) {
            CodecId::Wah => CodecVec::Wah(v),
            _ => CodecVec::Roaring(RoaringVec::from_wah(&v)),
        }
    }

    /// Converts a WAH vector into an explicitly chosen codec.
    pub fn with_codec(v: &WahVec, id: CodecId) -> CodecVec {
        match id {
            CodecId::Wah => CodecVec::Wah(v.clone()),
            CodecId::Bbc => CodecVec::Bbc(BbcVec::from_bits(v.iter_bits())),
            CodecId::Roaring => CodecVec::Roaring(RoaringVec::from_wah(v)),
        }
    }

    /// Which codec this vector is in.
    pub fn id(&self) -> CodecId {
        match self {
            CodecVec::Wah(_) => CodecId::Wah,
            CodecVec::Bbc(_) => CodecId::Bbc,
            CodecVec::Roaring(_) => CodecId::Roaring,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        match self {
            CodecVec::Wah(v) => v.len(),
            CodecVec::Bbc(v) => v.len(),
            CodecVec::Roaring(v) => v.len(),
        }
    }

    /// `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        match self {
            CodecVec::Wah(v) => v.count_ones(),
            CodecVec::Bbc(v) => v.count_ones(),
            CodecVec::Roaring(v) => v.count_ones(),
        }
    }

    /// At-rest size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            CodecVec::Wah(v) => v.size_bytes(),
            CodecVec::Bbc(v) => v.size_bytes(),
            CodecVec::Roaring(v) => v.size_bytes(),
        }
    }

    /// Exact conversion to canonical WAH (the interchange form).
    pub fn to_wah(&self) -> WahVec {
        match self {
            CodecVec::Wah(v) => v.clone(),
            CodecVec::Bbc(v) => WahVec::from_bits(v.to_bools()),
            CodecVec::Roaring(v) => v.to_wah(),
        }
    }

    /// Borrows the WAH payload when this vector is WAH-coded.
    pub fn as_wah(&self) -> Option<&WahVec> {
        match self {
            CodecVec::Wah(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the Roaring payload when this vector is Roaring-coded.
    pub fn as_roaring(&self) -> Option<&RoaringVec> {
        match self {
            CodecVec::Roaring(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wah_of(bits: impl IntoIterator<Item = bool>) -> WahVec {
        WahVec::from_bits(bits)
    }

    #[test]
    fn tags_roundtrip_and_unknown_rejected() {
        for id in [CodecId::Wah, CodecId::Bbc, CodecId::Roaring] {
            assert_eq!(CodecId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(CodecId::from_tag(3), None);
        assert_eq!(CodecId::from_tag(0xFF), None);
    }

    #[test]
    fn selection_policy_on_canonical_patterns() {
        let pick = |v: &WahVec| select_codec(v.stats(), v.len());
        // empty / all-zero / all-one: WAH
        assert_eq!(pick(&wah_of(std::iter::empty())), CodecId::Wah);
        assert_eq!(pick(&wah_of((0..100_000).map(|_| false))), CodecId::Wah);
        assert_eq!(pick(&wah_of((0..100_000).map(|_| true))), CodecId::Wah);
        // coherent runs (the sparse_runs bench pattern): WAH
        let runs = wah_of((0..1_000_000usize).map(|i| (i / 310) % 300 == 0));
        assert_eq!(pick(&runs), CodecId::Wah);
        // scattered sparse (sparse_random): Roaring arrays
        let scattered = wah_of((0..1_000_000u32).map(|i| i.wrapping_mul(2_654_435_761) % 100 == 0));
        assert_eq!(pick(&scattered), CodecId::Roaring);
        // dense noise (dense30_random): Roaring bitsets
        let dense = wah_of((0..1_000_000u32).map(|i| i.wrapping_mul(2_654_435_761) % 10 < 3));
        assert_eq!(pick(&dense), CodecId::Roaring);
    }

    #[test]
    fn from_wah_auto_is_exact() {
        for bits in [
            (0..200_000usize)
                .map(|i| (i / 310) % 300 == 0)
                .collect::<Vec<_>>(),
            (0..200_000usize).map(|i| i % 101 == 0).collect(),
            (0..200_000usize).map(|i| i % 3 == 0).collect(),
            Vec::new(),
        ] {
            let w = wah_of(bits.iter().copied());
            let cv = CodecVec::from_wah_auto(&w);
            assert_eq!(cv.len(), w.len());
            assert_eq!(cv.count_ones(), w.count_ones());
            assert_eq!(cv.to_wah(), w);
        }
    }

    #[test]
    fn with_codec_roundtrips_every_codec() {
        let bits: Vec<bool> = (0..70_000).map(|i| i % 7 < 2).collect();
        let w = wah_of(bits.iter().copied());
        for id in [CodecId::Wah, CodecId::Bbc, CodecId::Roaring] {
            let cv = CodecVec::with_codec(&w, id);
            assert_eq!(cv.id(), id);
            assert_eq!(cv.to_wah(), w, "{}", id.name());
        }
    }

    #[test]
    fn sealed_trait_surface_agrees() {
        fn probe<C: Codec>(v: &C, w: &WahVec) {
            assert!(CodecId::from_tag(C::ID.tag()) == Some(C::ID));
            assert_eq!(v.len_bits(), w.len());
            assert_eq!(v.ones(), w.count_ones());
            assert!(v.bytes() > 0);
            assert_eq!(v.to_wah(), *w);
        }
        let w = wah_of((0..100_000).map(|i| i % 97 == 0));
        probe(&WahVec::from_wah(&w), &w);
        probe(&BbcVec::from_wah(&w), &w);
        probe(&RoaringVec::from_wah(&w), &w);
    }
}
