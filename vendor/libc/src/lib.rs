//! Minimal libc shim: just the thread-CPU clock surface used by
//! `ibis-insitu::machine`. The declarations match the Linux/glibc ABI for
//! 64-bit targets, which is the only environment this workspace targets.
#![no_std]
#![allow(non_camel_case_types)]

/// POSIX clock identifier.
pub type clockid_t = i32;
/// Seconds component of [`timespec`].
pub type time_t = i64;
/// Nanoseconds component of [`timespec`].
pub type c_long = i64;

/// `struct timespec` as defined by the 64-bit Linux ABI.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 1e9)`.
    pub tv_nsec: c_long,
}

/// Per-thread CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    /// Reads `clk_id` into `tp`; returns 0 on success.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> i32;
}
