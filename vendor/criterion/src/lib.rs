//! Minimal `criterion` shim: genuine wall-clock measurement without the
//! statistics machinery. Each benchmark auto-calibrates an iteration count
//! to fill the group's measurement time, reports the per-iteration mean and
//! a min/max spread over samples, and prints one line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Mean seconds per iteration over all samples.
    pub mean_s: f64,
    /// Fastest sample's seconds per iteration.
    pub min_s: f64,
    /// Slowest sample's seconds per iteration.
    pub max_s: f64,
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored by this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (ss, mt) = (self.sample_size, self.measurement_time);
        run_bench("", id, ss, mt, f);
        self
    }

    /// No-op hook for summary output parity with upstream.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl BenchId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(
            &self.name,
            &id.render(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl BenchId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(
            &self.name,
            &id.render(),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Things usable as a benchmark identifier.
pub trait BenchId {
    /// The display string for reports.
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Identifier shown as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.rendered.clone()
    }
}

/// Passed to benchmark closures; `iter` does the measuring.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count, one sample per call
    /// into the benchmark closure body.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let dt = t0.elapsed();
        self.samples
            .push(dt.as_secs_f64() / self.iters_per_sample as f64);
    }
}

fn run_bench(
    group: &str,
    id: &str,
    sample_size: usize,
    total: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    // Calibration: find an iteration count so one sample takes roughly
    // total / sample_size.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut calib);
    let one = calib.samples.first().copied().unwrap_or(1e-9).max(1e-9);
    let per_sample = (total.as_secs_f64() / sample_size as f64).max(1e-4);
    let iters = ((per_sample / one).round() as u64).clamp(1, 1_000_000_000);

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let s = summarize(&b.samples);
    println!(
        "bench: {label:<48} mean {:>12}  (min {}, max {}, {} iters x {} samples)",
        fmt_time(s.mean_s),
        fmt_time(s.min_s),
        fmt_time(s.max_s),
        iters,
        sample_size,
    );
}

fn summarize(samples: &[f64]) -> Sampled {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0, f64::max);
    Sampled {
        mean_s: mean,
        min_s: min,
        max_s: max,
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
