//! Row-order sweep: order × dataset × codec, persisted to
//! `BENCH_reorder.json` at the repository root. For each simulation field
//! (Heat3D temperature, mini-LULESH velocity, Ocean surface field) every
//! [`RowOrder`] builds the reordered index, every codec reports bytes for
//! the resulting bins, and the serving-side kernels are timed: the
//! value-range OR (the core of a range/count query — order-invariant, no
//! inverse mapping needed), the region AND against a stored-order region
//! bitmap, and the inverse mapping back to original row ids (the
//! translation a selection query pays, reported separately so the cost is
//! visible rather than buried).
//!
//! Every timed point is first asserted byte-identical to the
//! identity-order oracle (mapped through the inverse permutation), and the
//! issue's acceptance criterion — some non-identity order achieving ≥15%
//! smaller bytes at ≤10% value-query latency regression on a coherent
//! pattern — is asserted in-process and recorded in the report.
//!
//! `IBIS_ORDER_SMOKE=1` shrinks the grids and writes to
//! `target/BENCH_reorder.smoke.json` instead (latency ratios are too noisy
//! to assert at smoke sizes; the size criterion and all identity checks
//! still run).

use ibis_core::{BbcVec, Binner, BitmapIndex, Codec, CodecVec, RoaringVec, RowOrder, WahVec};
use ibis_datagen::{
    Heat3D, Heat3DConfig, LuleshConfig, MiniLulesh, OceanConfig, OceanModel, Simulation,
};
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per iteration (same calibration scheme as the codec and
/// kernel sweeps).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

/// One dataset of the sweep: a simulation field plus its grid shape.
struct Dataset {
    name: &'static str,
    dims: Vec<usize>,
    data: Vec<f64>,
}

/// Steps a simulation `steps` times and keeps field `field` of the last
/// output (mid-run states have developed structure; step 0 is mostly the
/// initial condition).
fn evolve(mut sim: impl Simulation, steps: usize, field: usize) -> (Vec<usize>, Vec<f64>) {
    let dims = sim
        .grid_dims()
        .expect("bench simulations expose grid dims")
        .to_vec();
    let mut out = sim.step();
    for _ in 1..steps {
        out = sim.step();
    }
    (dims, out.fields.swap_remove(field).data)
}

fn datasets(smoke: bool) -> Vec<Dataset> {
    let heat = Heat3DConfig {
        nx: if smoke { 12 } else { 40 },
        ny: if smoke { 12 } else { 40 },
        nz: if smoke { 12 } else { 40 },
        ..Heat3DConfig::tiny()
    };
    let (hdims, hdata) = evolve(Heat3D::new(heat), 5, 0);
    let lulesh = LuleshConfig {
        edge: if smoke { 6 } else { 20 },
        ..LuleshConfig::tiny()
    };
    // field 6 = velocity_x: node-centered, spatially coherent blast wave
    let (ldims, ldata) = evolve(MiniLulesh::new(lulesh), 4, 6);
    let ocean = if smoke {
        OceanConfig::tiny()
    } else {
        OceanConfig {
            nlon: 96,
            nlat: 64,
            ndepth: 8,
            ..OceanConfig::tiny()
        }
    };
    let (odims, odata) = evolve(OceanModel::new(ocean), 3, 0);
    vec![
        Dataset {
            name: "heat3d",
            dims: hdims,
            data: hdata,
        },
        Dataset {
            name: "lulesh",
            dims: ldims,
            data: ldata,
        },
        Dataset {
            name: "ocean",
            dims: odims,
            data: odata,
        },
    ]
}

/// One timed/sized point of the sweep.
struct Sample {
    dataset: &'static str,
    order: &'static str,
    codec: &'static str,
    bytes: usize,
    /// Value-range OR + count (the asserted query kernel); `None` for
    /// codecs without a full OR (BBC is count-only).
    value_or_s: Option<f64>,
    /// Region AND against a stored-order region bitmap (WAH only).
    region_and_s: Option<f64>,
    /// Inverse mapping of the value selection back to original row ids
    /// (WAH only; zero-cost under identity, reported for transparency).
    map_back_s: Option<f64>,
}

fn find<'a>(samples: &'a [Sample], dataset: &str, order: &str, codec: &str) -> &'a Sample {
    samples
        .iter()
        .find(|s| s.dataset == dataset && s.order == order && s.codec == codec)
        .expect("sample present")
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::var("IBIS_ORDER_SMOKE").is_ok_and(|v| v == "1");
    let mut samples: Vec<Sample> = Vec::new();
    let mut elements = String::new();
    let sets = datasets(smoke);
    for (di, set) in sets.iter().enumerate() {
        let n = set.data.len();
        elements.push_str(&format!(
            "    \"{}\": {n}{}\n",
            set.name,
            if di + 1 == sets.len() { "" } else { "," }
        ));
        let binner = Binner::fit(&set.data, 64);
        let identity = BitmapIndex::build(&set.data, binner.clone());
        let nbins = identity.nbins();
        // the query shapes: a middle value-range OR and a contiguous
        // original-row slab (a slowest-axis region slab)
        let (blo, bhi) = (nbins / 3, (2 * nbins) / 3 + 1);
        let (r0, r1) = (n as u64 / 5, (2 * n as u64) / 5);
        let region_orig = WahVec::from_ones(&(r0..r1).collect::<Vec<u64>>(), n as u64);
        let oracle_or = (blo..bhi).fold(WahVec::zeros(n as u64), |acc, b| acc.or(identity.bin(b)));
        let oracle_region_count = oracle_or.and_count(&region_orig);

        for order in RowOrder::ALL {
            let perm = order.permutation(&set.dims, &binner, &set.data);
            let idx = match &perm {
                Some(p) => BitmapIndex::build_permuted(&set.data, binner.clone(), p),
                None => identity.clone(),
            };
            // -- identity gate: every stored bin, mapped back through the
            // inverse permutation, must equal the identity-order bin --
            if let Some(p) = &perm {
                for b in 0..nbins {
                    assert_eq!(
                        &p.map_selection_to_original(idx.bin(b)),
                        identity.bin(b),
                        "{}/{}: bin {b} diverged from identity",
                        set.name,
                        order.name()
                    );
                }
            }
            // stored-order region bitmap (built once per order, as the
            // engine would cache it per store)
            let region = match &perm {
                Some(p) => {
                    let mut ones: Vec<u64> = (r0..r1).map(|r| p.inv()[r as usize] as u64).collect();
                    ones.sort_unstable();
                    WahVec::from_ones(&ones, n as u64)
                }
                None => region_orig.clone(),
            };
            let stored_or = (blo..bhi).fold(WahVec::zeros(n as u64), |acc, b| acc.or(idx.bin(b)));
            assert_eq!(stored_or.count_ones(), oracle_or.count_ones());
            if let Some(p) = &perm {
                assert_eq!(p.map_selection_to_original(&stored_or), oracle_or);
            }
            assert_eq!(
                stored_or.and_count(&region),
                oracle_region_count,
                "{}/{}: region AND count diverged",
                set.name,
                order.name()
            );

            // per-codec encodings of the stored bins
            let wah: Vec<WahVec> = (0..nbins).map(|b| idx.bin(b).clone()).collect();
            let roaring: Vec<RoaringVec> = wah.iter().map(RoaringVec::from_wah).collect();
            let auto: Vec<CodecVec> = wah.iter().map(CodecVec::from_wah_auto).collect();
            let bbc_bytes: usize = wah.iter().map(|v| BbcVec::from_wah(v).size_bytes()).sum();
            // cross-codec identity on one representative OR
            let want = wah[blo].or(&wah[blo + 1]);
            assert_eq!(
                roaring[blo].or(&roaring[blo + 1]).to_wah(),
                want,
                "roaring OR diverged"
            );
            assert_eq!(
                auto[blo].or(&auto[blo + 1]).to_wah(),
                want,
                "auto OR diverged"
            );

            let wah_or = measure(|| {
                (blo..bhi)
                    .fold(WahVec::zeros(n as u64), |acc, b| acc.or(&wah[b]))
                    .count_ones()
            });
            let roaring_or = measure(|| {
                let first = roaring[blo].clone();
                (blo + 1..bhi)
                    .fold(first, |acc, b| acc.or(&roaring[b]))
                    .to_wah()
                    .count_ones()
            });
            let auto_or = measure(|| {
                let first = auto[blo].clone();
                (blo + 1..bhi)
                    .fold(first, |acc, b| acc.or(&auto[b]))
                    .to_wah()
                    .count_ones()
            });
            let region_and = measure(|| stored_or.and_count(&region));
            let map_back = perm
                .as_ref()
                .map(|p| measure(|| p.map_selection_to_original(&stored_or)));

            let mut push = |codec: &'static str,
                            bytes: usize,
                            value_or_s: Option<f64>,
                            region_and_s: Option<f64>,
                            map_back_s: Option<f64>| {
                if let Some(t) = value_or_s {
                    println!(
                        "reorder: {}/{}/{codec:<8} {bytes:>9} B  value_or {:>9.3} us",
                        set.name,
                        order.name(),
                        t * 1e6
                    );
                }
                samples.push(Sample {
                    dataset: set.name,
                    order: order.name(),
                    codec,
                    bytes,
                    value_or_s,
                    region_and_s,
                    map_back_s,
                });
            };
            push(
                "wah",
                wah.iter().map(WahVec::size_bytes).sum(),
                Some(wah_or),
                Some(region_and),
                map_back,
            );
            push(
                "roaring",
                roaring.iter().map(RoaringVec::size_bytes).sum(),
                Some(roaring_or),
                None,
                None,
            );
            push(
                "auto",
                auto.iter().map(CodecVec::size_bytes).sum(),
                Some(auto_or),
                None,
                None,
            );
            push("bbc", bbc_bytes, None, None, None);
        }
        println!("reorder: {} identity checks passed", set.name);
    }
    write_json(&samples, &sets, &elements, smoke);
}

fn write_json(samples: &[Sample], sets: &[Dataset], elements: &str, smoke: bool) {
    const CODECS: [&str; 4] = ["wah", "roaring", "auto", "bbc"];
    let orders: Vec<&str> = RowOrder::ALL.iter().map(|o| o.name()).collect();
    let mut out = format!(
        "{{\n  \"smoke\": {smoke},\n  \"identity_checked\": true,\n  \"elements\": {{\n{elements}  }},\n  \"samples\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |t| format!("{t:e}"));
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"order\": \"{}\", \"codec\": \"{}\", \
             \"bytes\": {}, \"value_or_s\": {}, \"region_and_s\": {}, \"map_back_s\": {}}}{}\n",
            s.dataset,
            s.order,
            s.codec,
            s.bytes,
            opt(s.value_or_s),
            opt(s.region_and_s),
            opt(s.map_back_s),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }

    // size and latency of every non-identity point, relative to the same
    // codec under identity order (< 1.0 means the reorder wins)
    out.push_str("  ],\n  \"vs_identity\": {\n");
    let mut winners: Vec<(String, f64, f64)> = Vec::new();
    for (di, set) in sets.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", set.name));
        let non_identity: Vec<&&str> = orders.iter().filter(|o| **o != "identity").collect();
        for (oi, order) in non_identity.iter().enumerate() {
            out.push_str(&format!("      \"{order}\": {{"));
            for (ci, codec) in CODECS.iter().enumerate() {
                let base = find(samples, set.name, "identity", codec);
                let this = find(samples, set.name, order, codec);
                let size_ratio = this.bytes as f64 / base.bytes as f64;
                let lat_ratio = match (this.value_or_s, base.value_or_s) {
                    (Some(t), Some(b)) => Some(t / b),
                    _ => None,
                };
                println!(
                    "reorder: {:<7} {:<11} {codec:<8} size x{size_ratio:.3} latency x{}",
                    set.name,
                    order,
                    lat_ratio.map_or("n/a".into(), |r| format!("{r:.3}")),
                );
                if let Some(lr) = lat_ratio {
                    winners.push((format!("{}/{}/{}", set.name, order, codec), size_ratio, lr));
                }
                out.push_str(&format!(
                    "\"{codec}\": {{\"size_ratio\": {size_ratio:.4}, \"latency_ratio\": {}}}{}",
                    lat_ratio.map_or("null".to_string(), |r| format!("{r:.4}")),
                    if ci + 1 == CODECS.len() { "" } else { ", " }
                ));
            }
            out.push_str(&format!(
                "}}{}\n",
                if oi + 1 == non_identity.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "    }}{}\n",
            if di + 1 == sets.len() { "" } else { "," }
        ));
    }

    // -- the issue's acceptance criterion: some non-identity order earns
    // ≥15% smaller bytes at ≤10% value-query latency regression --
    let best = winners
        .iter()
        .filter(|(_, _, lr)| *lr <= 1.10)
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one point with measurable latency");
    let met = best.1 <= 0.85;
    println!(
        "reorder: best size ratio at <=10% latency regression: {} (size x{:.3}, latency x{:.3})",
        best.0, best.1, best.2
    );
    assert!(
        met,
        "no non-identity order achieved >=15% smaller bytes within the latency budget \
         (best: {} size x{:.3} latency x{:.3})",
        best.0, best.1, best.2
    );
    if !smoke {
        // latency ratios at smoke sizes are noise; at full size the winner
        // must hold both halves of the criterion
        assert!(best.2 <= 1.10, "winner exceeded the latency budget");
    }
    out.push_str(&format!(
        "  }},\n  \"criterion\": {{\"best_point\": \"{}\", \"size_ratio\": {:.4}, \
         \"latency_ratio\": {:.4}, \"size_win_15pct_within_latency_10pct\": {met}}}\n}}\n",
        best.0, best.1, best.2
    ));

    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_reorder.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reorder.json")
    };
    std::fs::write(path, out).expect("write BENCH_reorder report");
    println!("reorder: wrote {path}");
}
