//! Correlation *queries* over data subsets — the interactive framework the
//! paper's Section 4.1 describes as its own prior work and builds the miner
//! on: "users can submit different SQL queries to specify the data subsets
//! (either value-based or dimension-based subsets) they are interested in
//! for correlation analysis".
//!
//! A [`SubsetQuery`] combines an optional value predicate with an optional
//! spatial predicate (a contiguous position range — a Z-order block when the
//! data was laid out with [`ibis_core::ZOrderLayout`]); evaluation yields a
//! compressed selection vector, and [`correlation_query`] computes the
//! relationship metrics of two variables restricted to the selected
//! sub-population — all from bitmaps.
//!
//! This is the one surface a *user* drives directly, so it is total:
//! malformed input (an out-of-range region, a NaN bound, mismatched
//! variables) is a typed [`QueryError`], never a panic, and inverted or
//! empty value intervals are well-defined empty selections.
//!
//! # The range planner
//!
//! A `value_range` predicate touches a contiguous span of bins; which bins
//! it touches dominates query cost, so [`plan_value_range`] chooses among
//! three strategies that produce byte-identical selections:
//!
//! * **`OrBins`** — OR the touched bins directly (the naive fan-in, always
//!   correct, optimal for narrow ranges).
//! * **`Complement`** — OR the *untouched* bins and complement the result
//!   (`not()`): wide ranges touch most bins, so the smaller side is the
//!   bins outside the span. Valid because an index built from data
//!   partitions positions across bins.
//! * **`MultiLevel`** — cover interior bins with their high-level group
//!   vectors ([`MultiLevelIndex`]) and only the ragged edges with low
//!   bins: each high vector is the precomputed OR of its children, so wide
//!   spans collapse to a handful of operands.
//!
//! The planner costs each strategy by the bytes it would read under each
//! bin's at-rest codec plan ([`BitmapIndex::bin_cost_bytes`]) — a WAH bin
//! costs its compressed words, a Roaring bin its container bytes — and
//! picks the cheapest; [`execute_range_plan`] runs any of them.

use crate::aggregate::{self, Estimate};
use crate::entropy::{conditional_entropy_from_counts, mutual_information_from_counts};
use ibis_core::{BitmapIndex, DenseBits, MultiLevelIndex, PreparedOperand, RowPermutation, WahVec};
use ibis_obs::LazyCounter;
use std::fmt;
use std::ops::Range;

// Query-layer metrics (family `query`, see DESIGN.md §6g). All no-ops
// without `obs`.
static OBS_PLAN_OR: LazyCounter = LazyCounter::new("query.plan.or_bins");
static OBS_PLAN_COMPLEMENT: LazyCounter = LazyCounter::new("query.plan.complement");
static OBS_PLAN_MULTILEVEL: LazyCounter = LazyCounter::new("query.plan.multilevel");
static OBS_PLAN_EMPTY: LazyCounter = LazyCounter::new("query.plan.empty");
static OBS_JOINT_PREPARED: LazyCounter = LazyCounter::new("query.joint.prepared");
static OBS_JOINT_COMPRESSED: LazyCounter = LazyCounter::new("query.joint.compressed");
// Region predicates evaluated through an inverse permutation (family
// `reorder`, see DESIGN.md §6j).
static OBS_REGION_MAPPED: LazyCounter = LazyCounter::new("reorder.query.region_mapped");

/// A malformed subset or correlation query. Every variant is `Clone +
/// PartialEq` so query failures are comparable across runs, mirroring
/// the pipeline's error discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A value-range bound is NaN — meaningless, not empty.
    NanBound {
        /// The lower bound as given.
        lo: f64,
        /// The upper bound as given.
        hi: f64,
    },
    /// A position range does not fit the indexed domain (or is inverted).
    RegionOutOfRange {
        /// Requested start position.
        start: u64,
        /// Requested end position (exclusive).
        end: u64,
        /// Number of indexed positions.
        len: u64,
    },
    /// The two variables of a correlation query — or an index and the
    /// row permutation applied to it — cover different element counts
    /// and cannot be joined.
    LengthMismatch {
        /// Elements of variable A.
        len_a: u64,
        /// Elements of variable B.
        len_b: u64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NanBound { lo, hi } => {
                write!(f, "value range [{lo}, {hi}) has a NaN bound")
            }
            QueryError::RegionOutOfRange { start, end, len } => {
                write!(f, "region {start}..{end} out of range for {len} positions")
            }
            QueryError::LengthMismatch { len_a, len_b } => {
                write!(f, "variables cover {len_a} vs {len_b} elements")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ibis_core::RangeQueryError> for QueryError {
    fn from(e: ibis_core::RangeQueryError) -> Self {
        match e {
            ibis_core::RangeQueryError::NanBound { lo, hi } => QueryError::NanBound { lo, hi },
        }
    }
}

/// A subset specification over one variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubsetQuery {
    /// Keep elements whose value lies in `[lo, hi)` (bin-granular: a bin is
    /// included when its range intersects the interval, the usual bitmap
    /// index semantics). Inverted (`lo > hi`) and empty (`lo == hi`)
    /// intervals select nothing; a NaN bound is a [`QueryError::NanBound`].
    pub value_range: Option<(f64, f64)>,
    /// Keep elements at these positions (half-open; a spatial block under a
    /// Z-order layout). Must satisfy `start <= end <= len`.
    pub position_range: Option<Range<u64>>,
}

impl SubsetQuery {
    /// Matches everything.
    pub fn all() -> Self {
        SubsetQuery::default()
    }

    /// Value-based subset (`WHERE lo <= v AND v < hi`).
    pub fn value(lo: f64, hi: f64) -> Self {
        SubsetQuery {
            value_range: Some((lo, hi)),
            position_range: None,
        }
    }

    /// Dimension-based subset (a contiguous position / Z-order block).
    pub fn region(range: Range<u64>) -> Self {
        SubsetQuery {
            value_range: None,
            position_range: Some(range),
        }
    }

    /// Restricts this query to a value range as well.
    pub fn with_value(mut self, lo: f64, hi: f64) -> Self {
        self.value_range = Some((lo, hi));
        self
    }

    /// Restricts this query to a position range as well.
    pub fn with_region(mut self, range: Range<u64>) -> Self {
        self.position_range = Some(range);
        self
    }

    /// Evaluates to a selection vector over the index's positions, planning
    /// the value predicate with the single-level strategies.
    pub fn evaluate(&self, index: &BitmapIndex) -> Result<WahVec, QueryError> {
        self.evaluate_planned(index, None)
    }

    /// Evaluates against a two-level index: wide value ranges additionally
    /// consider the high-level covering strategy.
    pub fn evaluate_ml(&self, index: &MultiLevelIndex) -> Result<WahVec, QueryError> {
        self.evaluate_planned(index.low(), Some(index))
    }

    /// [`SubsetQuery::evaluate`] against an index built under a row
    /// reordering: value predicates are order-invariant, and the position
    /// predicate — still expressed in *original* row ids — is mapped
    /// through the inverse permutation before intersecting, so the
    /// selection covers exactly the rows the identity-order index would
    /// select (at their stored positions). Map it back with
    /// [`RowPermutation::map_selection_to_original`].
    pub fn evaluate_mapped(
        &self,
        index: &BitmapIndex,
        perm: &RowPermutation,
    ) -> Result<WahVec, QueryError> {
        self.evaluate_with(index, None, Some(perm))
    }

    /// [`SubsetQuery::evaluate_ml`] under a row reordering (see
    /// [`SubsetQuery::evaluate_mapped`]).
    pub fn evaluate_ml_mapped(
        &self,
        index: &MultiLevelIndex,
        perm: &RowPermutation,
    ) -> Result<WahVec, QueryError> {
        self.evaluate_with(index.low(), Some(index), Some(perm))
    }

    fn evaluate_planned(
        &self,
        index: &BitmapIndex,
        ml: Option<&MultiLevelIndex>,
    ) -> Result<WahVec, QueryError> {
        self.evaluate_with(index, ml, None)
    }

    fn evaluate_with(
        &self,
        index: &BitmapIndex,
        ml: Option<&MultiLevelIndex>,
        perm: Option<&RowPermutation>,
    ) -> Result<WahVec, QueryError> {
        let n = index.len();
        if let Some(p) = perm {
            if p.len() as u64 != n {
                return Err(QueryError::LengthMismatch {
                    len_a: n,
                    len_b: p.len() as u64,
                });
            }
        }
        let mut sel = match self.value_range {
            Some((lo, hi)) => {
                let plan = plan_value_range(index, ml, lo, hi)?;
                execute_range_plan(index, ml, &plan)
            }
            None => WahVec::ones(n),
        };
        if let Some(range) = &self.position_range {
            let mask = match perm {
                None => region_mask(range.clone(), n)?,
                Some(p) => {
                    OBS_REGION_MAPPED.inc();
                    region_mask_mapped(range.clone(), p)?
                }
            };
            sel = sel.and(&mask);
        }
        Ok(sel)
    }
}

/// A compressed mask with ones exactly in `range`, or a typed error when
/// the range is inverted or exceeds `len`.
pub fn region_mask(range: Range<u64>, len: u64) -> Result<WahVec, QueryError> {
    if range.start > range.end || range.end > len {
        return Err(QueryError::RegionOutOfRange {
            start: range.start,
            end: range.end,
            len,
        });
    }
    let mut b = ibis_core::WahBuilder::new();
    b.append_run(false, range.start);
    b.append_run(true, range.end - range.start);
    b.append_run(false, len - range.end);
    Ok(b.finish())
}

/// [`region_mask`] under a row reordering: `range` names *original* row
/// ids, the returned mask has ones at their *stored* positions
/// (`perm.inv()[i]` for each `i` in the range). The scattered positions
/// are sorted before building, so the mask is canonical; cost is
/// O(range length · log) instead of `region_mask`'s O(1) fills — the
/// price of querying a reordered index, measured by the `reorder` bench.
pub fn region_mask_mapped(range: Range<u64>, perm: &RowPermutation) -> Result<WahVec, QueryError> {
    let len = perm.len() as u64;
    if range.start > range.end || range.end > len {
        return Err(QueryError::RegionOutOfRange {
            start: range.start,
            end: range.end,
            len,
        });
    }
    let mut ones: Vec<u64> = perm.inv()[range.start as usize..range.end as usize]
        .iter()
        .map(|&s| s as u64)
        .collect();
    ones.sort_unstable();
    Ok(WahVec::from_ones(&ones, len))
}

// ---------------------------------------------------------------------------
// The value-range planner
// ---------------------------------------------------------------------------

/// How a `value_range` predicate will be evaluated. All strategies yield
/// byte-identical selections; they differ only in which compressed words
/// they read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangePlan {
    /// The interval selects nothing (inverted or empty).
    Empty,
    /// OR the touched bins `lo..=hi` directly.
    OrBins {
        /// First touched bin.
        lo: usize,
        /// Last touched bin (inclusive).
        hi: usize,
    },
    /// OR the bins *outside* `lo..=hi`, then complement.
    Complement {
        /// First touched bin.
        lo: usize,
        /// Last touched bin (inclusive).
        hi: usize,
    },
    /// Cover interior bins with high-level group vectors, edges with low
    /// bins.
    MultiLevel {
        /// High bins whose children all lie inside the span.
        high: Vec<usize>,
        /// Low bins inside the span not covered by `high`.
        low_edges: Vec<usize>,
    },
}

/// Estimated read cost of a set of bins, in bytes under each bin's
/// at-rest codec ([`BitmapIndex::bin_cost_bytes`]) — the planner's cost
/// unit. For an all-WAH index this is exactly `4 ×` the old
/// compressed-word count, so relative strategy orderings are preserved.
fn cost_of<I: IntoIterator<Item = usize>>(index: &BitmapIndex, bins: I) -> u64 {
    bins.into_iter().map(|b| index.bin_cost_bytes(b)).sum()
}

/// Chooses the cheapest strategy for a `[lo, hi)` value query. NaN bounds
/// are rejected; inverted and empty intervals plan to [`RangePlan::Empty`].
///
/// Strategy costs are measured in bytes read under each bin's at-rest
/// codec. The complement trick is only considered when the index
/// partitions positions across bins (true for any index built from
/// data), since `OR(outside).not() == OR(inside)` needs every position
/// set in exactly one bin.
pub fn plan_value_range(
    index: &BitmapIndex,
    ml: Option<&MultiLevelIndex>,
    lo: f64,
    hi: f64,
) -> Result<RangePlan, QueryError> {
    if lo.is_nan() || hi.is_nan() {
        return Err(QueryError::NanBound { lo, hi });
    }
    let Some((b0, b1)) = index.bin_span(lo, hi) else {
        OBS_PLAN_EMPTY.inc();
        return Ok(RangePlan::Empty);
    };
    let inside = cost_of(index, b0..=b1);
    let mut best_cost = inside;
    let mut best = RangePlan::OrBins { lo: b0, hi: b1 };

    // Complement: valid only when bins partition the positions.
    let partitions = index.counts().iter().sum::<u64>() == index.len();
    if partitions {
        let outside = cost_of(index, (0..b0).chain(b1 + 1..index.nbins()));
        // The complement pass re-reads its OR result once; weight it 3/2.
        let cost = outside + outside / 2;
        if cost < best_cost {
            best_cost = cost;
            best = RangePlan::Complement { lo: b0, hi: b1 };
        }
    }

    if let Some(ml) = ml {
        let mut high = Vec::new();
        let mut low_edges = Vec::new();
        let mut cost = 0u64;
        for h in 0..ml.high().nbins() {
            let ch = ml.children(h);
            if ch.start > b1 || ch.end <= b0 {
                continue; // group entirely outside the span
            }
            if ch.start >= b0 && ch.end <= b1 + 1 {
                cost += ml.high().bin_cost_bytes(h);
                high.push(h);
            } else {
                for b in ch.clone() {
                    if (b0..=b1).contains(&b) {
                        cost += index.bin_cost_bytes(b);
                        low_edges.push(b);
                    }
                }
            }
        }
        if cost < best_cost && !high.is_empty() {
            best = RangePlan::MultiLevel { high, low_edges };
        }
    }

    match &best {
        RangePlan::OrBins { .. } => OBS_PLAN_OR.inc(),
        RangePlan::Complement { .. } => OBS_PLAN_COMPLEMENT.inc(),
        RangePlan::MultiLevel { .. } => OBS_PLAN_MULTILEVEL.inc(),
        RangePlan::Empty => {}
    }
    Ok(best)
}

/// Runs a plan produced by [`plan_value_range`] against the same index.
/// Every strategy returns the canonical compressed selection — byte-
/// identical across strategies (property-tested and asserted in-bench).
pub fn execute_range_plan(
    index: &BitmapIndex,
    ml: Option<&MultiLevelIndex>,
    plan: &RangePlan,
) -> WahVec {
    let n = index.len();
    let nonempty = |v: WahVec| if v.is_empty() { WahVec::zeros(n) } else { v };
    match plan {
        RangePlan::Empty => WahVec::zeros(n),
        RangePlan::OrBins { lo, hi } => index.query_bins(*lo..=*hi),
        RangePlan::Complement { lo, hi } => {
            let outside = index
                .bins()
                .iter()
                .enumerate()
                .filter(|(b, _)| b < lo || b > hi)
                .map(|(_, v)| v);
            nonempty(WahVec::or_many(outside)).not()
        }
        RangePlan::MultiLevel { high, low_edges } => {
            let operands = high
                .iter()
                .filter_map(|&h| ml.map(|ml| ml.high().bin(h)))
                .chain(low_edges.iter().map(|&b| index.bin(b)));
            nonempty(WahVec::or_many(operands))
        }
    }
}

/// The answer to a correlation query over two variables.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationAnswer {
    /// Elements in the combined selection.
    pub selected: u64,
    /// Mutual information (bits) of the two variables within the selection;
    /// `0.0` for an empty selection.
    pub mutual_information: f64,
    /// Conditional entropy `H(A|B)` within the selection; `0.0` for an
    /// empty selection.
    pub conditional_entropy: f64,
    /// Approximate Pearson correlation (bin midpoints); `None` when a
    /// variable is constant within the selection.
    pub pearson: Option<f64>,
    /// Approximate mean of variable A within the selection.
    pub mean_a: Option<Estimate>,
    /// Approximate mean of variable B within the selection.
    pub mean_b: Option<Estimate>,
}

/// Joint `(bin_a, bin_b)` counts restricted to a selection, preparing the
/// selection once: above the density cutover the selection is decoded a
/// single time and each `a`-row is masked into a reused dense scratch
/// buffer (`O(row words + n/64)` per row), instead of re-decoding the
/// selection for every `a.bin(j).and(&sel)` as the naive loop does.
pub fn joint_counts_selected(a: &BitmapIndex, b: &BitmapIndex, sel: &WahVec) -> Vec<u64> {
    let nb = b.nbins();
    let mut joint = vec![0u64; a.nbins() * nb];
    if sel.count_ones() == 0 {
        return joint;
    }
    match sel.prepare() {
        PreparedOperand::Dense { bits, .. } => {
            OBS_JOINT_PREPARED.inc();
            let mut masked = DenseBits::zeros(sel.len());
            for j in 0..a.nbins() {
                if a.counts()[j] == 0 {
                    continue;
                }
                bits.and_wah_into(a.bin(j), &mut masked);
                if masked.count_ones() == 0 {
                    continue;
                }
                for (k, slot) in joint[j * nb..(j + 1) * nb].iter_mut().enumerate() {
                    if b.counts()[k] != 0 {
                        *slot = masked.and_count_wah(b.bin(k));
                    }
                }
            }
        }
        PreparedOperand::Compressed(sel) => {
            // A sparse selection stays cheap on the compressed path: the
            // per-row AND reads only the selection's few words.
            OBS_JOINT_COMPRESSED.inc();
            fill_joint_naive(a, b, sel, &mut joint);
        }
    }
    joint
}

/// The per-pair re-decode reference loop: `a.bin(j).and(&sel)` for every
/// row, exactly as the pre-planner implementation computed it. Kept
/// callable as the oracle and baseline the prepared loop is benchmarked
/// and property-tested against (mirroring `BitmapIndex::build_scalar`).
pub fn joint_counts_selected_naive(a: &BitmapIndex, b: &BitmapIndex, sel: &WahVec) -> Vec<u64> {
    let mut joint = vec![0u64; a.nbins() * b.nbins()];
    if sel.count_ones() > 0 {
        fill_joint_naive(a, b, sel, &mut joint);
    }
    joint
}

fn fill_joint_naive(a: &BitmapIndex, b: &BitmapIndex, sel: &WahVec, joint: &mut [u64]) {
    let nb = b.nbins();
    for j in 0..a.nbins() {
        if a.counts()[j] == 0 {
            continue;
        }
        let masked = a.bin(j).and(sel);
        if masked.count_ones() == 0 {
            continue;
        }
        for (k, slot) in joint[j * nb..(j + 1) * nb].iter_mut().enumerate() {
            if b.counts()[k] != 0 {
                *slot = masked.and_count(b.bin(k));
            }
        }
    }
}

/// Computes the relationship of two variables restricted to the
/// intersection of their subset queries — the paper's correlation-query
/// primitive, evaluated purely on bitmaps. Disjoint subsets (an empty
/// combined selection) report zero mutual information and conditional
/// entropy, never NaN.
pub fn correlation_query(
    a: &BitmapIndex,
    b: &BitmapIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
) -> Result<CorrelationAnswer, QueryError> {
    correlation_query_with(a, None, b, None, query_a, query_b, None)
}

/// [`correlation_query`] over two single-level indices built under the
/// *same* row reordering (see [`correlation_query_ml_mapped`] for the
/// invariance argument).
pub fn correlation_query_mapped(
    a: &BitmapIndex,
    b: &BitmapIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
    perm: &RowPermutation,
) -> Result<CorrelationAnswer, QueryError> {
    correlation_query_with(a, None, b, None, query_a, query_b, Some(perm))
}

/// [`correlation_query`] over two-level indices: value predicates may plan
/// the high-level covering strategy. Metrics are computed on the low level
/// and are identical to the single-level result.
pub fn correlation_query_ml(
    a: &MultiLevelIndex,
    b: &MultiLevelIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
) -> Result<CorrelationAnswer, QueryError> {
    correlation_query_with(a.low(), Some(a), b.low(), Some(b), query_a, query_b, None)
}

/// [`correlation_query_ml`] over two indices built under the *same* row
/// reordering (both variables of a step share one permutation, so their
/// stored rows stay aligned): region predicates map through the inverse
/// permutation, and every metric — selection count, MI, conditional
/// entropy, Pearson, means — is identical to the identity-order answer,
/// because all of them are row-order invariant.
pub fn correlation_query_ml_mapped(
    a: &MultiLevelIndex,
    b: &MultiLevelIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
    perm: &RowPermutation,
) -> Result<CorrelationAnswer, QueryError> {
    correlation_query_with(
        a.low(),
        Some(a),
        b.low(),
        Some(b),
        query_a,
        query_b,
        Some(perm),
    )
}

#[allow(clippy::too_many_arguments)]
fn correlation_query_with(
    a: &BitmapIndex,
    ml_a: Option<&MultiLevelIndex>,
    b: &BitmapIndex,
    ml_b: Option<&MultiLevelIndex>,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
    perm: Option<&RowPermutation>,
) -> Result<CorrelationAnswer, QueryError> {
    if a.len() != b.len() {
        return Err(QueryError::LengthMismatch {
            len_a: a.len(),
            len_b: b.len(),
        });
    }
    let sel = query_a
        .evaluate_with(a, ml_a, perm)?
        .and(&query_b.evaluate_with(b, ml_b, perm)?);
    let selected = sel.count_ones();
    let joint = joint_counts_selected(a, b, &sel);
    Ok(CorrelationAnswer {
        selected,
        mutual_information: mutual_information_from_counts(&joint, a.nbins(), b.nbins()),
        conditional_entropy: conditional_entropy_from_counts(&joint, a.nbins(), b.nbins()),
        pearson: aggregate::pearson_selected(a, b, &sel),
        mean_a: aggregate::mean_selected(a, &sel),
        mean_b: aggregate::mean_selected(b, &sel),
    })
}

// ---------------------------------------------------------------------------
// Sharded scatter-gather partials
// ---------------------------------------------------------------------------
//
// A spatial shard holds `slice_rows(lo..hi)` of every step's index — the
// contiguous stored-row range `[lo, hi)` of the global row space. Three
// facts make scatter-gather answers byte-identical to the unsharded engine:
//
// 1. *Selections slice.* A value predicate is an OR over a bin span, set
//    operations distribute over row slices, and the canonical WAH encoding
//    of a bit string is unique — so evaluating a query on a shard yields
//    exactly the `[lo, hi)` slice of the global canonical selection, and
//    concatenating per-shard selections in shard order reproduces the
//    global vector word for word.
// 2. *Counts are additive.* Selected counts, joint `(bin_a, bin_b)` tables,
//    and per-bin selection counts are integers summed over disjoint row
//    ranges; u64 addition is associative, so coordinator sums equal the
//    global counts exactly.
// 3. *Finishers are pure.* Every float metric (MI, conditional entropy,
//    Pearson, means) is a fixed-order function of those integer counts
//    ([`crate::entropy::mutual_information_from_counts`],
//    [`crate::aggregate::pearson_from_joint_counts`],
//    [`crate::aggregate::sum_from_bin_counts`]) — summed counts through the
//    same finisher give bit-identical floats.

/// Evaluates a query against one spatial shard covering stored rows
/// `[rows.start, rows.end)` of a `global_len`-row domain. The returned
/// selection is exactly `global_selection.slice(rows)` — the shard-local
/// canonical piece a coordinator concatenates (or counts) per shard.
///
/// `perm` is the *global* row permutation for stores laid out under a row
/// reordering (region predicates name original row ids; their stored
/// positions are mapped through `perm.inv()` and kept only when they land
/// in this shard). Validation matches the unsharded path: region bounds
/// are checked against `global_len`, so a malformed query fails
/// identically on every shard.
pub fn evaluate_ml_shard(
    query: &SubsetQuery,
    ml: &MultiLevelIndex,
    rows: Range<u64>,
    global_len: u64,
    perm: Option<&RowPermutation>,
) -> Result<WahVec, QueryError> {
    let index = ml.low();
    let n = index.len();
    if rows.end.saturating_sub(rows.start) != n || rows.end > global_len {
        return Err(QueryError::LengthMismatch {
            len_a: n,
            len_b: rows.end.saturating_sub(rows.start),
        });
    }
    if let Some(p) = perm {
        if p.len() as u64 != global_len {
            return Err(QueryError::LengthMismatch {
                len_a: global_len,
                len_b: p.len() as u64,
            });
        }
    }
    let mut sel = match query.value_range {
        Some((lo, hi)) => {
            let plan = plan_value_range(index, Some(ml), lo, hi)?;
            execute_range_plan(index, Some(ml), &plan)
        }
        None => WahVec::ones(n),
    };
    if let Some(range) = &query.position_range {
        if range.start > range.end || range.end > global_len {
            return Err(QueryError::RegionOutOfRange {
                start: range.start,
                end: range.end,
                len: global_len,
            });
        }
        let mask = match perm {
            None => {
                // Identity layout: the global `[start, end)` block clipped
                // to this shard and rebased to shard-local positions.
                let lo = range.start.max(rows.start);
                let hi = range.end.min(rows.end);
                let local = if lo < hi {
                    lo - rows.start..hi - rows.start
                } else {
                    0..0
                };
                region_mask(local, n)?
            }
            Some(p) => {
                OBS_REGION_MAPPED.inc();
                // Reordered layout: stored positions of the original-id
                // block that land inside this shard, rebased and sorted.
                let mut ones: Vec<u64> = p.inv()[range.start as usize..range.end as usize]
                    .iter()
                    .map(|&s| s as u64)
                    .filter(|s| rows.contains(s))
                    .map(|s| s - rows.start)
                    .collect();
                ones.sort_unstable();
                WahVec::from_ones(&ones, n)
            }
        };
        sel = sel.and(&mask);
    }
    Ok(sel)
}

/// One shard's additive contribution to a correlation query: every term
/// the coordinator needs, as exact integers. Merge partials with
/// [`CorrelationPartial::merge`] and finish with [`finish_correlation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelationPartial {
    /// Elements of the combined selection inside this shard.
    pub selected: u64,
    /// Joint `(bin_a, bin_b)` counts restricted to the selection,
    /// row-major over `nbins_a × nbins_b`.
    pub joint: Vec<u64>,
    /// Per-bin selection counts of variable A (`bin ∧ selection`), the sum
    /// finisher's input — *not* derivable from `joint`'s marginals in
    /// general, so carried explicitly.
    pub counts_a: Vec<u64>,
    /// Per-bin selection counts of variable B.
    pub counts_b: Vec<u64>,
}

impl CorrelationPartial {
    /// The additive identity for the given bin counts.
    pub fn zero(nbins_a: usize, nbins_b: usize) -> Self {
        CorrelationPartial {
            selected: 0,
            joint: vec![0; nbins_a * nbins_b],
            counts_a: vec![0; nbins_a],
            counts_b: vec![0; nbins_b],
        }
    }

    /// Accumulates another shard's partial (elementwise integer sums —
    /// associative and commutative, so any reduction order at the
    /// coordinator yields the same totals).
    ///
    /// # Panics
    /// Panics when the partials' shapes differ.
    pub fn merge(&mut self, other: &CorrelationPartial) {
        assert_eq!(self.joint.len(), other.joint.len(), "joint shape mismatch");
        assert_eq!(self.counts_a.len(), other.counts_a.len());
        assert_eq!(self.counts_b.len(), other.counts_b.len());
        self.selected += other.selected;
        for (s, o) in self.joint.iter_mut().zip(&other.joint) {
            *s += o;
        }
        for (s, o) in self.counts_a.iter_mut().zip(&other.counts_a) {
            *s += o;
        }
        for (s, o) in self.counts_b.iter_mut().zip(&other.counts_b) {
            *s += o;
        }
    }
}

/// Computes one shard's [`CorrelationPartial`] for a correlation query
/// (see [`evaluate_ml_shard`] for the shard-addressing contract).
#[allow(clippy::too_many_arguments)]
pub fn correlation_partial_ml_shard(
    a: &MultiLevelIndex,
    b: &MultiLevelIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
    rows: Range<u64>,
    global_len: u64,
    perm: Option<&RowPermutation>,
) -> Result<CorrelationPartial, QueryError> {
    if a.low().len() != b.low().len() {
        return Err(QueryError::LengthMismatch {
            len_a: a.low().len(),
            len_b: b.low().len(),
        });
    }
    let sel = evaluate_ml_shard(query_a, a, rows.clone(), global_len, perm)?
        .and(&evaluate_ml_shard(query_b, b, rows, global_len, perm)?);
    let count_bins = |idx: &BitmapIndex| -> Vec<u64> {
        idx.bins().iter().map(|bin| bin.and_count(&sel)).collect()
    };
    Ok(CorrelationPartial {
        selected: sel.count_ones(),
        joint: joint_counts_selected(a.low(), b.low(), &sel),
        counts_a: count_bins(a.low()),
        counts_b: count_bins(b.low()),
    })
}

/// Runs the metric finishers over merged shard partials. Feeding the sum
/// of every shard's partial through this yields a [`CorrelationAnswer`]
/// bit-identical to the unsharded [`correlation_query_ml`] — same integer
/// counts, same finishers, same accumulation order.
pub fn finish_correlation(
    binner_a: &ibis_core::Binner,
    binner_b: &ibis_core::Binner,
    p: &CorrelationPartial,
) -> CorrelationAnswer {
    let (na, nb) = (binner_a.nbins(), binner_b.nbins());
    CorrelationAnswer {
        selected: p.selected,
        mutual_information: mutual_information_from_counts(&p.joint, na, nb),
        conditional_entropy: conditional_entropy_from_counts(&p.joint, na, nb),
        pearson: aggregate::pearson_from_joint_counts(binner_a, binner_b, &p.joint, p.selected),
        mean_a: aggregate::mean_from_sum(
            aggregate::sum_from_bin_counts(binner_a, &p.counts_a),
            p.selected,
        ),
        mean_b: aggregate::mean_from_sum(
            aggregate::sum_from_bin_counts(binner_b, &p.counts_b),
            p.selected,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::Binner;

    fn index(data: &[f64]) -> BitmapIndex {
        BitmapIndex::build(data, Binner::fixed_width(0.0, 10.0, 100))
    }

    #[test]
    fn all_selects_everything() {
        let data: Vec<f64> = (0..500).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::all().evaluate(&idx).unwrap();
        assert_eq!(sel.count_ones(), 500);
    }

    #[test]
    fn value_query_matches_scan() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::value(2.0, 5.0).evaluate(&idx).unwrap();
        let want = data.iter().filter(|&&v| (2.0..5.0).contains(&v)).count() as u64;
        assert_eq!(sel.count_ones(), want);
    }

    #[test]
    fn region_query_is_positional() {
        let data: Vec<f64> = (0..300).map(|i| i as f64 / 100.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::region(100..200).evaluate(&idx).unwrap();
        assert_eq!(sel.count_ones(), 100);
        assert!(!sel.get(99));
        assert!(sel.get(100));
        assert!(sel.get(199));
        assert!(!sel.get(200));
    }

    #[test]
    fn combined_query_intersects() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::region(0..500)
            .with_value(2.0, 5.0)
            .evaluate(&idx)
            .unwrap();
        let want = data[..500]
            .iter()
            .filter(|&&v| (2.0..5.0).contains(&v))
            .count() as u64;
        assert_eq!(sel.count_ones(), want);
    }

    #[test]
    fn region_mask_edges() {
        let m = region_mask(0..0, 10).unwrap();
        assert_eq!(m.count_ones(), 0);
        let m = region_mask(0..10, 10).unwrap();
        assert_eq!(m.count_ones(), 10);
        let m = region_mask(3..7, 10).unwrap();
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn region_out_of_range_is_error_not_panic() {
        let err = region_mask(5..20, 10).unwrap_err();
        assert_eq!(
            err,
            QueryError::RegionOutOfRange {
                start: 5,
                end: 20,
                len: 10
            }
        );
        // inverted region is malformed too
        let inverted = Range { start: 7, end: 3 };
        assert!(matches!(
            region_mask(inverted, 10),
            Err(QueryError::RegionOutOfRange { .. })
        ));
        // ...and the same through a SubsetQuery against a live index
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let idx = index(&data);
        let err = SubsetQuery::region(50..1000).evaluate(&idx).unwrap_err();
        assert!(matches!(err, QueryError::RegionOutOfRange { len: 100, .. }));
    }

    #[test]
    fn value_range_semantics_pinned() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        // inverted interval: empty selection
        let sel = SubsetQuery::value(5.0, 2.0).evaluate(&idx).unwrap();
        assert_eq!(sel.count_ones(), 0);
        // empty interval: empty selection
        let sel = SubsetQuery::value(3.0, 3.0).evaluate(&idx).unwrap();
        assert_eq!(sel.count_ones(), 0);
        // NaN bound: typed error
        let err = SubsetQuery::value(f64::NAN, 3.0)
            .evaluate(&idx)
            .unwrap_err();
        assert!(matches!(err, QueryError::NanBound { .. }));
        let err = SubsetQuery::value(3.0, f64::NAN)
            .evaluate(&idx)
            .unwrap_err();
        assert!(matches!(err, QueryError::NanBound { .. }));
        // the empty cases also flow through correlation_query cleanly
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::value(5.0, 2.0),
            &SubsetQuery::all(),
        )
        .unwrap();
        assert_eq!(ans.selected, 0);
    }

    #[test]
    fn planner_strategies_agree_byte_identically() {
        let data: Vec<f64> = (0..4000)
            .map(|i| ((i * 37) % 100) as f64 / 10.0 + ((i / 800) as f64).min(0.9))
            .collect();
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 11.0, 64), 8);
        let idx = ml.low();
        for (lo, hi) in [
            (0.0, 11.0),
            (0.5, 10.5),
            (2.0, 3.0),
            (0.0, 0.2),
            (9.3, 11.0),
            (4.2, 4.21),
        ] {
            let naive = idx.query_range(lo, hi);
            let Some((b0, b1)) = idx.bin_span(lo, hi) else {
                continue;
            };
            let by_or = execute_range_plan(idx, None, &RangePlan::OrBins { lo: b0, hi: b1 });
            let by_not = execute_range_plan(idx, None, &RangePlan::Complement { lo: b0, hi: b1 });
            let plan = plan_value_range(idx, Some(&ml), lo, hi).unwrap();
            let planned = execute_range_plan(idx, Some(&ml), &plan);
            assert_eq!(by_or, naive, "[{lo},{hi}) OrBins");
            assert_eq!(by_not, naive, "[{lo},{hi}) Complement");
            assert_eq!(planned, naive, "[{lo},{hi}) planned {plan:?}");
            // force the multilevel covering too, whatever the planner chose
            let mut high = Vec::new();
            let mut low_edges = Vec::new();
            for h in 0..ml.high().nbins() {
                let ch = ml.children(h);
                if ch.start > b1 || ch.end <= b0 {
                    continue;
                }
                if ch.start >= b0 && ch.end <= b1 + 1 {
                    high.push(h);
                } else {
                    low_edges.extend(ch.filter(|b| (b0..=b1).contains(b)));
                }
            }
            let by_ml =
                execute_range_plan(idx, Some(&ml), &RangePlan::MultiLevel { high, low_edges });
            assert_eq!(by_ml, naive, "[{lo},{hi}) MultiLevel");
        }
    }

    #[test]
    fn wide_range_plans_away_from_naive_or() {
        // Nearly the whole domain: complement or multilevel must win.
        let data: Vec<f64> = (0..20000).map(|i| ((i * 13) % 100) as f64 / 10.0).collect();
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 10.0, 64), 8);
        let plan = plan_value_range(ml.low(), Some(&ml), 0.0, 9.9).unwrap();
        assert!(
            !matches!(plan, RangePlan::OrBins { .. }),
            "wide span must not fan in every bin: {plan:?}"
        );
        // A one-bin span stays naive.
        let plan = plan_value_range(ml.low(), Some(&ml), 5.0, 5.05).unwrap();
        assert!(matches!(plan, RangePlan::OrBins { .. }), "{plan:?}");
    }

    #[test]
    fn prepared_joint_counts_match_naive() {
        let n = 3000usize;
        let a: Vec<f64> = (0..n).map(|i| ((i * 7) % 90) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 90) as f64 / 10.0).collect();
        let ia = index(&a);
        let ib = index(&b);
        for sel in [
            WahVec::ones(n as u64),
            WahVec::zeros(n as u64),
            region_mask(100..2900, n as u64).unwrap(), // dense
            WahVec::from_ones(&[5, 700, 2999], n as u64), // sparse
            WahVec::from_bits((0..n).map(|i| i % 2 == 0)), // incompressible
        ] {
            assert_eq!(
                joint_counts_selected(&ia, &ib, &sel),
                joint_counts_selected_naive(&ia, &ib, &sel)
            );
        }
    }

    #[test]
    fn correlation_query_finds_planted_relationship() {
        // b tracks a inside positions [0, 500); independent-ish outside
        let n = 1000usize;
        let a: Vec<f64> = (0..n).map(|i| (i % 90) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if i < 500 {
                    (i % 90) as f64 / 10.0
                } else {
                    ((i.wrapping_mul(2654435761) >> 13) % 90) as f64 / 10.0
                }
            })
            .collect();
        let ia = index(&a);
        let ib = index(&b);
        let inside = correlation_query(
            &ia,
            &ib,
            &SubsetQuery::region(0..500),
            &SubsetQuery::region(0..500),
        )
        .unwrap();
        let outside = correlation_query(
            &ia,
            &ib,
            &SubsetQuery::region(500..1000),
            &SubsetQuery::region(500..1000),
        )
        .unwrap();
        assert_eq!(inside.selected, 500);
        assert!(inside.mutual_information > outside.mutual_information + 1.0);
        assert!(inside.pearson.unwrap() > 0.99);
        assert!(outside.pearson.unwrap().abs() < 0.3);
        assert!(inside.conditional_entropy < outside.conditional_entropy);
    }

    #[test]
    fn multilevel_correlation_matches_single_level() {
        let n = 2000usize;
        let a: Vec<f64> = (0..n).map(|i| ((i * 3) % 95) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 11 + 7) % 95) as f64 / 10.0).collect();
        let ia = MultiLevelIndex::build(&a, Binner::fixed_width(0.0, 10.0, 64), 8);
        let ib = MultiLevelIndex::build(&b, Binner::fixed_width(0.0, 10.0, 64), 8);
        let qa = SubsetQuery::value(1.0, 9.0).with_region(0..1500);
        let qb = SubsetQuery::value(0.5, 8.0);
        let ml = correlation_query_ml(&ia, &ib, &qa, &qb).unwrap();
        let single = correlation_query(ia.low(), ib.low(), &qa, &qb).unwrap();
        assert_eq!(ml, single);
    }

    #[test]
    fn empty_selection_is_well_defined() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let idx = index(&data);
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::value(9.0, 10.0), // nothing up there
            &SubsetQuery::all(),
        )
        .unwrap();
        assert_eq!(ans.selected, 0);
        assert_eq!(ans.mutual_information, 0.0);
        assert!(ans.pearson.is_none());
        assert!(ans.mean_a.is_none());
    }

    #[test]
    fn disjoint_subsets_report_zero_not_nan() {
        let data: Vec<f64> = (0..400).map(|i| (i % 40) as f64 / 4.0).collect();
        let idx = index(&data);
        // provably disjoint regions
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::region(0..200),
            &SubsetQuery::region(200..400),
        )
        .unwrap();
        assert_eq!(ans.selected, 0);
        assert_eq!(ans.mutual_information, 0.0);
        assert_eq!(ans.conditional_entropy, 0.0);
        assert!(!ans.mutual_information.is_nan() && !ans.conditional_entropy.is_nan());
        // provably disjoint value predicates on the same variable
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::value(0.0, 2.0),
            &SubsetQuery::value(8.0, 10.0),
        )
        .unwrap();
        assert_eq!(ans.selected, 0);
        assert_eq!(ans.mutual_information, 0.0);
        assert_eq!(ans.conditional_entropy, 0.0);
        // ...and combined value+region disjointness
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::value(0.0, 2.0).with_region(0..100),
            &SubsetQuery::value(0.0, 2.0).with_region(300..400),
        )
        .unwrap();
        assert_eq!(ans.selected, 0);
        assert_eq!(ans.conditional_entropy, 0.0);
    }

    #[test]
    fn mismatched_lengths_are_an_error() {
        let a = index(&(0..100).map(|i| i as f64 / 10.0).collect::<Vec<_>>());
        let b = index(&(0..200).map(|i| i as f64 / 20.0).collect::<Vec<_>>());
        let err = correlation_query(&a, &b, &SubsetQuery::all(), &SubsetQuery::all()).unwrap_err();
        assert_eq!(
            err,
            QueryError::LengthMismatch {
                len_a: 100,
                len_b: 200
            }
        );
    }

    #[test]
    fn sharded_partials_match_unsharded_oracle() {
        use ibis_core::MultiLevelIndex;
        let n = 3100usize;
        let da: Vec<f64> = (0..n).map(|i| ((i * 7) % 95) as f64 / 10.0).collect();
        let db: Vec<f64> = (0..n).map(|i| ((i * 13 + 11) % 95) as f64 / 10.0).collect();
        let binner = Binner::fixed_width(0.0, 10.0, 48);
        let ia = MultiLevelIndex::build(&da, binner.clone(), 8);
        let ib = MultiLevelIndex::build(&db, binner.clone(), 8);
        let queries = [
            (SubsetQuery::all(), SubsetQuery::all()),
            (SubsetQuery::value(1.0, 8.5), SubsetQuery::all()),
            (
                SubsetQuery::value(0.0, 9.9).with_region(100..2500),
                SubsetQuery::value(2.0, 7.0),
            ),
            (SubsetQuery::region(0..700), SubsetQuery::region(500..3100)),
        ];
        for cuts in [vec![0u64, n as u64], vec![0, 777, 1600, 2201, n as u64]] {
            let shards: Vec<(std::ops::Range<u64>, MultiLevelIndex, MultiLevelIndex)> = cuts
                .windows(2)
                .map(|w| {
                    let r = w[0]..w[1];
                    (
                        r.clone(),
                        MultiLevelIndex::from_low(ia.low().slice_rows(r.clone()), 8),
                        MultiLevelIndex::from_low(ib.low().slice_rows(r), 8),
                    )
                })
                .collect();
            for (qa, qb) in &queries {
                // selections concatenate to the global canonical vector
                let global_sel = qa
                    .evaluate_ml(&ia)
                    .unwrap()
                    .and(&qb.evaluate_ml(&ib).unwrap());
                let mut bld = ibis_core::WahBuilder::new();
                for (r, sa, sb) in &shards {
                    let s = evaluate_ml_shard(qa, sa, r.clone(), n as u64, None)
                        .unwrap()
                        .and(&evaluate_ml_shard(qb, sb, r.clone(), n as u64, None).unwrap());
                    bld.append_wah(&s);
                }
                assert_eq!(bld.finish(), global_sel, "selection concat {qa:?}/{qb:?}");
                // merged partials finish to the exact unsharded answer
                let oracle = correlation_query_ml(&ia, &ib, qa, qb).unwrap();
                let mut acc = CorrelationPartial::zero(48, 48);
                for (r, sa, sb) in &shards {
                    let p = correlation_partial_ml_shard(sa, sb, qa, qb, r.clone(), n as u64, None)
                        .unwrap();
                    acc.merge(&p);
                }
                let merged = finish_correlation(&binner, &binner, &acc);
                assert_eq!(merged, oracle, "finished partials {qa:?}/{qb:?}");
            }
        }
    }

    #[test]
    fn sharded_partials_match_under_row_reordering() {
        use ibis_core::{MultiLevelIndex, RowOrder};
        let n = 2048usize;
        let da: Vec<f64> = (0..n).map(|i| ((i * 17) % 90) as f64 / 9.0).collect();
        let db: Vec<f64> = (0..n).map(|i| ((i * 29 + 3) % 90) as f64 / 9.0).collect();
        let binner = Binner::fixed_width(0.0, 10.0, 30);
        let dims = vec![64usize, 32];
        let perm = RowOrder::GrayBin
            .permutation(&dims, &binner, &da)
            .expect("graybin permutation");
        let ia = MultiLevelIndex::from_low(
            ibis_core::BitmapIndex::build_permuted(&da, binner.clone(), &perm),
            6,
        );
        let ib = MultiLevelIndex::from_low(
            ibis_core::BitmapIndex::build_permuted(&db, binner.clone(), &perm),
            6,
        );
        let qa = SubsetQuery::value(1.0, 7.5).with_region(128..1900);
        let qb = SubsetQuery::region(0..1500);
        let oracle = correlation_query_ml_mapped(&ia, &ib, &qa, &qb, &perm).unwrap();
        let cuts = [0u64, 500, 1024, n as u64];
        let mut acc = CorrelationPartial::zero(30, 30);
        for w in cuts.windows(2) {
            let r = w[0]..w[1];
            let sa = MultiLevelIndex::from_low(ia.low().slice_rows(r.clone()), 6);
            let sb = MultiLevelIndex::from_low(ib.low().slice_rows(r.clone()), 6);
            let p =
                correlation_partial_ml_shard(&sa, &sb, &qa, &qb, r, n as u64, Some(&perm)).unwrap();
            acc.merge(&p);
        }
        assert_eq!(finish_correlation(&binner, &binner, &acc), oracle);
    }

    #[test]
    fn shard_evaluation_rejects_malformed_input() {
        use ibis_core::MultiLevelIndex;
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ml = MultiLevelIndex::build(&data, Binner::fixed_width(0.0, 10.0, 10), 2);
        // shard range length must match the shard index
        assert!(matches!(
            evaluate_ml_shard(&SubsetQuery::all(), &ml, 0..50, 200, None),
            Err(QueryError::LengthMismatch { .. })
        ));
        // region bounds validate against the global length, as unsharded
        assert!(matches!(
            evaluate_ml_shard(&SubsetQuery::region(150..250), &ml, 0..100, 200, None),
            Err(QueryError::RegionOutOfRange { len: 200, .. })
        ));
    }

    #[test]
    fn query_means_are_bounded_estimates() {
        let data: Vec<f64> = (0..400).map(|i| (i % 40) as f64 / 4.0).collect();
        let idx = index(&data);
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::region(0..200),
            &SubsetQuery::all(),
        )
        .unwrap();
        let true_mean = data[..200].iter().sum::<f64>() / 200.0;
        assert!(ans.mean_a.unwrap().contains(true_mean));
    }
}
