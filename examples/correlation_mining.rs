//! Offline correlation mining on the synthetic ocean dataset (the paper's
//! POP scenario, Section 4 / Figure 14): find the value and spatial subsets
//! where temperature and salinity carry high mutual information.
//!
//! The data is laid out in Z-order first, so the miner's spatial units are
//! compact latitude/longitude blocks, and the generator *plants* the
//! correlation inside a known latitude band — the example verifies the
//! miner recovers it.
//!
//! ```text
//! cargo run --release --example correlation_mining
//! ```

use ibis::analysis::{mine_full, mine_index, MiningConfig};
use ibis::core::{Binner, BitmapIndex, ZOrderLayout};
use ibis::datagen::{OceanConfig, OceanModel};
use std::time::Instant;

fn main() {
    let cfg = OceanConfig {
        nlon: 128,
        nlat: 96,
        ndepth: 1,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg.clone());
    let temp = ocean.variable("temperature");
    let salt = ocean.variable("salinity");
    println!(
        "ocean grid {}x{}x{} — mining temperature × salinity",
        cfg.nlon, cfg.nlat, cfg.ndepth
    );

    // Z-order layout: a contiguous range of positions = a spatial block.
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat]);
    let temp_z = z.reorder(&temp);
    let salt_z = z.reorder(&salt);

    let bt = Binner::fit(&temp_z, 24);
    let bs = Binner::fit(&salt_z, 24);
    let mining = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.08,
        unit_size: 256,
    };

    //

    let t0 = Instant::now();
    let it = BitmapIndex::build(&temp_z, bt.clone());
    let is = BitmapIndex::build(&salt_z, bs.clone());
    let build_time = t0.elapsed();
    let t0 = Instant::now();
    let result = mine_index(&it, &is, &mining);
    let mine_time = t0.elapsed();

    let t0 = Instant::now();
    let full = mine_full(&temp_z, &salt_z, &bt, &bs, &mining);
    let full_time = t0.elapsed();

    println!("bitmaps: build {build_time:?} + mine {mine_time:?}   full data: {full_time:?}");
    println!(
        "value pairs evaluated: {}, pruned by T: {}, spatial units scored: {}",
        result.pairs_evaluated, result.pairs_pruned, result.units_evaluated
    );
    assert_eq!(
        result.subsets, full.subsets,
        "bitmap miner must equal full-data miner"
    );
    println!("bitmap and full-data miners returned identical subsets\n");

    println!("top mined subsets (value pair × spatial block):");
    println!(
        "{:<28} {:<28} {:>10} {:>9}",
        "temperature range", "salinity range", "block", "MI(bits)"
    );
    for s in result.subsets.iter().take(10) {
        let (t_lo, t_hi) = bt.bin_range(s.bin_a);
        let (s_lo, s_hi) = bs.bin_range(s.bin_b);
        let (lo, hi) = z.unit_bounds(
            s.unit * mining.unit_size as usize,
            (mining.unit_size as usize).min(z.len() - s.unit * mining.unit_size as usize),
        );
        println!(
            "[{t_lo:7.2}, {t_hi:7.2}) °C        [{s_lo:6.3}, {s_hi:6.3}) psu        {:>3?}→{:<3?} {:>8.3}",
            lo, hi, s.spatial_mi
        );
    }

    // Verify against the generator's ground truth: the strongest subsets
    // must lie inside the planted current band.
    let band = (
        (cfg.current_band.0 * cfg.nlat as f64) as usize,
        (cfg.current_band.1 * cfg.nlat as f64) as usize,
    );
    let mut in_band = 0;
    let top: Vec<_> = result.subsets.iter().take(20).collect();
    for s in &top {
        let (lo, hi) = z.unit_bounds(
            s.unit * mining.unit_size as usize,
            (mining.unit_size as usize).min(z.len() - s.unit * mining.unit_size as usize),
        );
        // lat is dimension 1 of the layout
        if hi[1] > band.0 && lo[1] < band.1 {
            in_band += 1;
        }
    }
    println!(
        "\nplanted current band: lat cells {}..{} — {}/{} top subsets overlap it",
        band.0,
        band.1,
        in_band,
        top.len()
    );
    assert!(
        in_band * 2 > top.len(),
        "mining should recover the planted correlation"
    );
}
