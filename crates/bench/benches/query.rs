//! Query-serving sweep for the cached engine and the planner: warm-cache
//! repeated correlation queries vs the cold `load_series`-per-query
//! baseline, the prepared-selection joint loop vs the per-pair `and`
//! re-decode on a 64-bin index, and an in-bench byte-identity sweep of
//! every planner strategy against the naive per-bin OR. Written to
//! `BENCH_query.json` at the repository root.
//!
//!     cargo bench -p ibis-bench --bench query
//!
//! `IBIS_QUERY_SMOKE=1` shrinks the store and writes to
//! `target/BENCH_query.smoke.json` instead, so CI can schema-check the
//! report without clobbering the committed full-size numbers.

use ibis_analysis::{
    correlation_query, joint_counts_selected, joint_counts_selected_naive, plan_value_range,
    RangePlan, SubsetQuery,
};
use ibis_core::{Binner, BitmapIndex, MultiLevelIndex};
use ibis_insitu::{CachedStore, QueryAnswer, QueryEngine, QueryRequest, Store, StoreWriter};
use std::hint::black_box;
use std::time::Instant;

/// Mean seconds per iteration (same calibration scheme as micro_kernels).
fn measure<O>(mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let one = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.06 / one).round() as u64).clamp(1, 1_000_000_000);
    let samples = 3;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        total += t0.elapsed().as_secs_f64() / iters as f64;
    }
    total / samples as f64
}

/// A smooth simulation-like field: long same-bin runs, WAH-friendly.
fn temperature(step: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            32.0 + 28.0 * (x * 9.0 + step as f64 * 0.7).sin() + 3.0 * (x * 151.0).sin()
        })
        .collect()
}

/// A second variable that tracks the first, so correlations are non-trivial.
fn salinity(temp: &[f64]) -> Vec<f64> {
    temp.iter()
        .enumerate()
        .map(|(i, &t)| 20.0 + t * 0.5 + 6.0 * ((i as f64 * 0.013).cos()))
        .collect()
}

const NBINS: usize = 64;

fn main() {
    let smoke = std::env::var("IBIS_QUERY_SMOKE").is_ok_and(|v| v == "1");
    let n: usize = if smoke { 1 << 15 } else { 1 << 19 };
    let nsteps: usize = if smoke { 3 } else { 12 };
    let binner = Binner::fixed_width(0.0, 66.0, NBINS);

    // --- build a real run directory to serve from ---
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-query-store");
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).expect("create bench store");
    for step in 0..nsteps {
        let t = temperature(step, n);
        let s = salinity(&t);
        w.put(step, "temperature", &BitmapIndex::build(&t, binner.clone()))
            .expect("put temperature");
        w.put(step, "salinity", &BitmapIndex::build(&s, binner.clone()))
            .expect("put salinity");
    }
    w.finish().expect("finish bench store");

    // The repeated-query workload: every step, three hot-region value
    // ranges (the interactive drill-down pattern the cache targets).
    let ranges = [(10.0, 16.0), (30.0, 34.0), (50.0, 52.0)];
    let workload: Vec<QueryRequest> = (0..nsteps)
        .flat_map(|step| {
            ranges
                .iter()
                .map(move |&(lo, hi)| QueryRequest::Correlation {
                    step,
                    var_a: "temperature".into(),
                    var_b: "salinity".into(),
                    query_a: SubsetQuery::value(lo, hi),
                    query_b: SubsetQuery::region(0..(n as u64) * 3 / 4),
                })
        })
        .collect();

    // --- warm cache vs cold load_series-per-query ---
    // Cold: the pre-engine idiom — every query re-reads, re-verifies, and
    // re-decodes the whole series of both variables from disk.
    let cold_store = Store::open(&dir).expect("open store");
    let run_cold = |req: &QueryRequest| {
        let QueryRequest::Correlation {
            step,
            var_a,
            var_b,
            query_a,
            query_b,
        } = req
        else {
            unreachable!("workload is all correlations")
        };
        let series_a = cold_store.load_series(var_a).expect("load series a");
        let series_b = cold_store.load_series(var_b).expect("load series b");
        let a = &series_a.iter().find(|(s, _)| s == step).expect("step a").1;
        let b = &series_b.iter().find(|(s, _)| s == step).expect("step b").1;
        correlation_query(a, b, query_a, query_b).expect("well-formed query")
    };
    let engine = QueryEngine::new(CachedStore::new(
        Store::open(&dir).expect("open store"),
        256 << 20,
    ));

    // Sanity: warm and cold agree on every workload answer before timing.
    for req in &workload {
        let QueryAnswer::Correlation(warm) = engine.run(req).expect("warm query") else {
            unreachable!("correlation request")
        };
        assert_eq!(warm, run_cold(req), "warm/cold divergence on {req:?}");
    }

    let cold_s = measure(|| {
        for req in &workload {
            black_box(run_cold(black_box(req)));
        }
    });
    let warm_s = measure(|| {
        for req in &workload {
            black_box(engine.run(black_box(req)).expect("warm query"));
        }
    });
    let warm_speedup = cold_s / warm_s;
    let warm_ok = warm_speedup >= 5.0;
    let stats = engine.cache_stats();
    println!(
        "query: {} queries/batch  cold {:.1} ms  warm {:.2} ms  ({warm_speedup:.1}x, >=5x: {warm_ok})  cache {} hits / {} misses",
        workload.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        stats.hits,
        stats.misses,
    );

    // --- prepared joint loop vs per-pair and() re-decode, 64-bin index ---
    // The selection comes from a *noisy* diagnostic variable, so its bitmap
    // is dense and incompressible — the regime where the naive loop's
    // per-pair merges drag the full selection through every `and`, and the
    // prepared path's one-time decode pays off.
    let t0 = temperature(0, n);
    let s0 = salinity(&t0);
    let ia = BitmapIndex::build(&t0, binner.clone());
    let ib = BitmapIndex::build(&s0, binner.clone());
    let noise: Vec<f64> = {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 66.0
            })
            .collect()
    };
    let inoise = BitmapIndex::build(&noise, binner.clone());
    let sel = SubsetQuery::value(4.0, 62.0)
        .evaluate(&inoise)
        .expect("selection");
    assert_eq!(
        joint_counts_selected(&ia, &ib, &sel),
        joint_counts_selected_naive(&ia, &ib, &sel),
        "prepared joint loop diverged from naive"
    );
    let prepared_s = measure(|| joint_counts_selected(black_box(&ia), black_box(&ib), &sel));
    let naive_s = measure(|| joint_counts_selected_naive(black_box(&ia), black_box(&ib), &sel));
    let joint_speedup = naive_s / prepared_s;
    let joint_ok = joint_speedup > 1.0;
    println!(
        "query: joint loop {NBINS}x{NBINS} bins  naive {:.2} ms  prepared {:.2} ms  ({joint_speedup:.1}x, >1x: {joint_ok})",
        naive_s * 1e3,
        prepared_s * 1e3,
    );

    // --- planner byte-identity sweep: every strategy == naive per-bin OR ---
    let ml = MultiLevelIndex::from_low(ia.clone(), 8);
    let mut plan_counts = [0usize; 4]; // empty, or_bins, complement, multilevel
    let mut identity_checks = 0usize;
    for lo_bin in (0..NBINS).step_by(3) {
        for width in [0usize, 1, 2, 7, 19, 40, NBINS] {
            let lo = lo_bin as f64 * 66.0 / NBINS as f64 + 0.01;
            let hi = lo + width as f64 * 66.0 / NBINS as f64;
            let plan = plan_value_range(&ia, Some(&ml), lo, hi).expect("finite bounds");
            plan_counts[match plan {
                RangePlan::Empty => 0,
                RangePlan::OrBins { .. } => 1,
                RangePlan::Complement { .. } => 2,
                RangePlan::MultiLevel { .. } => 3,
            }] += 1;
            let naive = ia.query_range(lo, hi);
            let flat = SubsetQuery::value(lo, hi).evaluate(&ia).expect("planned");
            let multi = SubsetQuery::value(lo, hi)
                .evaluate_ml(&ml)
                .expect("planned");
            assert_eq!(
                flat.words(),
                naive.words(),
                "flat plan diverged at [{lo}, {hi})"
            );
            assert_eq!(
                multi.words(),
                naive.words(),
                "ml plan diverged at [{lo}, {hi})"
            );
            identity_checks += 1;
        }
    }
    let all_strategies_used = plan_counts.iter().all(|&c| c > 0);
    println!(
        "query: planner identity {identity_checks} ranges byte-identical; plans empty={} or_bins={} complement={} multilevel={} (all used: {all_strategies_used})",
        plan_counts[0], plan_counts[1], plan_counts[2], plan_counts[3],
    );

    let out = format!(
        "{{\n  \"workload\": \"correlation query serving, {n} elements/step, {nsteps} steps, {NBINS} bins, {} queries/batch\",\n  \
         \"n\": {n},\n  \"nsteps\": {nsteps},\n  \"nbins\": {NBINS},\n  \
         \"cold_load_series_batch_s\": {cold_s:e},\n  \
         \"warm_cache_batch_s\": {warm_s:e},\n  \
         \"warm_over_cold_speedup\": {warm_speedup:.3},\n  \
         \"warm_over_5x_target\": {warm_ok},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"joint_naive_s\": {naive_s:e},\n  \
         \"joint_prepared_s\": {prepared_s:e},\n  \
         \"prepared_over_naive_speedup\": {joint_speedup:.3},\n  \
         \"prepared_beats_naive\": {joint_ok},\n  \
         \"planner_identity_ranges_checked\": {identity_checks},\n  \
         \"planner_strategies_all_byte_identical\": true,\n  \
         \"planner_all_strategies_exercised\": {all_strategies_used}\n}}\n",
        workload.len(),
        stats.hits,
        stats.misses,
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_query.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json")
    };
    std::fs::write(path, out).expect("write BENCH_query report");
    std::fs::remove_dir_all(&dir).ok();
    println!("query: wrote {path}");
}
