//! Retrying storage writes: exponential backoff with a deadline.
//!
//! The paper's remote data server is a single contended ~100 MB/s link;
//! at production scale such links drop and stall. Every pipeline write
//! (local disk, remote link, real file sink) therefore goes through
//! [`write_with_retry`]: a transient failure is retried with exponentially
//! growing backoff, a persistent failure exhausts the attempt budget, and
//! a cumulative-delay deadline bounds how long one write may stall the
//! pipeline. Backoff is *modeled* time (seconds added to the pipeline
//! clock), so retries are deterministic and cost nothing on the host.

use crate::error::IbisError;
use crate::fault::{FaultInjector, WriteFault};
use crate::io::Storage;
use ibis_obs::LazyCounter;

static OBS_WRITE_ATTEMPTS: LazyCounter = LazyCounter::new("store.write.attempts");
static OBS_WRITE_RETRIES: LazyCounter = LazyCounter::new("store.write.retries");
static OBS_WRITE_FAILURES: LazyCounter = LazyCounter::new("store.write.failures");

/// Retry schedule for storage operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in modeled seconds.
    pub base_backoff: f64,
    /// Multiplier applied per further retry (exponential backoff).
    pub multiplier: f64,
    /// Cap on a single backoff interval, in modeled seconds.
    pub max_backoff: f64,
    /// Cap on the *cumulative* delay (backoff + delayed acks) one write
    /// may accumulate; exceeding it fails the write with
    /// [`IbisError::DeadlineExceeded`]. `None` = unbounded.
    pub deadline: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 0.05,
            multiplier: 2.0,
            max_backoff: 2.0,
            deadline: Some(30.0),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based), in modeled seconds.
    pub fn backoff(&self, retry: u32) -> f64 {
        let exp = self.multiplier.powi(retry.saturating_sub(1) as i32);
        (self.base_backoff * exp).min(self.max_backoff)
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), IbisError> {
        if self.max_attempts == 0 {
            return Err(IbisError::Config("retry policy needs >= 1 attempt".into()));
        }
        if !(self.base_backoff >= 0.0 && self.multiplier >= 1.0 && self.max_backoff >= 0.0) {
            return Err(IbisError::Config(
                "retry backoff must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a (possibly retried) storage write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteReceipt {
    /// Seconds until the write (including queueing, retries, backoff and
    /// delayed acks) completed, relative to `now`.
    pub seconds: f64,
    /// Attempts performed (1 = clean first try).
    pub attempts: u32,
}

/// Writes `bytes` to `storage` at modeled time `now`, consulting the fault
/// `injector` and retrying transient failures per `policy`.
///
/// Injected faults are charged as follows: an I/O error or torn write
/// costs one backoff interval and a retry; a delayed ack adds its latency
/// to the completion time. Real storage failures (from the [`Storage`]
/// impl itself) are retried the same way.
pub fn write_with_retry(
    storage: &dyn Storage,
    injector: &FaultInjector,
    policy: &RetryPolicy,
    now: f64,
    bytes: u64,
) -> Result<WriteReceipt, IbisError> {
    let receipt = write_with_retry_impl(storage, injector, policy, now, bytes);
    match &receipt {
        Ok(r) => {
            OBS_WRITE_ATTEMPTS.add(r.attempts as u64);
            OBS_WRITE_RETRIES.add(r.attempts.saturating_sub(1) as u64);
        }
        Err(_) => OBS_WRITE_FAILURES.inc(),
    }
    receipt
}

fn write_with_retry_impl(
    storage: &dyn Storage,
    injector: &FaultInjector,
    policy: &RetryPolicy,
    now: f64,
    bytes: u64,
) -> Result<WriteReceipt, IbisError> {
    let op = injector.begin_write();
    let mut delay = 0.0f64; // cumulative backoff + ack delay
    let mut extra_ack = 0.0f64;
    let mut last_error = String::new();
    for attempt in 0..policy.max_attempts {
        if let Some(deadline) = policy.deadline {
            if delay > deadline {
                return Err(IbisError::DeadlineExceeded {
                    site: storage.describe(),
                    deadline,
                });
            }
        }
        let fault = injector.write_fault_for(op, attempt);
        match fault {
            Some(WriteFault::IoError) => {
                last_error = format!("injected I/O error (op {op})");
            }
            Some(WriteFault::Torn) => {
                last_error = format!("injected torn write (op {op})");
            }
            Some(WriteFault::DelayedAck(ack)) => {
                // the transfer itself succeeds; only the ack is late
                extra_ack += ack;
                match storage.write(now + delay, bytes) {
                    Ok(secs) => {
                        return Ok(WriteReceipt {
                            seconds: delay + secs + extra_ack,
                            attempts: attempt + 1,
                        })
                    }
                    Err(e) => last_error = e.to_string(),
                }
            }
            None => match storage.write(now + delay, bytes) {
                Ok(secs) => {
                    return Ok(WriteReceipt {
                        seconds: delay + secs + extra_ack,
                        attempts: attempt + 1,
                    })
                }
                Err(e) => last_error = e.to_string(),
            },
        }
        delay += policy.backoff(attempt + 1);
    }
    Err(IbisError::StorageExhausted {
        site: storage.describe(),
        attempts: policy.max_attempts,
        last_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::io::LocalDisk;

    #[test]
    fn clean_write_is_one_attempt() {
        let disk = LocalDisk::new(100.0);
        let inj = FaultInjector::inert();
        let r = write_with_retry(&disk, &inj, &RetryPolicy::default(), 0.0, 500).unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.seconds, 5.0);
    }

    #[test]
    fn transient_error_costs_one_backoff() {
        let disk = LocalDisk::new(100.0);
        let inj = FaultInjector::new(FaultPlan::none().with_io_error_at(0));
        let policy = RetryPolicy::default();
        let r = write_with_retry(&disk, &inj, &policy, 0.0, 500).unwrap();
        assert_eq!(r.attempts, 2);
        assert!((r.seconds - (policy.backoff(1) + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn persistent_error_exhausts_attempts() {
        let disk = LocalDisk::new(100.0);
        let inj = FaultInjector::new(
            FaultPlan::none()
                .with_io_error_at(0)
                .with_persistent_write_faults(),
        );
        let err = write_with_retry(&disk, &inj, &RetryPolicy::default(), 0.0, 500).unwrap_err();
        match err {
            IbisError::StorageExhausted { attempts, .. } => assert_eq!(attempts, 4),
            other => panic!("expected exhaustion, got {other}"),
        }
        assert_eq!(disk.bytes_written(), 0, "no attempt actually landed");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: 0.1,
            multiplier: 2.0,
            max_backoff: 0.5,
            deadline: None,
        };
        assert!((p.backoff(1) - 0.1).abs() < 1e-12);
        assert!((p.backoff(2) - 0.2).abs() < 1e-12);
        assert!((p.backoff(3) - 0.4).abs() < 1e-12);
        assert!((p.backoff(4) - 0.5).abs() < 1e-12, "capped");
    }

    #[test]
    fn deadline_stops_retrying() {
        let disk = LocalDisk::new(100.0);
        let inj = FaultInjector::new(
            FaultPlan::none()
                .with_io_error_at(0)
                .with_persistent_write_faults(),
        );
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_backoff: 1.0,
            multiplier: 2.0,
            max_backoff: 64.0,
            deadline: Some(10.0),
        };
        let err = write_with_retry(&disk, &inj, &policy, 0.0, 500).unwrap_err();
        assert!(matches!(err, IbisError::DeadlineExceeded { .. }), "{err}");
    }

    #[test]
    fn delayed_ack_adds_latency() {
        let disk = LocalDisk::new(100.0);
        let inj = FaultInjector::new(FaultPlan::none().with_delayed_ack_at(0, 0.5));
        let r = write_with_retry(&disk, &inj, &RetryPolicy::default(), 0.0, 500).unwrap();
        assert_eq!(r.attempts, 1);
        assert!((r.seconds - 5.5).abs() < 1e-9);
    }
}
