//! Overload-safe serving: the adversarial socket-protocol suite plus the
//! fault-injected behavioral guarantees of `QueryServer`.
//!
//! What is pinned here:
//! * the TCP front end answers every well-formed frame on a connection —
//!   frames split across arbitrary writes, frames packed several per
//!   write, trailing garbage, oversized lines, mid-request disconnects,
//!   and stalled clients never panic the server or wedge its workers;
//! * a thundering herd of identical queries against a cold cache decodes
//!   exactly once (exact `query.cache.miss` + coalesce accounting across
//!   8 threads);
//! * the same `FaultPlan` seed on the serving path produces an identical
//!   shed/deadline/failure report — the PR 2 determinism guarantee
//!   extended to serving;
//! * a worker death poisons only its in-flight request, the pool
//!   respawns, and the admission queue never exceeds its bound.

use ibis_analysis::SubsetQuery;
use ibis_core::{Binner, BitmapIndex};
use ibis_insitu::fault::INJECTED_PANIC_PREFIX;
use ibis_insitu::{
    CachedStore, DeadlineStage, FaultPlan, QueryEngine, QueryRequest, QueryServer, ServeConfig,
    ServeError, SocketServer, Store, StoreWriter,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn make_store(name: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ibis-serving-test-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).unwrap();
    for step in [0usize, 1] {
        let temp: Vec<f64> = (0..3000)
            .map(|i| ((i * 7 + step * 13) % 300) as f64 / 10.0)
            .collect();
        let salt: Vec<f64> = temp.iter().map(|t| 30.0 + t / 10.0).collect();
        w.put(
            step,
            "temperature",
            &BitmapIndex::build(&temp, Binner::fixed_width(0.0, 30.0, 64)),
        )
        .unwrap();
        w.put(
            step,
            "salinity",
            &BitmapIndex::build(&salt, Binner::fixed_width(29.0, 34.0, 64)),
        )
        .unwrap();
    }
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

fn start(store: Store, cfg: ServeConfig) -> Arc<QueryServer> {
    Arc::new(QueryServer::start(QueryEngine::new(CachedStore::new(store, 64 << 20)), cfg).unwrap())
}

/// A family of distinct subset requests (distinct value windows), so
/// tests control exactly which submissions coalesce.
fn subset(i: u32) -> QueryRequest {
    let lo = f64::from(i) * 0.01;
    QueryRequest::Subset {
        step: 0,
        variable: "temperature".into(),
        query: SubsetQuery::value(lo, lo + 9.0),
    }
}

fn send_all(stream: &mut TcpStream, bytes: &[u8]) {
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
}

const FRAME: &str =
    r#"{"queries": [{"kind": "subset", "variable": "temperature", "value_range": [5, 20]}]}"#;

// ---------------------------------------------------------------------
// adversarial socket-protocol suite
// ---------------------------------------------------------------------

#[test]
fn socket_answers_frames_split_and_packed_arbitrarily() {
    let (dir, store) = make_store("split");
    let server = start(store, ServeConfig::default());
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // one frame dribbled in three writes with pauses between them
    let line = format!("{FRAME}\n");
    let bytes = line.as_bytes();
    for chunk in [&bytes[..10], &bytes[10..40], &bytes[40..]] {
        send_all(&mut stream, chunk);
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "split frame: {resp}");

    // two frames packed into a single write, answered in order
    send_all(&mut stream, format!("{FRAME}\n{FRAME}\n").as_bytes());
    for _ in 0..2 {
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\""), "packed frames: {resp}");
    }

    // a frame followed by trailing garbage (no newline) — the frame is
    // answered, the garbage is dropped with the disconnect
    send_all(&mut stream, format!("{FRAME}\n{{\"queries").as_bytes());
    resp.clear();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "frame before garbage: {resp}");
    drop(stream);
    drop(reader);

    // the server is still fine for the next connection
    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_all(&mut stream, format!("{FRAME}\n").as_bytes());
    resp.clear();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "post-garbage connection: {resp}");

    socket.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_rejects_garbage_lines_but_keeps_serving_the_connection() {
    let (dir, store) = make_store("garbage");
    let server = start(store, ServeConfig::default());
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    for garbage in [
        "this is not json",
        "{\"queries\": 7}",
        "[1, 2, 3]",
        "\u{1F980}\u{1F980}\u{1F980}",
    ] {
        send_all(&mut stream, format!("{garbage}\n").as_bytes());
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(
            resp.contains("\"kind\": \"bad_request\""),
            "garbage {garbage:?}: {resp}"
        );
        // the same connection still answers a well-formed frame
        send_all(&mut stream, format!("{FRAME}\n").as_bytes());
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\""), "after garbage {garbage:?}: {resp}");
    }

    socket.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_closes_connections_that_exceed_the_frame_size_cap() {
    let (dir, store) = make_store("oversize");
    let cfg = ServeConfig {
        max_frame_bytes: 256,
        ..ServeConfig::default()
    };
    let server = start(store, cfg);
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // an endless line: the server must give up at the cap, answer with a
    // typed error, and close — not buffer without bound
    send_all(&mut stream, &b"x".repeat(4096));
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(
        resp.contains("\"kind\": \"bad_request\"") && resp.contains("exceeds"),
        "oversized line: {resp}"
    );
    resp.clear();
    assert_eq!(reader.read_line(&mut resp).unwrap(), 0, "must be closed");

    // fresh connections are unaffected
    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_all(&mut stream, format!("{FRAME}\n").as_bytes());
    resp.clear();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "post-oversize connection: {resp}");

    socket.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_survives_mid_request_disconnects() {
    let (dir, store) = make_store("disconnect");
    let server = start(store, ServeConfig::default());
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    // several clients hang up mid-frame
    for cut in [1usize, 17, 40] {
        let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
        send_all(&mut stream, &FRAME.as_bytes()[..cut]);
        drop(stream);
    }
    // ...and the server still answers the next well-formed request
    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_all(&mut stream, format!("{FRAME}\n").as_bytes());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "after disconnects: {resp}");

    socket.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_stalled_client_is_reaped_while_others_are_served() {
    let (dir, store) = make_store("stall");
    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(200),
        faults: FaultPlan::none().with_stalled_client(0),
        ..ServeConfig::default()
    };
    let server = start(store, cfg);
    let socket = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    // connection 0 is the injected stall: its frame gets no answer and
    // the read timeout eventually closes it
    let mut stalled = TcpStream::connect(socket.local_addr()).unwrap();
    send_all(&mut stalled, format!("{FRAME}\n").as_bytes());

    // a healthy connection is served while the stalled one is pending
    let mut stream = TcpStream::connect(socket.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_all(&mut stream, format!("{FRAME}\n").as_bytes());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\""), "healthy conn during stall: {resp}");

    // the stalled connection is reaped without an answer: either a clean
    // EOF or a reset (the server closed with our unread frame pending)
    let mut buf = Vec::new();
    match stalled.read_to_end(&mut buf) {
        Ok(_) => assert!(buf.is_empty(), "stalled conn must get no answer: {buf:?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    assert!(server
        .fault_events()
        .iter()
        .any(|e| e.contains("injected stalled client")));

    socket.stop();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// coalescing
// ---------------------------------------------------------------------

#[test]
fn thundering_herd_on_a_cold_cache_decodes_exactly_once() {
    let (dir, store) = make_store("coalesce");
    // slow the leader so all followers overlap its execution window
    let cfg = ServeConfig {
        faults: FaultPlan::none().with_slow_request(0, 150),
        ..ServeConfig::default()
    };
    let server = start(store, cfg);
    let req = subset(3);
    let barrier = Arc::new(Barrier::new(8));
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                scope.spawn(move || {
                    barrier.wait();
                    server.submit(&req, None)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(answers.iter().all(Result::is_ok));
    assert!(
        answers.iter().all(|a| *a == answers[0]),
        "fanned-out answers must be identical"
    );
    let cache = server.engine().cache_stats();
    let stats = server.stats();
    assert_eq!(
        cache.misses, 1,
        "8 identical cold queries must decode exactly once: {cache:?}"
    );
    assert_eq!(
        (stats.coalesce_leads, stats.coalesce_hits, stats.admitted),
        (1, 7, 1),
        "one leader, seven followers: {stats:?}"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// fault determinism + containment
// ---------------------------------------------------------------------

/// Stable tag for an outcome, for cross-run comparison.
fn tag(outcome: &Result<ibis_insitu::QueryAnswer, ServeError>) -> String {
    match outcome {
        Ok(_) => "ok".into(),
        Err(ServeError::Shed { .. }) => "shed".into(),
        Err(ServeError::Deadline { stage }) => format!("deadline:{}", stage.name()),
        Err(ServeError::WorkerPanic { .. }) => "panic".into(),
        Err(ServeError::Closed) => "closed".into(),
        Err(ServeError::Query(e)) => format!("query:{e}"),
    }
}

#[test]
fn same_fault_seed_gives_an_identical_serving_report() {
    let run = |seed: u64| {
        let (dir, store) = make_store(&format!("seed{seed}"));
        let cfg = ServeConfig {
            workers: 2,
            faults: FaultPlan::seeded_serving(seed, 40),
            ..ServeConfig::default()
        };
        let server = start(store, cfg);
        // serial driver: op order (and thus which requests hit which
        // injected fault) is fully deterministic
        let outcomes: Vec<String> = (0..40)
            .map(|i| tag(&server.submit(&subset(i), None)))
            .collect();
        let stats = server.stats();
        let events = server.fault_events();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        (outcomes, stats, events)
    };
    for seed in [7u64, 23, 1234] {
        let (o1, s1, e1) = run(seed);
        let (o2, s2, e2) = run(seed);
        assert_eq!(o1, o2, "seed {seed}: outcome report diverged");
        assert_eq!(s1, s2, "seed {seed}: stats diverged");
        assert_eq!(e1, e2, "seed {seed}: fault event log diverged");
        assert!(
            !e1.is_empty(),
            "seed {seed}: seeded serving plans always inject something"
        );
    }
}

#[test]
fn scripted_overload_burst_is_fully_deterministic() {
    let run = || {
        let (dir, store) = make_store("burst");
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            admission_timeout: Duration::ZERO,
            // request op 0 occupies the only worker for 300 ms
            faults: FaultPlan::none().with_slow_request(0, 300),
            ..ServeConfig::default()
        };
        let server = start(store, cfg);
        // op 0: admitted and dequeued by the lone worker, then slowed
        let blocker = server.submit_async(&subset(0), None).unwrap();
        let t0 = Instant::now();
        while !(server.stats().admitted == 1 && server.stats().queue_depth == 0) {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "worker never dequeued"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // two queued requests with a budget far shorter than the block:
        // both must be dropped at dequeue, not executed
        let q1 = server
            .submit_async(&subset(1), Some(Duration::from_millis(40)))
            .unwrap();
        let q2 = server
            .submit_async(&subset(2), Some(Duration::from_millis(40)))
            .unwrap();
        // the queue (capacity 2) is now full: further distinct requests
        // shed immediately and carry a retry hint
        let mut sheds = Vec::new();
        for i in [3u32, 4] {
            match server.submit_async(&subset(i), None) {
                Err(ServeError::Shed { retry_after_ms }) => sheds.push(retry_after_ms),
                other => panic!("expected shed, got {other:?}"),
            }
        }
        // let the worker drain the queue (its dequeue check drops both
        // expired jobs), so the tickets below read settled outcomes
        let t1 = Instant::now();
        while server.stats().ok + server.stats().deadline_dequeue < 3 {
            assert!(t1.elapsed() < Duration::from_secs(5), "burst never settled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = vec![
            tag(&blocker.wait()),
            tag(&q1.wait()),
            tag(&q2.wait()),
            format!("sheds:{}", sheds.len()),
        ];
        let stats = server.stats();
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        (report, stats)
    };
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(
        r1,
        vec![
            "ok".to_string(),
            "deadline:dequeue".to_string(),
            "deadline:dequeue".to_string(),
            "sheds:2".to_string(),
        ]
    );
    assert_eq!(r1, r2, "scripted burst report diverged");
    assert_eq!(
        (s1.admitted, s1.shed, s1.deadline_dequeue, s1.ok),
        (3, 2, 2, 1)
    );
    assert_eq!(
        (s1.admitted, s1.shed, s1.deadline_dequeue, s1.ok),
        (s2.admitted, s2.shed, s2.deadline_dequeue, s2.ok)
    );
}

#[test]
fn worker_death_poisons_only_its_request_and_the_pool_respawns() {
    let (dir, store) = make_store("death");
    let cfg = ServeConfig {
        workers: 2,
        faults: FaultPlan::none().with_worker_death_at(0),
        ..ServeConfig::default()
    };
    let server = start(store, cfg);

    let doomed = server.submit(&subset(0), None);
    let Err(ServeError::WorkerPanic { message }) = doomed else {
        panic!("request op 0 must be poisoned by the worker death, got {doomed:?}");
    };
    assert!(
        message.contains(INJECTED_PANIC_PREFIX),
        "panic message must carry the injected marker: {message}"
    );

    // the pool respawned: every subsequent request is served normally
    for i in 1..=8 {
        assert!(
            server.submit(&subset(i), None).is_ok(),
            "request {i} after death"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(stats.ok, 8);
    assert!(server
        .fault_events()
        .iter()
        .any(|e| e.contains("injected worker death")));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// deadlines + queue bound
// ---------------------------------------------------------------------

#[test]
fn deadlines_surface_with_their_stage() {
    let (dir, store) = make_store("stages");
    let cfg = ServeConfig {
        workers: 1,
        faults: FaultPlan::none().with_slow_request(1, 400),
        ..ServeConfig::default()
    };
    let server = start(store, cfg);
    // warm the path so op numbering below is exact
    assert!(server.submit(&subset(0), None).is_ok());

    // admission: a zero budget is dead on arrival
    assert_eq!(
        server.submit(&subset(1), Some(Duration::ZERO)),
        Err(ServeError::Deadline {
            stage: DeadlineStage::Admission
        })
    );

    // wait: the caller gives up while the slowed worker still runs; the
    // leader itself is then dropped at the engine's deadline check
    let err = server
        .submit(&subset(2), Some(Duration::from_millis(60)))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::Deadline {
            stage: DeadlineStage::Wait
        }
    );

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.deadline_admission, 1);
    assert!(
        stats.deadline_execution <= 1,
        "slowed leader resolves as at most one execution drop: {stats:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_occupancy_never_exceeds_the_configured_bound() {
    let (dir, store) = make_store("bound");
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        admission_timeout: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let server = start(store, cfg);
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                for i in 0..50u32 {
                    // distinct requests so coalescing can't mask pressure
                    let _ = server.submit_async(&subset(t * 50 + i), None);
                }
            });
        }
    });
    // drain, then check the high-water mark
    let t0 = Instant::now();
    while server.stats().queue_depth > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "queue never drained"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.stats();
    assert!(
        stats.queue_peak <= 4,
        "queue peak {} exceeded bound 4",
        stats.queue_peak
    );
    assert!(stats.admitted > 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
