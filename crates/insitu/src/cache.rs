//! A sharded, byte-budgeted LRU cache of decoded indices over a durable
//! [`Store`] — the warm read path of the query engine.
//!
//! [`Store::get`] re-reads, re-verifies, and re-decodes a blob on every
//! call; an interactive query session hits the same few `(variable, step)`
//! pairs over and over, so [`CachedStore`] keeps the decoded form resident:
//!
//! * each entry is an `Arc<MultiLevelIndex>` (low level = the stored index,
//!   high level derived once at `⌈√nbins⌉` grouping), so the planner's
//!   high-bin covering strategy is available on every cached read and
//!   concurrent readers share one decoded copy;
//! * entries are spread over fixed shards (key-hashed), each behind its own
//!   [`parking_lot::Mutex`] — readers of different shards never contend,
//!   and the underlying catalog is an `Arc<Store>` that is never mutated;
//! * decode happens *outside* any lock (a slow blob read stalls only the
//!   requesting thread), with a double-check on insert so a racing thread's
//!   copy wins and the loser's work is dropped;
//! * the byte budget is enforced per shard by last-used eviction; the entry
//!   just inserted is never evicted, so a single oversized index still
//!   serves (the budget is a high-water target, not a hard allocator).
//!
//! Counters (family `query.cache`, see DESIGN.md §6g):
//! `query.cache.{hits,misses,evictions}` and the gauge
//! `query.cache.resident_bytes`. Per-instance [`CacheStats`] mirror them so
//! tests and the CLI don't depend on global observability state.

use crate::error::Result;
use crate::store::{LossyCompanion, Store};
use ibis_core::{MultiLevelIndex, RowOrder, RowPermutation};
use ibis_obs::{LazyCounter, LazyGauge};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static OBS_CACHE_HITS: LazyCounter = LazyCounter::new("query.cache.hits");
static OBS_CACHE_MISSES: LazyCounter = LazyCounter::new("query.cache.misses");
static OBS_CACHE_EVICTIONS: LazyCounter = LazyCounter::new("query.cache.evictions");
static OBS_CACHE_RESIDENT: LazyGauge = LazyGauge::new("query.cache.resident_bytes");

/// Point-in-time counters of one [`CachedStore`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Reads served from a resident entry.
    pub hits: u64,
    /// Reads that had to decode from the store.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident across all shards.
    pub resident_bytes: u64,
}

struct Entry {
    index: Arc<MultiLevelIndex>,
    bytes: u64,
    last_used: u64,
}

/// A step's stored row order: which [`RowOrder`] produced it plus the
/// permutation to map stored rows back to original rows.
pub type StoredOrder = Arc<(RowOrder, RowPermutation)>;

/// Memoized lossy companions, keyed by `(variable, step)` (`None` = no
/// companion stored for that entry).
type LossyMemo = HashMap<(String, usize), Option<Arc<LossyCompanion>>>;

#[derive(Default)]
struct Shard {
    map: HashMap<(usize, String), Entry>,
    resident: u64,
}

/// A read-through cache of decoded two-level indices over a [`Store`],
/// safe to share across threads (`&self` everywhere, clone-cheap via the
/// inner `Arc`s).
pub struct CachedStore {
    store: Arc<Store>,
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    // Instance label for per-instance obs gauges (`query.cache.<label>.*`).
    // `None` publishes only the static `query.cache.stat.*` family.
    label: Option<String>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    // Row permutations, memoized per step (`None` = step stored in its
    // original order, also memoized so absence costs one store probe
    // total). Deliberately outside the byte budget: a permutation is 4
    // bytes/row — dwarfed by any decoded index over the same rows — and
    // evicting it would break in-flight queries' row mapping.
    orders: Mutex<HashMap<usize, Option<StoredOrder>>>,
    // Lossy superset companions, memoized per (variable, step) exactly
    // like `orders` (`None` = no companion stored, also memoized). Outside
    // the byte budget: a companion is a filter the engine consults before
    // the (much larger) exact index, so evicting it would defeat its
    // purpose precisely when the cache is under pressure.
    lossy: Mutex<LossyMemo>,
}

impl std::fmt::Debug for CachedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedStore")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a over the key, for shard selection.
fn shard_of(step: usize, variable: &str, nshards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in variable
        .as_bytes()
        .iter()
        .copied()
        .chain(step.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % nshards as u64) as usize
}

impl CachedStore {
    /// Default shard count: enough to keep a handful of reader threads off
    /// each other's locks without scattering the budget too thin.
    const DEFAULT_SHARDS: usize = 8;

    /// Wraps a store with a cache holding at most ~`budget_bytes` of
    /// decoded indices (enforced per shard).
    pub fn new(store: Store, budget_bytes: u64) -> Self {
        Self::with_shards(store, budget_bytes, Self::DEFAULT_SHARDS)
    }

    /// [`CachedStore::new`] with an explicit shard count (min 1).
    pub fn with_shards(store: Store, budget_bytes: u64, nshards: usize) -> Self {
        let nshards = nshards.max(1);
        CachedStore {
            store: Arc::new(store),
            shards: (0..nshards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / nshards as u64,
            label: None,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            orders: Mutex::new(HashMap::new()),
            lossy: Mutex::new(HashMap::new()),
        }
    }

    /// Names this instance for per-instance obs gauges: [`publish_obs`]
    /// additionally sets `query.cache.<label>.{hits,misses,evictions,`
    /// `resident_bytes}`, so a process fronting several caches (one per
    /// spatial shard, say) exposes each one's residency separately.
    ///
    /// [`publish_obs`]: CachedStore::publish_obs
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The instance label set by [`CachedStore::with_label`], if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The underlying read-only catalog.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The total byte budget this cache enforces (sum over lock shards).
    pub fn budget_bytes(&self) -> u64 {
        self.shard_budget * self.shards.len() as u64
    }

    /// Evicts entries whose step fails `keep`, regardless of recency, and
    /// returns the bytes freed. Maintenance hook: after a selection pass
    /// decides which steps stay hot, the rest stop occupying budget.
    pub fn evict_retain(&self, keep: impl Fn(usize) -> bool) -> u64 {
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock();
            let victims: Vec<_> = s
                .map
                .keys()
                .filter(|(step, _)| !keep(*step))
                .cloned()
                .collect();
            for key in victims {
                if let Some(e) = s.map.remove(&key) {
                    s.resident -= e.bytes;
                    freed += e.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    OBS_CACHE_EVICTIONS.inc();
                }
            }
        }
        OBS_CACHE_RESIDENT.add(-(freed as i64));
        freed
    }

    /// Evicts least-recently-used entries until total residency is at or
    /// under `target_bytes` (applied per lock shard as an even split), and
    /// returns the bytes freed. Unlike the insert-path eviction this may
    /// empty a shard completely — a maintenance tier squeezing an idle
    /// cache below its serving budget.
    pub fn evict_to(&self, target_bytes: u64) -> u64 {
        let per_shard = target_bytes / self.shards.len() as u64;
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock();
            while s.resident > per_shard {
                let victim = s
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else { break };
                if let Some(e) = s.map.remove(&victim) {
                    s.resident -= e.bytes;
                    freed += e.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    OBS_CACHE_EVICTIONS.inc();
                }
            }
        }
        OBS_CACHE_RESIDENT.add(-(freed as i64));
        freed
    }

    /// Reads `(variable, step)` through the cache: a resident entry is
    /// shared via `Arc`, a miss decodes outside the shard lock and then
    /// inserts (first racer wins), evicting least-recently-used entries
    /// past the shard's byte budget.
    pub fn get(&self, variable: &str, step: usize) -> Result<Arc<MultiLevelIndex>> {
        let key = (step, variable.to_string());
        let shard = &self.shards[shard_of(step, variable, self.shards.len())];
        {
            let mut s = shard.lock();
            if let Some(e) = s.map.get_mut(&key) {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                OBS_CACHE_HITS.inc();
                return Ok(Arc::clone(&e.index));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        OBS_CACHE_MISSES.inc();
        // Decode with no lock held: a cold blob stalls only this reader.
        let low = self.store.load_bitmap(variable, step)?;
        let group = (low.nbins() as f64).sqrt().ceil().max(1.0) as usize;
        let ml = Arc::new(MultiLevelIndex::from_low(low, group));
        let bytes = ml.size_bytes() as u64;

        let mut s = shard.lock();
        if let Some(e) = s.map.get_mut(&key) {
            // Another thread decoded the same blob while we did; its copy
            // is already shared — drop ours.
            e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.index));
        }
        s.map.insert(
            key.clone(),
            Entry {
                index: Arc::clone(&ml),
                bytes,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        s.resident += bytes;
        let mut delta = bytes as i64;
        while s.resident > self.shard_budget && s.map.len() > 1 {
            let victim = s
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = s.map.remove(&victim) {
                s.resident -= e.bytes;
                delta -= e.bytes as i64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                OBS_CACHE_EVICTIONS.inc();
            }
        }
        OBS_CACHE_RESIDENT.add(delta);
        Ok(ml)
    }

    /// The row order and permutation `step` was ingested under, or `None`
    /// for identity-order steps, memoized across calls (see the `orders`
    /// field note on why permutations sit outside the byte budget). A
    /// corrupt permutation blob surfaces as [`crate::error::IbisError::Corrupt`]
    /// on every call rather than being cached — the caller decides whether
    /// to fsck.
    pub fn get_order(&self, step: usize) -> Result<Option<StoredOrder>> {
        if let Some(cached) = self.orders.lock().get(&step) {
            return Ok(cached.clone());
        }
        // Load outside the lock; a racing thread's copy wins below.
        let loaded = self.store.load_order(step)?.map(Arc::new);
        Ok(self.orders.lock().entry(step).or_insert(loaded).clone())
    }

    /// The lossy superset companion stored for `(variable, step)`, or
    /// `None` when the run wrote none, memoized across calls (see the
    /// `lossy` field note on why companions sit outside the byte budget).
    /// A corrupt companion blob surfaces as
    /// [`crate::error::IbisError::Corrupt`] on every call rather than
    /// being cached.
    pub fn get_lossy(&self, variable: &str, step: usize) -> Result<Option<Arc<LossyCompanion>>> {
        let key = (variable.to_string(), step);
        if let Some(cached) = self.lossy.lock().get(&key) {
            return Ok(cached.clone());
        }
        // Load outside the lock; a racing thread's copy wins below.
        let loaded = self.store.load_lossy(step, variable)?.map(Arc::new);
        Ok(self.lossy.lock().entry(key).or_insert(loaded).clone())
    }

    /// This instance's counters (independent of the global obs registry,
    /// so tests running in parallel see only their own cache).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.shards.iter().map(|s| s.lock().resident).sum(),
        }
    }

    /// Publishes this instance's [`CacheStats`] into the obs registry as
    /// `query.cache.stat.*` gauges plus `query.cache.hit_ratio_pct`, so a
    /// server's hit ratio lands in `--obs-json` snapshots (the global
    /// `query.cache.{hits,misses}` counters aggregate *every* cache in
    /// the process; these gauges are this instance's view). Call it right
    /// before snapshotting; a no-op in the no-op obs build.
    pub fn publish_obs(&self) {
        static OBS_STAT_HITS: LazyGauge = LazyGauge::new("query.cache.stat.hits");
        static OBS_STAT_MISSES: LazyGauge = LazyGauge::new("query.cache.stat.misses");
        static OBS_STAT_EVICTIONS: LazyGauge = LazyGauge::new("query.cache.stat.evictions");
        static OBS_STAT_RESIDENT: LazyGauge = LazyGauge::new("query.cache.stat.resident_bytes");
        static OBS_HIT_RATIO: LazyGauge = LazyGauge::new("query.cache.hit_ratio_pct");
        let s = self.stats();
        OBS_STAT_HITS.set(s.hits as i64);
        OBS_STAT_MISSES.set(s.misses as i64);
        OBS_STAT_EVICTIONS.set(s.evictions as i64);
        OBS_STAT_RESIDENT.set(s.resident_bytes as i64);
        if let Some(pct) = (s.hits * 100).checked_div(s.hits + s.misses) {
            OBS_HIT_RATIO.set(pct as i64);
        }
        // Per-instance gauges under the label, registered lazily by name.
        // Gated on ENABLED so the no-op obs build registers nothing.
        if ibis_obs::ENABLED {
            if let Some(label) = &self.label {
                let reg = ibis_obs::global();
                reg.gauge(&format!("query.cache.{label}.hits"))
                    .set(s.hits as i64);
                reg.gauge(&format!("query.cache.{label}.misses"))
                    .set(s.misses as i64);
                reg.gauge(&format!("query.cache.{label}.evictions"))
                    .set(s.evictions as i64);
                reg.gauge(&format!("query.cache.{label}.resident_bytes"))
                    .set(s.resident_bytes as i64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreWriter;
    use ibis_core::{Binner, BitmapIndex};
    use std::path::PathBuf;

    fn sample_index(seed: usize) -> BitmapIndex {
        let data: Vec<f64> = (0..2000).map(|i| ((i * (seed + 3)) % 40) as f64).collect();
        BitmapIndex::build(&data, Binner::distinct_ints(0, 39))
    }

    fn store_with(name: &str, steps: &[usize], vars: &[&str]) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("ibis-cache-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = StoreWriter::create(&dir).unwrap();
        for &s in steps {
            for (i, v) in vars.iter().enumerate() {
                w.put(s, v, &sample_index(s + i * 7)).unwrap();
            }
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn hit_returns_shared_decoded_index() {
        let (dir, store) = store_with("hit", &[0, 1], &["temperature"]);
        let cache = CachedStore::new(store, 64 << 20);
        let a = cache.get("temperature", 0).unwrap();
        let b = cache.get("temperature", 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the decoded copy");
        assert_eq!(a.low().counts(), sample_index(0).counts());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert!(st.resident_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let (dir, store) = store_with("evict", &[0, 1, 2, 3], &["temperature"]);
        let one = {
            let low = sample_index(0);
            MultiLevelIndex::from_low(low, 7).size_bytes() as u64
        };
        // one shard, room for ~2 entries
        let cache = CachedStore::with_shards(store, 2 * one + one / 2, 1);
        for s in [0usize, 1, 2, 3] {
            cache.get("temperature", s).unwrap();
        }
        let st = cache.stats();
        assert!(st.evictions >= 1, "budget must force evictions: {st:?}");
        assert!(
            st.resident_bytes <= 3 * one,
            "resident {} must stay near budget",
            st.resident_bytes
        );
        // step 3 is the most recent entry: still a hit
        cache.get("temperature", 3).unwrap();
        assert_eq!(cache.stats().hits, 1);
        // step 0 was evicted: a second read is a miss, but still correct
        let again = cache.get("temperature", 0).unwrap();
        assert_eq!(again.low().counts(), sample_index(0).counts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_obs_exports_stats_as_gauges() {
        let (dir, store) = store_with("publish", &[0, 1], &["temperature"]);
        let cache = CachedStore::new(store, 64 << 20);
        cache.get("temperature", 0).unwrap();
        cache.get("temperature", 0).unwrap();
        cache.get("temperature", 1).unwrap();
        cache.publish_obs();
        if ibis_obs::ENABLED {
            let snap = ibis_obs::global().snapshot();
            let gauge = |name: &str| match snap.get(name) {
                Some(ibis_obs::MetricValue::Gauge { value, .. }) => *value,
                other => panic!("{name}: expected gauge, got {other:?}"),
            };
            // Other parallel tests share the global registry, but these
            // gauges are only set by publish_obs on *this* instance (the
            // only caller in the lib test binary), so values are exact.
            assert_eq!(gauge("query.cache.stat.hits"), 1);
            assert_eq!(gauge("query.cache.stat.misses"), 2);
            assert_eq!(gauge("query.cache.stat.evictions"), 0);
            assert!(gauge("query.cache.stat.resident_bytes") > 0);
            assert_eq!(gauge("query.cache.hit_ratio_pct"), 33);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_entry_still_serves() {
        let (dir, store) = store_with("oversize", &[0], &["temperature"]);
        let cache = CachedStore::with_shards(store, 1, 1); // 1-byte budget
        let idx = cache.get("temperature", 0).unwrap();
        assert_eq!(idx.low().counts(), sample_index(0).counts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serves_tagged_and_untagged_blobs_alike() {
        // Scattered data stores under the tagged IBB3 frame (per-bin
        // Roaring/mixed plans), smooth data under the legacy IBB2 frame —
        // the cache's decode path must serve both transparently.
        let dir = std::env::temp_dir().join("ibis-cache-codecs");
        std::fs::remove_dir_all(&dir).ok();
        let scattered = sample_index(0);
        let smooth = {
            let data: Vec<f64> = (0..20_000).map(|i| (i / 500) as f64).collect();
            BitmapIndex::build(&data, Binner::distinct_ints(0, 39))
        };
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &scattered).unwrap();
        w.put(1, "temperature", &smooth).unwrap();
        w.finish().unwrap();
        let blob0 = std::fs::read(dir.join("s000000_temperature.ibis")).unwrap();
        let blob1 = std::fs::read(dir.join("s000001_temperature.ibis")).unwrap();
        assert_eq!(&blob0[..4], b"IBB3", "scattered bins must store tagged");
        assert_eq!(&blob1[..4], b"IBB2", "smooth bins must stay untagged");

        let cache = CachedStore::new(Store::open(&dir).unwrap(), 64 << 20);
        assert_eq!(
            cache.get("temperature", 0).unwrap().low().counts(),
            scattered.counts()
        );
        assert_eq!(
            cache.get("temperature", 1).unwrap().low().counts(),
            smooth.counts()
        );
        assert!(Arc::ptr_eq(
            &cache.get("temperature", 0).unwrap(),
            &cache.get("temperature", 0).unwrap()
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_order_memoizes_presence_and_absence() {
        let dir = std::env::temp_dir().join("ibis-cache-order");
        std::fs::remove_dir_all(&dir).ok();
        let data: Vec<f64> = (0..2000).map(|i| ((i * 3) % 40) as f64).collect();
        let binner = Binner::distinct_ints(0, 39);
        let order = RowOrder::HistogramSorted;
        let perm = order.permutation(&[], &binner, &data).unwrap();
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(
            0,
            "temperature",
            &BitmapIndex::build_permuted(&data, binner, &perm),
        )
        .unwrap();
        w.put_order(0, order, &perm).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();

        let cache = CachedStore::new(Store::open(&dir).unwrap(), 64 << 20);
        let a = cache.get_order(0).unwrap().unwrap();
        let b = cache.get_order(0).unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat lookups must share the Arc");
        assert_eq!(a.0, order);
        assert_eq!(a.1, perm);
        assert_eq!(cache.get_order(1).unwrap(), None);
        assert_eq!(cache.get_order(1).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_retain_drops_only_unkept_steps() {
        let (dir, store) = store_with("retain", &[0, 1, 2], &["temperature"]);
        let cache = CachedStore::new(store, 64 << 20);
        for s in [0usize, 1, 2] {
            cache.get("temperature", s).unwrap();
        }
        let before = cache.stats().resident_bytes;
        let freed = cache.evict_retain(|step| step == 1);
        assert!(freed > 0);
        let st = cache.stats();
        assert_eq!(st.resident_bytes, before - freed);
        assert_eq!(st.evictions, 2);
        // step 1 kept: still a hit; steps 0 and 2 re-decode
        cache.get("temperature", 1).unwrap();
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_to_squeezes_below_target() {
        let (dir, store) = store_with("squeeze", &[0, 1, 2, 3], &["temperature"]);
        let cache = CachedStore::with_shards(store, 64 << 20, 1);
        for s in [0usize, 1, 2, 3] {
            cache.get("temperature", s).unwrap();
        }
        let freed = cache.evict_to(0);
        assert!(freed > 0);
        assert_eq!(
            cache.stats().resident_bytes,
            0,
            "target 0 empties the cache"
        );
        // still serves after a full squeeze
        assert_eq!(
            cache.get("temperature", 2).unwrap().low().counts(),
            sample_index(2).counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labeled_instance_publishes_per_instance_gauges() {
        let (dir, store) = store_with("label", &[0], &["temperature"]);
        let cache = CachedStore::new(store, 64 << 20).with_label("shard007");
        assert_eq!(cache.label(), Some("shard007"));
        cache.get("temperature", 0).unwrap();
        cache.get("temperature", 0).unwrap();
        cache.publish_obs();
        if ibis_obs::ENABLED {
            let snap = ibis_obs::global().snapshot();
            let gauge = |name: &str| match snap.get(name) {
                Some(ibis_obs::MetricValue::Gauge { value, .. }) => *value,
                other => panic!("{name}: expected gauge, got {other:?}"),
            };
            assert_eq!(gauge("query.cache.shard007.hits"), 1);
            assert_eq!(gauge("query.cache.shard007.misses"), 1);
            assert!(gauge("query.cache.shard007.resident_bytes") > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_entry_surfaces_not_found() {
        let (dir, store) = store_with("miss", &[0], &["temperature"]);
        let cache = CachedStore::new(store, 1 << 20);
        let err = cache.get("salinity", 0).unwrap_err();
        assert!(matches!(err, crate::error::IbisError::NotFound { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
