//! A byte-aligned run-length bitmap code in the style of BBC
//! (Antoshenkov '95), the other compression family the paper cites
//! alongside WAH: byte granularity compresses better (no 31-bit rounding,
//! 1-byte headers), while word-aligned WAH trades space for faster bitwise
//! operations. The codec-comparison bench quantifies the tradeoff on our
//! workloads.
//!
//! Encoding: a stream of 1-byte headers.
//!
//! * `1 f nnnnnn` — a fill of `nnnnnn` (1–63) bytes of `f`-bits.
//! * `0 nnnnnnn` — `nnnnnnn` (1–127) literal bytes follow verbatim.
//!
//! A trailing partial byte is stored as a literal (its bit count comes from
//! the vector's stored length). This is a faithful simplification of BBC —
//! full BBC additionally packs "odd bit" positions into headers, which
//! improves sparse cases further but does not change the comparison's
//! shape.

/// A byte-aligned compressed bitvector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbcVec {
    bytes: Vec<u8>,
    len_bits: u64,
}

const FILL_FLAG: u8 = 0x80;
const FILL_BIT: u8 = 0x40;
const FILL_MAX: usize = 0x3F; // 63 bytes per fill header
const LIT_MAX: usize = 0x7F; // 127 bytes per literal header

impl BbcVec {
    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        // gather into bytes first (LSB-first within a byte, as in WAH)
        let mut raw = Vec::new();
        let mut cur = 0u8;
        let mut n = 0u64;
        for bit in bits {
            if bit {
                cur |= 1 << (n % 8);
            }
            n += 1;
            if n.is_multiple_of(8) {
                raw.push(cur);
                cur = 0;
            }
        }
        let tail_bits = (n % 8) as usize;
        if tail_bits > 0 {
            raw.push(cur);
        }
        // encode whole bytes (a partial tail byte is always literal)
        let whole = if tail_bits > 0 {
            raw.len() - 1
        } else {
            raw.len()
        };
        let mut bytes = Vec::new();
        let mut i = 0;
        while i < whole {
            let b = raw[i];
            if b == 0x00 || b == 0xFF {
                let mut run = 1;
                while i + run < whole && raw[i + run] == b && run < FILL_MAX {
                    run += 1;
                }
                let mut header = FILL_FLAG | run as u8;
                if b == 0xFF {
                    header |= FILL_BIT;
                }
                bytes.push(header);
                i += run;
            } else {
                let start = i;
                while i < whole && raw[i] != 0x00 && raw[i] != 0xFF && i - start < LIT_MAX {
                    i += 1;
                }
                bytes.push((i - start) as u8);
                bytes.extend_from_slice(&raw[start..i]);
            }
        }
        if tail_bits > 0 {
            bytes.push(1u8); // literal header for the tail byte
            bytes.push(raw[whole]);
        }
        BbcVec { bytes, len_bits: n }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len_bits
    }

    /// `true` when the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len() + std::mem::size_of::<BbcVec>()
    }

    /// Iterates the decoded bytes (the final byte may be partial; the
    /// caller masks by `len`).
    fn iter_bytes(&self) -> BbcBytes<'_> {
        BbcBytes {
            bytes: &self.bytes,
            pos: 0,
            pending: Pending::None,
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut bit = 0u64;
        let mut it = self.iter_bytes();
        while let Some(b) = it.next_byte() {
            let width = (self.len_bits - bit).min(8);
            let mask = if width == 8 { 0xFF } else { (1u8 << width) - 1 };
            total += (b & mask).count_ones() as u64;
            bit += width;
        }
        total
    }

    /// Decompresses into bools.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len_bits as usize);
        let mut it = self.iter_bytes();
        while let Some(b) = it.next_byte() {
            for j in 0..8 {
                if (out.len() as u64) < self.len_bits {
                    out.push(b & (1 << j) != 0);
                }
            }
        }
        out
    }

    /// `popcount(self AND other)` via a header-level run merge: fill×fill
    /// overlaps cost O(1) (a 0-fill on either side contributes nothing, a
    /// 1-fill×1-fill overlap contributes `8·bytes`), 1-fill×literal
    /// popcounts the literal slice, and only literal×literal overlaps pay
    /// the byte-wise AND. On run-structured data this is the difference
    /// between O(headers) and O(decoded bytes) — see `BENCH_codecs.json`
    /// (`bbc_header_merge_over_bytewise_speedup`).
    pub fn and_count(&self, other: &BbcVec) -> u64 {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch");
        let nbytes = self.len_bits.div_ceil(8);
        let tail_mask: u8 = if self.len_bits.is_multiple_of(8) {
            0xFF
        } else {
            (1u8 << (self.len_bits % 8)) - 1
        };
        let mut a = SegCursor::new(&self.bytes);
        let mut b = SegCursor::new(&other.bytes);
        let mut total = 0u64;
        let mut byte_pos = 0u64;
        while a.refill() && b.refill() {
            let k = a.avail().min(b.avail());
            // only the stream's final byte can be partial
            let has_tail = byte_pos + k as u64 == nbytes && tail_mask != 0xFF;
            total += match (a.fill, b.fill) {
                (Some(false), _) | (_, Some(false)) => 0,
                (Some(true), Some(true)) => {
                    if has_tail {
                        8 * (k as u64 - 1) + tail_mask.count_ones() as u64
                    } else {
                        8 * k as u64
                    }
                }
                (Some(true), None) => popcount_masked(&b.lit[..k], has_tail, tail_mask),
                (None, Some(true)) => popcount_masked(&a.lit[..k], has_tail, tail_mask),
                (None, None) => {
                    let mut ones = 0u64;
                    for (i, (&x, &y)) in a.lit[..k].iter().zip(&b.lit[..k]).enumerate() {
                        let m = if has_tail && i == k - 1 {
                            tail_mask
                        } else {
                            0xFF
                        };
                        ones += (x & y & m).count_ones() as u64;
                    }
                    ones
                }
            };
            a.advance(k);
            b.advance(k);
            byte_pos += k as u64;
        }
        total
    }

    /// The pre-merge byte-at-a-time `and_count`, kept callable as the A/B
    /// baseline the codec shootout reports against (mirroring how
    /// `legacy-kernels` anchors the WAH kernels).
    pub fn and_count_bytewise(&self, other: &BbcVec) -> u64 {
        assert_eq!(self.len_bits, other.len_bits, "length mismatch");
        let mut total = 0u64;
        let mut bit = 0u64;
        let mut ia = self.iter_bytes();
        let mut ib = other.iter_bytes();
        while let (Some(a), Some(b)) = (ia.next_byte(), ib.next_byte()) {
            let width = (self.len_bits - bit).min(8);
            let mask = if width == 8 { 0xFF } else { (1u8 << width) - 1 };
            total += (a & b & mask).count_ones() as u64;
            bit += width;
        }
        total
    }

    /// The encoded header+literal stream (the store's blob payload for
    /// BBC-tagged bins).
    pub fn encoded_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reassembles a vector from an encoded stream (inverse of
    /// [`BbcVec::encoded_bytes`] plus the stored length), validating the
    /// structure so a corrupt blob is an error, never a panic: every header
    /// must be in bounds with a non-zero count, literal payloads must be
    /// present, and the decoded byte total must match `len_bits`.
    pub fn from_encoded(bytes: Vec<u8>, len_bits: u64) -> Result<BbcVec, String> {
        let mut pos = 0usize;
        let mut decoded = 0u64;
        while pos < bytes.len() {
            let h = bytes[pos];
            pos += 1;
            if h & FILL_FLAG != 0 {
                let n = (h & FILL_MAX as u8) as u64;
                if n == 0 {
                    return Err(format!("bbc: zero-length fill header at {}", pos - 1));
                }
                decoded += 8 * n;
            } else {
                let n = h as usize;
                if n == 0 {
                    return Err(format!("bbc: zero-length literal header at {}", pos - 1));
                }
                if pos + n > bytes.len() {
                    return Err(format!(
                        "bbc: literal of {n} bytes at {} overruns stream of {}",
                        pos - 1,
                        bytes.len()
                    ));
                }
                pos += n;
                decoded += 8 * n as u64;
            }
        }
        if decoded != len_bits.div_ceil(8) * 8 {
            return Err(format!(
                "bbc: stream decodes {decoded} bits, length {len_bits} needs {}",
                len_bits.div_ceil(8) * 8
            ));
        }
        Ok(BbcVec { bytes, len_bits })
    }
}

/// Popcount of a byte slice, with the final byte masked when it is the
/// stream's partial tail.
fn popcount_masked(bytes: &[u8], has_tail: bool, tail_mask: u8) -> u64 {
    let mut ones: u64 = bytes.iter().map(|&b| b.count_ones() as u64).sum();
    if has_tail {
        if let Some(&last) = bytes.last() {
            ones -= (last & !tail_mask).count_ones() as u64;
        }
    }
    ones
}

/// A cursor over the encoded stream at header granularity: the current
/// segment is either a fill (`fill = Some(bit)`, `fill_left` bytes) or a
/// literal (`lit` holds the remaining bytes), consumable in partial steps —
/// what lets `and_count` merge run overlaps in O(1).
struct SegCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    fill: Option<bool>,
    fill_left: usize,
    lit: &'a [u8],
}

impl<'a> SegCursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        SegCursor {
            bytes,
            pos: 0,
            fill: None,
            fill_left: 0,
            lit: &[],
        }
    }

    /// Bytes remaining in the current segment.
    fn avail(&self) -> usize {
        if self.fill.is_some() {
            self.fill_left
        } else {
            self.lit.len()
        }
    }

    /// Consumes `k` bytes of the current segment.
    fn advance(&mut self, k: usize) {
        if self.fill.is_some() {
            self.fill_left -= k;
            if self.fill_left == 0 {
                self.fill = None;
            }
        } else {
            self.lit = &self.lit[k..];
        }
    }

    /// Ensures a current segment, decoding the next header if needed;
    /// `false` at end of stream.
    fn refill(&mut self) -> bool {
        if self.fill.is_some() || !self.lit.is_empty() {
            return true;
        }
        let Some(&h) = self.bytes.get(self.pos) else {
            return false;
        };
        self.pos += 1;
        if h & FILL_FLAG != 0 {
            self.fill = Some(h & FILL_BIT != 0);
            self.fill_left = (h & FILL_MAX as u8) as usize;
        } else {
            let n = h as usize;
            self.lit = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
        }
        true
    }
}

enum Pending {
    None,
    Fill { byte: u8, left: usize },
    Literal { left: usize },
}

struct BbcBytes<'a> {
    bytes: &'a [u8],
    pos: usize,
    pending: Pending,
}

impl BbcBytes<'_> {
    fn next_byte(&mut self) -> Option<u8> {
        loop {
            match &mut self.pending {
                Pending::Fill { byte, left } => {
                    if *left > 0 {
                        *left -= 1;
                        return Some(*byte);
                    }
                    self.pending = Pending::None;
                }
                Pending::Literal { left } => {
                    if *left > 0 {
                        *left -= 1;
                        let b = self.bytes[self.pos];
                        self.pos += 1;
                        return Some(b);
                    }
                    self.pending = Pending::None;
                }
                Pending::None => {
                    let header = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    self.pending = if header & FILL_FLAG != 0 {
                        let byte = if header & FILL_BIT != 0 { 0xFF } else { 0x00 };
                        Pending::Fill {
                            byte,
                            left: (header & 0x3F) as usize,
                        }
                    } else {
                        Pending::Literal {
                            left: header as usize,
                        }
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WahVec;

    fn patterns() -> Vec<Vec<bool>> {
        vec![
            vec![],
            vec![true],
            vec![false; 7],
            vec![true; 8],
            vec![true; 1000],
            (0..100).map(|i| i % 3 == 0).collect(),
            (0..511).map(|i| i > 200 && i < 300).collect(),
            (0..4096).map(|i| (i * 31) % 97 < 5).collect(),
        ]
    }

    #[test]
    fn roundtrip() {
        for bits in patterns() {
            let v = BbcVec::from_bits(bits.iter().copied());
            assert_eq!(v.len(), bits.len() as u64);
            assert_eq!(v.to_bools(), bits, "len {}", bits.len());
        }
    }

    #[test]
    fn count_matches_naive() {
        for bits in patterns() {
            let v = BbcVec::from_bits(bits.iter().copied());
            let want = bits.iter().filter(|&&b| b).count() as u64;
            assert_eq!(v.count_ones(), want);
        }
    }

    #[test]
    fn and_count_matches_wah() {
        let a_bits: Vec<bool> = (0..3000).map(|i| (i / 100) % 3 == 0).collect();
        let b_bits: Vec<bool> = (0..3000).map(|i| (i / 70) % 4 == 0).collect();
        let ba = BbcVec::from_bits(a_bits.iter().copied());
        let bb = BbcVec::from_bits(b_bits.iter().copied());
        let wa = WahVec::from_bits(a_bits.iter().copied());
        let wb = WahVec::from_bits(b_bits.iter().copied());
        assert_eq!(ba.and_count(&bb), wa.and_count(&wb));
    }

    #[test]
    fn header_merge_and_count_matches_bytewise() {
        let ps = patterns();
        for a_bits in &ps {
            for b_bits in &ps {
                if a_bits.len() != b_bits.len() {
                    continue;
                }
                let a = BbcVec::from_bits(a_bits.iter().copied());
                let b = BbcVec::from_bits(b_bits.iter().copied());
                assert_eq!(
                    a.and_count(&b),
                    a.and_count_bytewise(&b),
                    "len {}",
                    a_bits.len()
                );
            }
        }
        // adversarial: misaligned fills, partial tails, long literals
        for n in [1usize, 7, 8, 9, 63 * 8, 63 * 8 + 3, 4096, 100_003] {
            let a_bits: Vec<bool> = (0..n).map(|i| (i / 200) % 5 == 0).collect();
            let b_bits: Vec<bool> = (0..n).map(|i| (i * 13) % 17 < 6).collect();
            let a = BbcVec::from_bits(a_bits.iter().copied());
            let b = BbcVec::from_bits(b_bits.iter().copied());
            let want = a_bits
                .iter()
                .zip(&b_bits)
                .filter(|&(&x, &y)| x && y)
                .count() as u64;
            assert_eq!(a.and_count(&b), want, "len {n}");
            assert_eq!(a.and_count_bytewise(&b), want, "len {n}");
        }
    }

    #[test]
    fn encoded_roundtrip_and_corruption_rejected() {
        for bits in patterns() {
            let v = BbcVec::from_bits(bits.iter().copied());
            let back = BbcVec::from_encoded(v.encoded_bytes().to_vec(), v.len()).unwrap();
            assert_eq!(back, v);
        }
        // truncated literal payload
        let v = BbcVec::from_bits((0..100).map(|i| i % 3 == 0));
        let mut bytes = v.encoded_bytes().to_vec();
        bytes.pop();
        assert!(BbcVec::from_encoded(bytes, v.len()).is_err());
        // wrong length
        assert!(BbcVec::from_encoded(v.encoded_bytes().to_vec(), v.len() + 8).is_err());
        // zero-count headers
        assert!(BbcVec::from_encoded(vec![FILL_FLAG], 0).is_err());
        assert!(BbcVec::from_encoded(vec![0u8], 0).is_err());
        // empty stream is the empty vector
        assert!(BbcVec::from_encoded(Vec::new(), 0).is_ok());
    }

    #[test]
    fn long_fills_are_tiny() {
        let v = BbcVec::from_bits((0..1_000_000).map(|_| false));
        // 125000 zero bytes / 63 per header ≈ 1985 headers
        assert!(v.size_bytes() < 2100, "{}", v.size_bytes());
    }

    #[test]
    fn byte_alignment_beats_wah_on_short_runs() {
        // runs of ~40 bits: too short for 31-bit fills to win, fine for
        // byte fills — the regime where BBC-style coding is denser
        let bits: Vec<bool> = (0..100_000).map(|i| (i / 40) % 2 == 0).collect();
        let bbc = BbcVec::from_bits(bits.iter().copied());
        let wah = WahVec::from_bits(bits.iter().copied());
        assert!(
            bbc.size_bytes() < wah.size_bytes(),
            "bbc {} vs wah {}",
            bbc.size_bytes(),
            wah.size_bytes()
        );
    }

    #[test]
    fn long_literal_stretch_crosses_header_limit() {
        // >127 consecutive non-fill bytes force multiple literal headers
        let bits: Vec<bool> = (0..8 * 300).map(|i| i % 7 < 3).collect();
        let v = BbcVec::from_bits(bits.iter().copied());
        assert_eq!(v.to_bools(), bits);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_count_length_mismatch() {
        let a = BbcVec::from_bits((0..8).map(|_| true));
        let b = BbcVec::from_bits((0..9).map(|_| true));
        let _ = a.and_count(&b);
    }
}
