//! A durable on-disk store for the in-situ phase's output: one directory
//! holding the selected time-steps' indices (one `.ibis` file per step per
//! variable) plus a manifest — the artifact a post-analysis session opens
//! instead of the raw simulation output.
//!
//! Because this store *replaces* the raw data, format v2 treats silent
//! corruption and partial writes as first-class failure modes:
//!
//! * every blob is framed and written via temp-file + rename, so a
//!   crashed writer never leaves a half-written blob under its final
//!   name. All-WAH indices keep the v2 frame `IBB2 | payload len (u64
//!   LE) | payload | CRC32-C (u32 LE)` byte-identically; indices whose
//!   codec plan includes a non-WAH bin use the tagged v3 frame `IBB3 |
//!   codec tag (u8) | payload len (u64 LE) | payload | CRC32-C (u32
//!   LE)`, where the tag is the uniform per-bin [`CodecId::tag`] or
//!   `0xFF` for a mixed plan; a step ingested under a non-identity
//!   [`RowOrder`] additionally persists its inverse permutation under the
//!   reserved [`ORDER_VARIABLE`] entry in the analogous `IBP1` frame
//!   (order tag in the `IBB3` tag position, outside the payload CRC);
//! * a `JOURNAL` records each durable blob as it lands (each line carries
//!   its own CRC, so a torn journal tail is detected and ignored) — an
//!   interrupted run can [`StoreWriter::resume`] and re-put idempotently;
//! * the `MANIFEST` carries a format header, per-entry length + CRC, and
//!   a whole-file CRC footer, all written atomically; [`Store::open`]
//!   refuses a manifest whose footer does not check out;
//! * [`Store::fsck`] verifies every blob end-to-end — framing, CRC,
//!   decode, and that an `IBB3` frame's codec tag matches the codecs
//!   actually present in the payload (the tag sits outside the payload
//!   CRC, so only this cross-check catches a tampered tag byte) — and
//!   quarantines the corrupt ones (renamed to `*.quarantined`), so
//!   [`Store::load_series`] afterwards returns exactly the uncorrupted
//!   steps.
//!
//! Layout:
//!
//! ```text
//! run-dir/
//!   MANIFEST            # "#IBIS-STORE v2", entry lines, "#END n crc"
//!   JOURNAL             # only while a run is in flight
//!   s000000_temperature.ibis
//!   s000005_temperature.ibis
//!   …
//! ```
//!
//! v1 directories (plain 3-field manifests, unframed blobs) still open
//! read-only for back-compat; they simply have no integrity metadata.

use crate::crc::crc32c;
use crate::error::{IbisError, Result};
use crate::fault::{FaultInjector, WriteFault};
use crate::io::{codec, write_atomic};
use ibis_core::{valid_fpr, BitmapIndex, CodecId, LossyStats, RowOrder, RowPermutation};
use ibis_obs::LazyCounter;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of an untagged (all-WAH) framed blob.
const BLOB_MAGIC: &[u8; 4] = b"IBB2";
/// Magic prefix of a codec-tagged framed blob.
const BLOB_MAGIC_TAGGED: &[u8; 4] = b"IBB3";
/// Magic prefix of a row-permutation framed blob (`IBP1 | order tag (u8) |
/// payload len (u64 LE) | payload | CRC32-C (u32 LE)`, the tag outside the
/// payload CRC exactly like `IBB3`'s codec tag).
const BLOB_MAGIC_PERM: &[u8; 4] = b"IBP1";
/// Magic prefix of a lossy-companion framed blob (`IBL1 | FPR class (u8) |
/// payload len (u64 LE) | payload | CRC32-C (u32 LE)`; the class byte sits
/// outside the payload CRC exactly like `IBB3`'s codec tag, so fsck
/// cross-checks it against the FPR recorded inside the payload).
const BLOB_MAGIC_LOSSY: &[u8; 4] = b"IBL1";
/// Frame codec tag meaning "bins use more than one codec".
const MIXED_TAG: u8 = 0xFF;
/// Reserved variable name a step's row permutation stores under. Passes
/// [`check_variable_name`] so the blob rides the ordinary entry / journal /
/// manifest machinery, but is hidden from [`Store::variables`] and refused
/// by [`StoreWriter::put`], so no data variable can collide with it.
pub const ORDER_VARIABLE: &str = "__order";
/// Reserved name prefix a variable's lossy companion index stores under
/// (`__lossy_<variable>`). Like [`ORDER_VARIABLE`] it passes
/// [`check_variable_name`] so the blob rides the ordinary entry / journal /
/// manifest machinery, but is hidden from [`Store::variables`] and refused
/// by [`StoreWriter::put`].
pub const LOSSY_PREFIX: &str = "__lossy_";
/// First line of a v2 manifest.
const MANIFEST_HEADER: &str = "#IBIS-STORE v2";
/// Untagged framing overhead: magic + u64 length + u32 CRC.
const FRAME_OVERHEAD: usize = 4 + 8 + 4;
/// Tagged framing overhead: magic + codec tag + u64 length + u32 CRC.
const FRAME_OVERHEAD_TAGGED: usize = 4 + 1 + 8 + 4;

/// What the store knows about one blob.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EntryMeta {
    file: String,
    /// On-disk (framed) length; `None` for legacy v1 entries.
    len: Option<u64>,
    /// CRC32-C of the payload; `None` for legacy v1 entries.
    crc: Option<u32>,
}

// Durable-store metrics (family `store`, see DESIGN.md §6e). All no-ops
// without `obs`.
static OBS_PUT_BLOBS: LazyCounter = LazyCounter::new("store.put.blobs");
static OBS_PUT_BYTES: LazyCounter = LazyCounter::new("store.put.bytes");
static OBS_CRC_VERIFIED: LazyCounter = LazyCounter::new("store.crc.verified");
static OBS_CRC_FAILED: LazyCounter = LazyCounter::new("store.crc.failed");
static OBS_FSCK_RUNS: LazyCounter = LazyCounter::new("store.fsck.runs");
static OBS_FSCK_QUARANTINED: LazyCounter = LazyCounter::new("store.fsck.quarantined");
static OBS_MANIFEST_WRITES: LazyCounter = LazyCounter::new("store.manifest.writes");
static OBS_PUT_TAGGED: LazyCounter = LazyCounter::new("store.put.tagged_blobs");
static OBS_FSCK_TAG_MISMATCH: LazyCounter = LazyCounter::new("store.fsck.tag_mismatch");
// Row-permutation blobs written and read back (family `reorder`, see
// DESIGN.md §6j).
static OBS_ORDER_PUT: LazyCounter = LazyCounter::new("reorder.store.put");
static OBS_ORDER_LOADED: LazyCounter = LazyCounter::new("reorder.store.loaded");
// Lossy companion blobs written and read back (family `lossy`, see
// DESIGN.md §6l).
static OBS_LOSSY_PUT: LazyCounter = LazyCounter::new("lossy.store.put");
static OBS_LOSSY_LOADED: LazyCounter = LazyCounter::new("lossy.store.loaded");

/// What a blob's frame declares about its payload's codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameTag {
    /// Legacy raw v1 blob — no frame (and no integrity metadata) at all.
    Raw,
    /// `IBB2` frame: implicitly an untagged, all-WAH payload.
    Untagged,
    /// `IBB3` frame: uniform per-bin codec tag, or [`MIXED_TAG`].
    Tagged(u8),
    /// `IBP1` frame: a row permutation, tagged with its
    /// [`RowOrder::tag`].
    Perm(u8),
    /// `IBL1` frame: a lossy companion index, tagged with its
    /// [FPR class](fpr_class).
    Lossy(u8),
}

/// Wraps an encoded index payload in the untagged (all-WAH) frame.
fn frame_blob(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(BLOB_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out
}

/// Wraps an encoded index payload in the codec-tagged frame.
fn frame_blob_tagged(payload: &[u8], tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD_TAGGED);
    out.extend_from_slice(BLOB_MAGIC_TAGGED);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out
}

/// Wraps an encoded inverse permutation in the `IBP1` frame, tagged with
/// the [`RowOrder`] that produced it.
fn frame_blob_perm(payload: &[u8], order_tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD_TAGGED);
    out.extend_from_slice(BLOB_MAGIC_PERM);
    out.push(order_tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out
}

/// Wraps an encoded lossy companion in the `IBL1` frame, tagged with the
/// FPR class.
fn frame_blob_lossy(payload: &[u8], class: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD_TAGGED);
    out.extend_from_slice(BLOB_MAGIC_LOSSY);
    out.push(class);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out
}

/// The decade class of a lossy FPR: 1 for (1e-2, 1e-1], 2 for
/// (1e-3, 1e-2], … 4 for [1e-4, 1e-3]. This is the `IBL1` frame tag, a
/// coarse claim cross-checkable against the exact FPR stored inside the
/// payload CRC.
fn fpr_class(fpr: f64) -> u8 {
    (-fpr.log10()).ceil().clamp(1.0, 4.0) as u8
}

/// Serializes a lossy companion: `fpr (f64 LE) | bits dropped (u64 LE) |
/// zeros of the exact index (u64 LE) | encoded index`. All of it — the
/// lossy meta included — sits inside the payload CRC; only the class byte
/// in the frame is outside it.
fn encode_lossy_payload(fpr: f64, stats: &LossyStats, index_payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + index_payload.len());
    out.extend_from_slice(&fpr.to_le_bytes());
    out.extend_from_slice(&stats.bits_dropped.to_le_bytes());
    out.extend_from_slice(&stats.zeros.to_le_bytes());
    out.extend_from_slice(index_payload);
    out
}

/// Parses an `IBL1` payload into `(fpr, bits dropped, zeros, encoded
/// index)`, or a description of what is wrong.
fn decode_lossy_payload(payload: &[u8]) -> std::result::Result<(f64, u64, u64, &[u8]), String> {
    if payload.len() < 24 {
        return Err(format!("lossy payload too short ({} bytes)", payload.len()));
    }
    let fpr = f64::from_bits(crate::crc::le_u64(&payload[..8]));
    if !valid_fpr(fpr) || fpr == 0.0 {
        return Err(format!("lossy FPR {fpr} outside the supported range"));
    }
    let dropped = crate::crc::le_u64(&payload[8..16]);
    let zeros = crate::crc::le_u64(&payload[16..24]);
    if zeros > 0 && dropped as f64 > fpr * zeros as f64 {
        return Err(format!(
            "recorded {dropped} dropped bits exceed the FPR {fpr} budget over {zeros} zeros"
        ));
    }
    Ok((fpr, dropped, zeros, &payload[24..]))
}

/// Serializes an inverse permutation (`inv[original] = stored`) as
/// `u64 LE row count` followed by one `u32 LE` per row.
pub(crate) fn encode_perm_payload(inv: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + inv.len() * 4);
    out.extend_from_slice(&(inv.len() as u64).to_le_bytes());
    for &s in inv {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Parses an `IBP1` payload back into the inverse permutation, or a
/// description of what is wrong.
pub(crate) fn decode_perm_payload(payload: &[u8]) -> std::result::Result<Vec<u32>, String> {
    if payload.len() < 8 {
        return Err(format!(
            "permutation payload too short ({} bytes)",
            payload.len()
        ));
    }
    let n = crate::crc::le_u64(&payload[..8]) as usize;
    let want = n
        .checked_mul(4)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| "declared row count overflows".to_string())?;
    if payload.len() != want {
        return Err(format!(
            "permutation payload {} bytes != declared {want}",
            payload.len()
        ));
    }
    Ok(payload[8..]
        .chunks_exact(4)
        .map(crate::crc::le_u32)
        .collect())
}

/// The frame tag summarizing a per-bin codec plan.
fn plan_frame_tag(plan: &[CodecId]) -> u8 {
    match plan.first() {
        Some(&first) if plan.iter().all(|&c| c == first) => first.tag(),
        _ => MIXED_TAG,
    }
}

/// Validates a framed blob and returns its payload plus what the frame
/// header claims about its codecs, or a description of what is wrong.
fn unframe_blob(bytes: &[u8]) -> std::result::Result<(&[u8], FrameTag), String> {
    let (tag, header_len) = if bytes.starts_with(BLOB_MAGIC) {
        (FrameTag::Untagged, 12usize)
    } else if bytes.starts_with(BLOB_MAGIC_TAGGED)
        || bytes.starts_with(BLOB_MAGIC_PERM)
        || bytes.starts_with(BLOB_MAGIC_LOSSY)
    {
        if bytes.len() < FRAME_OVERHEAD_TAGGED {
            return Err(format!("framed blob too short ({} bytes)", bytes.len()));
        }
        if bytes.starts_with(BLOB_MAGIC_PERM) {
            (FrameTag::Perm(bytes[4]), 13usize)
        } else if bytes.starts_with(BLOB_MAGIC_LOSSY) {
            (FrameTag::Lossy(bytes[4]), 13usize)
        } else {
            (FrameTag::Tagged(bytes[4]), 13usize)
        }
    } else {
        return Err("missing IBB2/IBB3/IBP1/IBL1 framing magic".into());
    };
    if bytes.len() < header_len + 4 {
        return Err(format!("framed blob too short ({} bytes)", bytes.len()));
    }
    let len = crate::crc::le_u64(&bytes[header_len - 8..header_len]) as usize;
    let expected_total = len
        .checked_add(header_len + 4)
        .ok_or_else(|| "declared payload length overflows".to_string())?;
    if bytes.len() != expected_total {
        return Err(format!(
            "framed length {} != declared {}",
            bytes.len(),
            expected_total
        ));
    }
    let payload = &bytes[header_len..header_len + len];
    let stored = crate::crc::le_u32(&bytes[header_len + len..]);
    let actual = crc32c(payload);
    if stored != actual {
        OBS_CRC_FAILED.inc();
        return Err(format!(
            "CRC mismatch: stored {stored:08x}, computed {actual:08x}"
        ));
    }
    OBS_CRC_VERIFIED.inc();
    Ok((payload, tag))
}

/// `fsck`'s frame-tag cross-check: the frame header's codec claim must
/// match the codecs actually present in the decoded payload. The tag
/// byte sits outside the payload CRC, so this is the only check that
/// catches a tampered or stale tag.
fn check_frame_tag(tag: FrameTag, bins: &[CodecId]) -> std::result::Result<(), String> {
    let uniform = match bins.first() {
        Some(&first) if bins.iter().all(|&c| c == first) => Some(first),
        _ => None,
    };
    match tag {
        FrameTag::Raw => Ok(()), // legacy v1 blob: the frame claims nothing
        FrameTag::Untagged => match uniform {
            Some(CodecId::Wah) => Ok(()),
            _ => Err("untagged IBB2 frame over a non-WAH payload".into()),
        },
        FrameTag::Tagged(MIXED_TAG) => {
            if uniform.is_none() {
                Ok(())
            } else {
                Err("frame tag claims mixed codecs but the payload is uniform".into())
            }
        }
        FrameTag::Tagged(t) => match CodecId::from_tag(t) {
            Some(c) if uniform == Some(c) => Ok(()),
            Some(c) => Err(format!(
                "frame tag {} does not match the payload's codecs",
                c.name()
            )),
            None => Err(format!("unknown frame codec tag {t:#04x}")),
        },
        FrameTag::Perm(_) => Err("IBP1 permutation frame over an index entry".into()),
        FrameTag::Lossy(_) => Err("IBL1 lossy frame over an exact index entry".into()),
    }
}

fn check_variable_name(variable: &str) -> Result<()> {
    if variable.is_empty()
        || !variable
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(IbisError::Config(format!(
            "variable name {variable:?} must be non-empty [A-Za-z0-9_] for safe file names"
        )));
    }
    Ok(())
}

fn check_file_name(file: &str) -> std::result::Result<(), String> {
    if file.is_empty() || file.contains('/') || file.contains('\\') || file.contains("..") {
        return Err("file escapes the run directory".into());
    }
    Ok(())
}

/// One journal/manifest entry line (without the journal's own line CRC).
fn entry_line(step: usize, var: &str, meta: &EntryMeta) -> String {
    format!(
        "{step}\t{var}\t{}\t{}\t{:08x}",
        meta.file,
        meta.len.unwrap_or(0),
        meta.crc.unwrap_or(0)
    )
}

/// A writer that accumulates selected-step indices into a run directory,
/// durably: atomic framed blobs, a journaled in-flight state, and a
/// checksummed manifest on [`StoreWriter::finish`].
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    entries: BTreeMap<(usize, String), EntryMeta>,
    journal: std::fs::File,
    injector: Option<Arc<FaultInjector>>,
    max_attempts: u32,
}

impl StoreWriter {
    /// Creates (if needed) the run directory and starts a fresh journal.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| IbisError::io(format!("create run dir {}", dir.display()), &e))?;
        let journal = std::fs::File::create(dir.join("JOURNAL"))
            .map_err(|e| IbisError::io("create JOURNAL", &e))?;
        Ok(StoreWriter {
            dir,
            entries: BTreeMap::new(),
            journal,
            injector: None,
            max_attempts: 4,
        })
    }

    /// Reopens an interrupted *or finished* run directory, recovering
    /// every blob proven durable. Journal lines are trusted first (line
    /// CRC valid, blob present, framing and payload CRC intact; a torn
    /// tail drops everything after it). A valid v2 `MANIFEST` then seeds
    /// any entries the journal didn't cover, each re-verified against its
    /// blob the same way — so resuming a finished store keeps its
    /// contents instead of silently starting empty (a later
    /// [`StoreWriter::finish`] would otherwise clobber the manifest down
    /// to just the re-put entries). Blobs that fail verification are
    /// dropped; re-`put`ting them is idempotent — which is exactly the
    /// repair path after [`Store::fsck`] quarantines a corrupt blob.
    pub fn resume(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| IbisError::io(format!("create run dir {}", dir.display()), &e))?;
        let verify = |meta: &EntryMeta| -> bool {
            std::fs::read(dir.join(&meta.file))
                .ok()
                .filter(|bytes| bytes.len() as u64 == meta.len.unwrap_or(0))
                .and_then(|bytes| {
                    unframe_blob(&bytes)
                        .ok()
                        .map(|(payload, _)| crc32c(payload) == meta.crc.unwrap_or(0))
                })
                .unwrap_or(false)
        };
        let mut entries = BTreeMap::new();
        let journal_path = dir.join("JOURNAL");
        if let Ok(text) = std::fs::read_to_string(&journal_path) {
            for line in text.lines() {
                let Some(entry) = parse_journal_line(line) else {
                    // malformed or torn line: everything after it is suspect
                    break;
                };
                let (step, var, meta) = entry;
                if check_file_name(&meta.file).is_err() {
                    break;
                }
                if verify(&meta) {
                    entries.insert((step, var), meta);
                }
            }
        }
        if let Ok(manifest) = std::fs::read_to_string(dir.join("MANIFEST")) {
            if manifest.starts_with(MANIFEST_HEADER) {
                if let Ok(seed) = parse_manifest_v2(&manifest) {
                    for ((step, var), meta) in seed {
                        // v2 entries only: v1 metas have no len/CRC to
                        // journal faithfully, and re-verification needs both
                        if meta.len.is_some()
                            && meta.crc.is_some()
                            && check_file_name(&meta.file).is_ok()
                            && !entries.contains_key(&(step, var.clone()))
                            && verify(&meta)
                        {
                            entries.insert((step, var), meta);
                        }
                    }
                }
            }
        }
        // Rewrite the journal to exactly the verified entries, so the next
        // crash-resume cycle starts from a clean (untorn) journal.
        let mut journal = std::fs::File::create(&journal_path)
            .map_err(|e| IbisError::io("rewrite JOURNAL", &e))?;
        for ((step, var), meta) in &entries {
            let line = entry_line(*step, var, meta);
            writeln!(journal, "{line}\t{:08x}", crc32c(line.as_bytes()))
                .map_err(|e| IbisError::io("rewrite JOURNAL", &e))?;
        }
        journal
            .sync_all()
            .map_err(|e| IbisError::io("sync JOURNAL", &e))?;
        Ok(StoreWriter {
            dir,
            entries,
            journal,
            injector: None,
            max_attempts: 4,
        })
    }

    /// Routes this writer's blob writes through a fault injector.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Steps with at least one durable entry, ascending.
    pub fn durable_steps(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.entries.keys().map(|(s, _)| *s).collect();
        v.dedup();
        v
    }

    /// Whether `(step, variable)` is already durable.
    pub fn contains(&self, step: usize, variable: &str) -> bool {
        self.entries.contains_key(&(step, variable.to_string()))
    }

    /// Persists one step's index for one variable: encoded under its
    /// per-bin codec plan, framed, checksummed, written atomically, then
    /// journaled. An all-WAH plan keeps the legacy untagged `IBB2` frame
    /// byte-identically; any non-WAH bin switches to the tagged `IBB3`
    /// frame carrying the plan's uniform codec tag (or [`MIXED_TAG`]).
    /// Re-putting an existing entry is idempotent (same payload → same
    /// bytes, entry overwritten).
    pub fn put(&mut self, step: usize, variable: &str, index: &BitmapIndex) -> Result<()> {
        check_variable_name(variable)?;
        if variable == ORDER_VARIABLE {
            return Err(IbisError::Config(format!(
                "variable name {ORDER_VARIABLE:?} is reserved for row permutations"
            )));
        }
        if variable.starts_with(LOSSY_PREFIX) {
            return Err(IbisError::Config(format!(
                "variable names starting with {LOSSY_PREFIX:?} are reserved for lossy companions"
            )));
        }
        let file = format!("s{step:06}_{variable}.ibis");
        let (payload, plan) = codec::encode_index_auto(index);
        let framed = if plan.iter().all(|&c| c == CodecId::Wah) {
            frame_blob(&payload)
        } else {
            OBS_PUT_TAGGED.inc();
            frame_blob_tagged(&payload, plan_frame_tag(&plan))
        };
        let meta = EntryMeta {
            file: file.clone(),
            len: Some(framed.len() as u64),
            crc: Some(crc32c(&payload)),
        };
        self.write_blob_with_faults(&file, &framed)?;
        OBS_PUT_BLOBS.inc();
        OBS_PUT_BYTES.add(framed.len() as u64);
        let line = entry_line(step, variable, &meta);
        writeln!(self.journal, "{line}\t{:08x}", crc32c(line.as_bytes()))
            .and_then(|()| self.journal.sync_all())
            .map_err(|e| IbisError::io("append JOURNAL", &e))?;
        self.entries.insert((step, variable.to_string()), meta);
        Ok(())
    }

    /// Persists the step's row permutation under the reserved
    /// [`ORDER_VARIABLE`] entry: the inverse permutation
    /// (`inv[original] = stored`) framed as `IBP1` with `order`'s tag,
    /// CRC-checked, written atomically and journaled exactly like an
    /// index blob — so crash/resume and fsck cover it. One permutation
    /// per step: every variable of the step shares it, keeping
    /// cross-variable (correlation) bitmaps row-aligned.
    ///
    /// Identity orders (or identity permutations) have nothing to map;
    /// callers skip this call for them, and passing one is a config
    /// error.
    pub fn put_order(&mut self, step: usize, order: RowOrder, perm: &RowPermutation) -> Result<()> {
        if order == RowOrder::Identity || perm.is_identity() {
            return Err(IbisError::Config(
                "identity row orders are never persisted".into(),
            ));
        }
        let file = format!("s{step:06}_{ORDER_VARIABLE}.ibis");
        let payload = encode_perm_payload(perm.inv());
        let framed = frame_blob_perm(&payload, order.tag());
        let meta = EntryMeta {
            file: file.clone(),
            len: Some(framed.len() as u64),
            crc: Some(crc32c(&payload)),
        };
        self.write_blob_with_faults(&file, &framed)?;
        OBS_ORDER_PUT.inc();
        OBS_PUT_BLOBS.inc();
        OBS_PUT_BYTES.add(framed.len() as u64);
        let line = entry_line(step, ORDER_VARIABLE, &meta);
        writeln!(self.journal, "{line}\t{:08x}", crc32c(line.as_bytes()))
            .and_then(|()| self.journal.sync_all())
            .map_err(|e| IbisError::io("append JOURNAL", &e))?;
        self.entries
            .insert((step, ORDER_VARIABLE.to_string()), meta);
        Ok(())
    }

    /// Persists `variable`'s lossy superset companion for `step` under
    /// the reserved `__lossy_<variable>` entry: the lossy index (encoded
    /// under its codec plan) prefixed by its FPR and drop accounting,
    /// framed as `IBL1` with the FPR class in the tag byte, CRC-checked,
    /// written atomically and journaled exactly like an index blob — so
    /// crash/resume and fsck cover it. The companion is self-describing;
    /// it does not require the exact entry to exist first, but readers
    /// only ever use it as a filter in front of the exact index.
    pub fn put_lossy(
        &mut self,
        step: usize,
        variable: &str,
        lossy: &BitmapIndex,
        fpr: f64,
        stats: &LossyStats,
    ) -> Result<()> {
        check_variable_name(variable)?;
        if !valid_fpr(fpr) || fpr == 0.0 {
            return Err(IbisError::Config(format!(
                "lossy FPR {fpr} outside the supported range"
            )));
        }
        let entry = format!("{LOSSY_PREFIX}{variable}");
        let file = format!("s{step:06}_{entry}.ibis");
        let (index_payload, _) = codec::encode_index_auto(lossy);
        let payload = encode_lossy_payload(fpr, stats, &index_payload);
        let framed = frame_blob_lossy(&payload, fpr_class(fpr));
        let meta = EntryMeta {
            file: file.clone(),
            len: Some(framed.len() as u64),
            crc: Some(crc32c(&payload)),
        };
        self.write_blob_with_faults(&file, &framed)?;
        OBS_LOSSY_PUT.inc();
        OBS_PUT_BLOBS.inc();
        OBS_PUT_BYTES.add(framed.len() as u64);
        let line = entry_line(step, &entry, &meta);
        writeln!(self.journal, "{line}\t{:08x}", crc32c(line.as_bytes()))
            .and_then(|()| self.journal.sync_all())
            .map_err(|e| IbisError::io("append JOURNAL", &e))?;
        self.entries.insert((step, entry), meta);
        Ok(())
    }

    /// Atomic blob write with injected-fault retry. A torn write leaves
    /// partial bytes only in the temp file — the final name either holds
    /// the complete framed blob or nothing.
    fn write_blob_with_faults(&self, file: &str, framed: &[u8]) -> Result<()> {
        let path = self.dir.join(file);
        let tmp = self.dir.join(format!(".{file}.tmp"));
        let op = self.injector.as_ref().map(|inj| inj.begin_write());
        let mut last_error = String::new();
        for attempt in 0..self.max_attempts {
            let fault = match (&self.injector, op) {
                (Some(inj), Some(op)) => inj.write_fault_for(op, attempt),
                _ => None,
            };
            match fault {
                Some(WriteFault::IoError) => {
                    last_error = format!("injected I/O error writing {file}");
                }
                Some(WriteFault::Torn) => {
                    // simulate a crash mid-write: half the frame lands in
                    // the temp file and the rename never happens
                    let _ = std::fs::write(&tmp, &framed[..framed.len() / 2]);
                    last_error = format!("injected torn write of {file}");
                }
                Some(WriteFault::DelayedAck(_)) | None => {
                    return write_atomic(&tmp, &path, framed)
                        .map_err(|e| IbisError::io(format!("write blob {file}"), &e));
                }
            }
        }
        Err(IbisError::StorageExhausted {
            site: format!("store blob {file}"),
            attempts: self.max_attempts,
            last_error,
        })
    }

    /// Writes the checksummed manifest atomically, deletes the journal,
    /// and finishes the run. Until this is called the directory has no
    /// manifest and [`Store::open`] will refuse it.
    pub fn finish(self) -> Result<PathBuf> {
        let mut body = String::new();
        body.push_str(MANIFEST_HEADER);
        body.push('\n');
        for ((step, var), meta) in &self.entries {
            body.push_str(&entry_line(*step, var, meta));
            body.push('\n');
        }
        let footer = format!(
            "#END {} {:08x}\n",
            self.entries.len(),
            crc32c(body.as_bytes())
        );
        body.push_str(&footer);
        write_atomic(
            &self.dir.join(".MANIFEST.tmp"),
            &self.dir.join("MANIFEST"),
            body.as_bytes(),
        )
        .map_err(|e| IbisError::io("write MANIFEST", &e))?;
        OBS_MANIFEST_WRITES.inc();
        match std::fs::remove_file(self.dir.join("JOURNAL")) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(IbisError::io("remove JOURNAL", &e)),
        }
        Ok(self.dir)
    }
}

fn parse_journal_line(line: &str) -> Option<(usize, String, EntryMeta)> {
    let (body, crc_field) = line.rsplit_once('\t')?;
    let line_crc = u32::from_str_radix(crc_field, 16).ok()?;
    if crc32c(body.as_bytes()) != line_crc {
        return None;
    }
    let (step, var, meta) = parse_entry_fields(body)?;
    Some((step, var, meta))
}

/// Parses `step \t var \t file \t len \t crc` into an entry.
fn parse_entry_fields(body: &str) -> Option<(usize, String, EntryMeta)> {
    let mut parts = body.split('\t');
    let (Some(step), Some(var), Some(file), Some(len), Some(crc), None) = (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) else {
        return None;
    };
    Some((
        step.parse().ok()?,
        var.to_string(),
        EntryMeta {
            file: file.to_string(),
            len: Some(len.parse().ok()?),
            crc: Some(u32::from_str_radix(crc, 16).ok()?),
        },
    ))
}

/// A variable's lossy superset companion, as loaded from its `IBL1` blob.
///
/// The index admits every row the exact index admits (plus at most
/// `fpr × zeros` false positives), so readers use it as a cheap filter in
/// front of the exact index and refine on the admitted rows.
#[derive(Debug, Clone)]
pub struct LossyCompanion {
    /// The lossy superset index.
    pub index: BitmapIndex,
    /// The FPR the companion was built for.
    pub fpr: f64,
    /// 0-bits flipped to 1 when the companion was built.
    pub bits_dropped: u64,
    /// 0-bits of the exact index (the FPR denominator).
    pub zeros: u64,
}

impl LossyCompanion {
    /// The companion's measured false-positive rate.
    pub fn measured_fpr(&self) -> f64 {
        if self.zeros == 0 {
            0.0
        } else {
            self.bits_dropped as f64 / self.zeros as f64
        }
    }
}

/// One blob [`Store::fsck`] had to quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedBlob {
    /// The entry's time-step.
    pub step: usize,
    /// The entry's variable.
    pub variable: String,
    /// The blob's file name (now renamed to `<file>.quarantined`).
    pub file: String,
    /// What the integrity check found.
    pub reason: String,
}

/// Result of an [`Store::fsck`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Entries examined.
    pub checked: usize,
    /// Entries that failed verification and were quarantined.
    pub quarantined: Vec<QuarantinedBlob>,
}

impl FsckReport {
    /// True when every blob verified.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// A read-only view of a finished run directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    /// `(step, variable) -> entry`, ordered by step then variable.
    entries: BTreeMap<(usize, String), EntryMeta>,
}

impl Store {
    /// Opens a run directory; fails without a valid manifest. A v2
    /// manifest must carry an intact `#END` footer (count + CRC over the
    /// header and entry lines); legacy 3-field v1 manifests still parse,
    /// with no integrity metadata.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = std::fs::read_to_string(dir.join("MANIFEST"))
            .map_err(|e| IbisError::io("read MANIFEST", &e))?;
        let entries = if manifest.starts_with(MANIFEST_HEADER) {
            parse_manifest_v2(&manifest)?
        } else {
            parse_manifest_v1(&manifest)?
        };
        Ok(Store { dir, entries })
    }

    /// The run directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Steps present in the store, ascending.
    pub fn steps(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.entries.keys().map(|(s, _)| *s).collect();
        v.dedup();
        v
    }

    /// Variables present for `step` — data variables only; the reserved
    /// [`ORDER_VARIABLE`] permutation and [`LOSSY_PREFIX`] companion
    /// entries are hidden.
    pub fn variables(&self, step: usize) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|((s, v), _)| *s == step && v != ORDER_VARIABLE && !v.starts_with(LOSSY_PREFIX))
            .map(|((_, v), _)| v.as_str())
            .collect()
    }

    /// Loads one index, verifying framing and checksum on the way.
    pub fn get(&self, step: usize, variable: &str) -> Result<BitmapIndex> {
        let meta = self
            .entries
            .get(&(step, variable.to_string()))
            .filter(|_| variable != ORDER_VARIABLE && !variable.starts_with(LOSSY_PREFIX))
            .ok_or_else(|| IbisError::NotFound {
                step,
                variable: variable.to_string(),
            })?;
        let (payload, _) = self.verified_payload(meta)?;
        codec::decode_index(&payload).map_err(|source| IbisError::Decode {
            file: Some(meta.file.clone()),
            source,
        })
    }

    /// Reads a blob and runs every applicable integrity check, returning
    /// the (still encoded) payload and the frame's codec claim.
    fn verified_payload(&self, meta: &EntryMeta) -> Result<(Vec<u8>, FrameTag)> {
        let bytes = std::fs::read(self.dir.join(&meta.file))
            .map_err(|e| IbisError::io(format!("read blob {}", meta.file), &e))?;
        if let Some(len) = meta.len {
            if bytes.len() as u64 != len {
                return Err(IbisError::Corrupt {
                    file: meta.file.clone(),
                    detail: format!("on-disk length {} != manifest's {len}", bytes.len()),
                });
            }
        }
        if bytes.starts_with(BLOB_MAGIC)
            || bytes.starts_with(BLOB_MAGIC_TAGGED)
            || bytes.starts_with(BLOB_MAGIC_PERM)
            || bytes.starts_with(BLOB_MAGIC_LOSSY)
        {
            let (payload, tag) = unframe_blob(&bytes).map_err(|detail| IbisError::Corrupt {
                file: meta.file.clone(),
                detail,
            })?;
            if let Some(crc) = meta.crc {
                let actual = crc32c(payload);
                if actual != crc {
                    return Err(IbisError::Corrupt {
                        file: meta.file.clone(),
                        detail: format!("payload CRC {actual:08x} != manifest's {crc:08x}"),
                    });
                }
            }
            Ok((payload.to_vec(), tag))
        } else if meta.crc.is_some() {
            // a v2 entry must be framed; raw bytes mean the blob was
            // replaced or truncated past its magic
            Err(IbisError::Corrupt {
                file: meta.file.clone(),
                detail: "v2 entry lost its IBB2/IBB3/IBP1/IBL1 framing".into(),
            })
        } else {
            Ok((bytes, FrameTag::Raw)) // legacy v1 blob: payload is the whole file
        }
    }

    /// Loads `step`'s row permutation, or `None` when the step was stored
    /// in its original order. Verifies the `IBP1` framing and payload CRC
    /// like any blob, that the frame's order tag names a known
    /// non-identity [`RowOrder`], and that the payload is a bijection
    /// ([`RowPermutation::from_inverse`]) — a corrupt permutation would
    /// silently misroute region queries, so every failure is a typed
    /// [`IbisError::Corrupt`].
    pub fn load_order(&self, step: usize) -> Result<Option<(RowOrder, RowPermutation)>> {
        let Some(meta) = self.entries.get(&(step, ORDER_VARIABLE.to_string())) else {
            return Ok(None);
        };
        let (payload, tag) = self.verified_payload(meta)?;
        let corrupt = |detail: String| IbisError::Corrupt {
            file: meta.file.clone(),
            detail,
        };
        let FrameTag::Perm(order_tag) = tag else {
            return Err(corrupt("permutation blob lost its IBP1 framing".into()));
        };
        let order = RowOrder::from_tag(order_tag)
            .filter(|&o| o != RowOrder::Identity)
            .ok_or_else(|| corrupt(format!("unknown row-order tag {order_tag:#04x}")))?;
        let inv = decode_perm_payload(&payload).map_err(corrupt)?;
        let perm = RowPermutation::from_inverse(inv)
            .map_err(|detail| corrupt(format!("permutation is not a bijection: {detail}")))?;
        OBS_ORDER_LOADED.inc();
        Ok(Some((order, perm)))
    }

    /// Loads `step`/`variable`'s lossy superset companion, or `None` when
    /// the run stored no companion for it. Verifies the `IBL1` framing and
    /// payload CRC like any blob, that the frame's FPR-class byte (outside
    /// the payload CRC) matches the exact FPR recorded inside the payload,
    /// that the FPR is in the supported range, and that the recorded drop
    /// accounting respects the FPR budget — a corrupt companion would
    /// silently widen or (worse) narrow the filter, so every failure is a
    /// typed [`IbisError::Corrupt`].
    pub fn load_lossy(&self, step: usize, variable: &str) -> Result<Option<LossyCompanion>> {
        let entry = format!("{LOSSY_PREFIX}{variable}");
        let Some(meta) = self.entries.get(&(step, entry)) else {
            return Ok(None);
        };
        let (payload, tag) = self.verified_payload(meta)?;
        let corrupt = |detail: String| IbisError::Corrupt {
            file: meta.file.clone(),
            detail,
        };
        let FrameTag::Lossy(class) = tag else {
            return Err(corrupt("lossy companion lost its IBL1 framing".into()));
        };
        let (fpr, bits_dropped, zeros, index_payload) =
            decode_lossy_payload(&payload).map_err(&corrupt)?;
        if fpr_class(fpr) != class {
            return Err(corrupt(format!(
                "frame FPR class {class} does not match the payload FPR {fpr} (class {})",
                fpr_class(fpr)
            )));
        }
        let index = codec::decode_index(index_payload).map_err(|source| IbisError::Decode {
            file: Some(meta.file.clone()),
            source,
        })?;
        OBS_LOSSY_LOADED.inc();
        Ok(Some(LossyCompanion {
            index,
            fpr,
            bits_dropped,
            zeros,
        }))
    }

    /// Verifies every blob end-to-end (framing, CRC, decode, frame codec
    /// tag vs the codecs actually present in the payload) and quarantines
    /// the ones that fail: the file is renamed to `<file>.quarantined`
    /// and the entry removed, so subsequent reads see only intact data.
    pub fn fsck(&mut self) -> FsckReport {
        OBS_FSCK_RUNS.inc();
        let mut report = FsckReport::default();
        let keys: Vec<(usize, String)> = self.entries.keys().cloned().collect();
        for (step, variable) in keys {
            report.checked += 1;
            let meta = self.entries[&(step, variable.clone())].clone();
            let verdict = if variable == ORDER_VARIABLE {
                // Permutation entry: the full IBP1 check load_order runs
                // (framing, CRC, known order tag, bijection).
                self.load_order(step).map(|_| ())
            } else if let Some(base) = variable.strip_prefix(LOSSY_PREFIX) {
                // Lossy companion: the full IBL1 check load_lossy runs
                // (framing, CRC, FPR range + budget, class cross-check).
                self.load_lossy(step, base).map(|_| ())
            } else {
                self.verified_payload(&meta)
                    .and_then(|(payload, tag)| {
                        let (_, bin_tags) =
                            codec::decode_index_with_tags(&payload).map_err(|source| {
                                IbisError::Decode {
                                    file: Some(meta.file.clone()),
                                    source,
                                }
                            })?;
                        check_frame_tag(tag, &bin_tags).map_err(|detail| {
                            OBS_FSCK_TAG_MISMATCH.inc();
                            IbisError::Corrupt {
                                file: meta.file.clone(),
                                detail,
                            }
                        })
                    })
                    .map(|_| ())
            };
            if let Err(err) = verdict {
                OBS_FSCK_QUARANTINED.inc();
                let from = self.dir.join(&meta.file);
                let _ = std::fs::rename(&from, self.dir.join(format!("{}.quarantined", meta.file)));
                self.entries.remove(&(step, variable.clone()));
                report.quarantined.push(QuarantinedBlob {
                    step,
                    variable,
                    file: meta.file,
                    reason: err.to_string(),
                });
            }
        }
        report
    }

    /// Lazily loads one variable's index at one step — the per-blob read
    /// the query cache ([`crate::cache::CachedStore`]) builds on, so a
    /// query touching one `(variable, step)` pays for one blob instead of a
    /// whole [`Store::load_series`] scan. Verifies framing and checksum
    /// exactly like [`Store::get`].
    pub fn load_bitmap(&self, variable: &str, step: usize) -> Result<BitmapIndex> {
        self.get(step, variable)
    }

    /// Loads every step of one variable, in step order.
    pub fn load_series(&self, variable: &str) -> Result<Vec<(usize, BitmapIndex)>> {
        self.steps()
            .into_iter()
            .filter(|&s| self.entries.contains_key(&(s, variable.to_string())))
            .map(|s| Ok((s, self.get(s, variable)?)))
            .collect()
    }
}

fn parse_manifest_v2(manifest: &str) -> Result<BTreeMap<(usize, String), EntryMeta>> {
    let footer_start = manifest.rfind("#END ").ok_or(IbisError::Manifest {
        line: 0,
        reason: "v2 manifest has no #END footer (truncated?)".into(),
    })?;
    let (body, footer) = manifest.split_at(footer_start);
    let footer = footer.trim_end();
    let mut fields = footer.strip_prefix("#END ").unwrap_or("").split(' ');
    let (Some(count), Some(crc), None) = (fields.next(), fields.next(), fields.next()) else {
        return Err(IbisError::Manifest {
            line: 0,
            reason: "malformed #END footer".into(),
        });
    };
    let count: usize = count.parse().map_err(|_| IbisError::Manifest {
        line: 0,
        reason: "bad entry count in #END footer".into(),
    })?;
    let crc = u32::from_str_radix(crc, 16).map_err(|_| IbisError::Manifest {
        line: 0,
        reason: "bad CRC in #END footer".into(),
    })?;
    let actual = crc32c(body.as_bytes());
    if actual != crc {
        return Err(IbisError::Manifest {
            line: 0,
            reason: format!("manifest CRC {actual:08x} != footer's {crc:08x}"),
        });
    }
    let mut entries = BTreeMap::new();
    for (lineno, line) in body.lines().enumerate().skip(1) {
        let (step, var, meta) = parse_entry_fields(line).ok_or_else(|| IbisError::Manifest {
            line: lineno + 1,
            reason: "expected 5 tab-separated fields".into(),
        })?;
        check_file_name(&meta.file).map_err(|reason| IbisError::Manifest {
            line: lineno + 1,
            reason,
        })?;
        entries.insert((step, var), meta);
    }
    if entries.len() != count {
        return Err(IbisError::Manifest {
            line: 0,
            reason: format!("{} entries != footer's count {count}", entries.len()),
        });
    }
    Ok(entries)
}

fn parse_manifest_v1(manifest: &str) -> Result<BTreeMap<(usize, String), EntryMeta>> {
    let mut entries = BTreeMap::new();
    for (lineno, line) in manifest.lines().enumerate() {
        let mut parts = line.split('\t');
        let (Some(step), Some(var), Some(file), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(IbisError::Manifest {
                line: lineno + 1,
                reason: "expected 3 tab-separated fields".into(),
            });
        };
        let step: usize = step.parse().map_err(|_| IbisError::Manifest {
            line: lineno + 1,
            reason: "bad step number".into(),
        })?;
        check_file_name(file).map_err(|reason| IbisError::Manifest {
            line: lineno + 1,
            reason,
        })?;
        entries.insert(
            (step, var.to_string()),
            EntryMeta {
                file: file.to_string(),
                len: None,
                crc: None,
            },
        );
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use ibis_core::Binner;

    fn sample_index(seed: usize) -> BitmapIndex {
        let data: Vec<f64> = (0..500).map(|i| ((i * (seed + 3)) % 40) as f64).collect();
        BitmapIndex::build(&data, Binner::distinct_ints(0, 39))
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ibis-store-{name}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn round_trip_store() {
        let dir = tmp("roundtrip");
        let mut w = StoreWriter::create(&dir).unwrap();
        for step in [0usize, 5, 9] {
            w.put(step, "temperature", &sample_index(step)).unwrap();
            w.put(step, "salinity", &sample_index(step + 100)).unwrap();
        }
        w.finish().unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.steps(), vec![0, 5, 9]);
        assert_eq!(store.variables(5), vec!["salinity", "temperature"]);
        let idx = store.get(5, "temperature").unwrap();
        assert_eq!(idx.counts(), sample_index(5).counts());
        let series = store.load_series("salinity").unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].0, 9);
        assert!(
            !dir.join("JOURNAL").exists(),
            "finish() must retire the journal"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_manifest_fails() {
        let dir = tmp("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_entry_is_not_found() {
        let dir = tmp("missing");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.get(1, "salinity").unwrap_err();
        assert!(matches!(err, IbisError::NotFound { step: 1, .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_blob_is_corrupt() {
        let dir = tmp("corrupt");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(2, "temperature", &sample_index(2)).unwrap();
        let finished = w.finish().unwrap();
        let f = finished.join("s000002_temperature.ibis");
        let bytes = std::fs::read(&f).unwrap();
        std::fs::write(&f, &bytes[..bytes.len() / 2]).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.get(2, "temperature").unwrap_err();
        assert!(matches!(err, IbisError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_flipped_byte_is_detected() {
        let dir = tmp("bitflip");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(3, "temperature", &sample_index(3)).unwrap();
        let finished = w.finish().unwrap();
        let f = finished.join("s000003_temperature.ibis");
        let mut bytes = std::fs::read(&f).unwrap();
        let mid = bytes.len() / 2; // somewhere inside the payload
        bytes[mid] ^= 0x01;
        std::fs::write(&f, &bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.get(3, "temperature").unwrap_err();
        match err {
            IbisError::Corrupt { detail, .. } => {
                assert!(detail.contains("CRC"), "flip must fail the CRC: {detail}")
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_quarantines_corrupt_blob_and_series_skips_it() {
        let dir = tmp("fsck");
        let mut w = StoreWriter::create(&dir).unwrap();
        for step in [0usize, 1, 2] {
            w.put(step, "temperature", &sample_index(step)).unwrap();
        }
        let finished = w.finish().unwrap();
        let f = finished.join("s000001_temperature.ibis");
        let mut bytes = std::fs::read(&f).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&f, &bytes).unwrap();

        let mut store = Store::open(&dir).unwrap();
        let report = store.fsck();
        assert_eq!(report.checked, 3);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].step, 1);
        assert!(!report.is_clean());
        assert!(
            dir.join("s000001_temperature.ibis.quarantined").exists(),
            "corrupt blob must be set aside, not deleted"
        );
        assert!(!f.exists());

        let series = store.load_series("temperature").unwrap();
        assert_eq!(
            series.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 2],
            "load_series must return every uncorrupted step"
        );
        assert_eq!(series[0].1.counts(), sample_index(0).counts());

        // a second pass finds nothing left to quarantine
        assert!(store.fsck().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_finished_store_keeps_manifest_entries() {
        let dir = tmp("resume-finished");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();

        // A finished store (MANIFEST, no JOURNAL) must resume with its
        // entries intact, so appending and re-finishing loses nothing.
        let mut w = StoreWriter::resume(&dir).unwrap();
        assert!(w.contains(0, "temperature"));
        assert!(w.contains(1, "temperature"));
        w.put(2, "temperature", &sample_index(2)).unwrap();
        w.finish().unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.steps(), vec![0, 1, 2]);
        assert_eq!(
            store.get(1, "temperature").unwrap().counts(),
            sample_index(1).counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_after_quarantine_drops_bad_entry_and_reput_repairs() {
        let dir = tmp("resume-repair");
        let mut w = StoreWriter::create(&dir).unwrap();
        for step in [0usize, 1] {
            w.put(step, "temperature", &sample_index(step)).unwrap();
        }
        w.finish().unwrap();
        // corrupt step 1's blob, quarantine it
        let f = dir.join("s000001_temperature.ibis");
        let mut bytes = std::fs::read(&f).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&f, &bytes).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.fsck().quarantined.len(), 1);

        // resume verifies each manifest entry against its blob: the
        // quarantined (renamed-away) one is dropped, the intact one kept
        let mut w = StoreWriter::resume(&dir).unwrap();
        assert!(w.contains(0, "temperature"));
        assert!(!w.contains(1, "temperature"));
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();

        let mut store = Store::open(&dir).unwrap();
        assert!(store.fsck().is_clean());
        assert_eq!(
            store.get(1, "temperature").unwrap().counts(),
            sample_index(1).counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_manifest_fails_footer_crc() {
        let dir = tmp("tamper");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.finish().unwrap();
        let path = dir.join("MANIFEST");
        let text = std::fs::read_to_string(&path).unwrap();
        // retarget the entry at a different file without fixing the footer
        std::fs::write(&path, text.replace("s000000", "s000009")).unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert!(matches!(err, IbisError::Manifest { .. }), "{err}");
        // a truncated manifest (lost footer) is refused too
        let upto = text.rfind("#END").unwrap();
        std::fs::write(&path, &text[..upto]).unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_recovers_journaled_blobs_and_ignores_torn_tail() {
        let dir = tmp("resume");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        // crash: drop the writer without finish(); then tear the journal
        drop(w);
        let journal = dir.join("JOURNAL");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"2\ttemperature\ts0000"); // torn final line
        std::fs::write(&journal, &bytes).unwrap();

        let mut w = StoreWriter::resume(&dir).unwrap();
        assert_eq!(w.durable_steps(), vec![0, 1]);
        assert!(w.contains(1, "temperature"));
        assert!(!w.contains(2, "temperature"));
        // idempotent re-put of step 1, then the step the crash lost
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.put(2, "temperature", &sample_index(2)).unwrap();
        w.finish().unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.steps(), vec![0, 1, 2]);
        assert_eq!(
            store.get(1, "temperature").unwrap().counts(),
            sample_index(1).counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_drops_journal_entries_whose_blob_is_bad() {
        let dir = tmp("resumebad");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        drop(w);
        // blob 1 is journaled but its file got corrupted before the resume
        let f = dir.join("s000001_temperature.ibis");
        let mut bytes = std::fs::read(&f).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&f, &bytes).unwrap();
        let w = StoreWriter::resume(&dir).unwrap();
        assert_eq!(
            w.durable_steps(),
            vec![0],
            "bad blob must not count as durable"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_fault_retries_and_leaves_no_partial_blob() {
        let dir = tmp("tornfault");
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::none().with_torn_write_at(0).with_io_error_at(1),
        ));
        let mut w = StoreWriter::create(&dir)
            .unwrap()
            .with_fault_injector(Arc::clone(&inj));
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.get(0, "temperature").unwrap().counts(),
            sample_index(0).counts()
        );
        assert_eq!(
            store.get(1, "temperature").unwrap().counts(),
            sample_index(1).counts()
        );
        assert_eq!(inj.events().len(), 2, "both faults must be recorded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_write_fault_exhausts_attempts() {
        let dir = tmp("exhaust");
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::none()
                .with_io_error_at(0)
                .with_persistent_write_faults(),
        ));
        let mut w = StoreWriter::create(&dir).unwrap().with_fault_injector(inj);
        let err = w.put(0, "temperature", &sample_index(0)).unwrap_err();
        assert!(
            matches!(err, IbisError::StorageExhausted { attempts: 4, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_manifest_rejected() {
        let dir = tmp("hostile");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), "0\ttemp\t../../etc/passwd\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::write(dir.join("MANIFEST"), "zero\ttemp\tx.ibis\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::write(dir.join("MANIFEST"), "0\ttemp\n").unwrap();
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_manifest_still_opens() {
        let dir = tmp("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let payload = codec::encode_index(&sample_index(4));
        std::fs::write(dir.join("s000004_temperature.ibis"), &payload).unwrap();
        std::fs::write(
            dir.join("MANIFEST"),
            "4\ttemperature\ts000004_temperature.ibis\n",
        )
        .unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.steps(), vec![4]);
        assert_eq!(
            store.get(4, "temperature").unwrap().counts(),
            sample_index(4).counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Long smooth runs: every bin's codec plan stays WAH.
    fn smooth_index() -> BitmapIndex {
        let data: Vec<f64> = (0..20_000).map(|i| (i / 500) as f64).collect();
        BitmapIndex::build(&data, Binner::distinct_ints(0, 39))
    }

    #[test]
    fn all_wah_blob_keeps_legacy_ibb2_frame() {
        let dir = tmp("wahframe");
        let idx = smooth_index();
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &idx).unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(dir.join("s000000_temperature.ibis")).unwrap();
        assert_eq!(&bytes[..4], BLOB_MAGIC, "all-WAH plan must stay on IBB2");
        assert_eq!(
            bytes,
            frame_blob(&codec::encode_index(&idx)),
            "all-WAH blob bytes must match the legacy framing exactly"
        );
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(0, "temperature").unwrap().counts(), idx.counts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_wah_blobs_use_tagged_frame_and_round_trip() {
        let dir = tmp("tagframe");
        let mut w = StoreWriter::create(&dir).unwrap();
        // seed 0: every residue mod 40 hit, all bins scattered → uniform
        // Roaring plan; seed 1: only residues 0,4,…,36 hit, so 30 empty
        // (WAH) bins alongside 10 Roaring bins → mixed plan
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put(1, "temperature", &sample_index(1)).unwrap();
        w.finish().unwrap();

        let uniform = std::fs::read(dir.join("s000000_temperature.ibis")).unwrap();
        assert_eq!(&uniform[..4], BLOB_MAGIC_TAGGED);
        assert_eq!(
            uniform[4],
            ibis_core::CodecId::Roaring.tag(),
            "uniform plan must carry its codec's tag"
        );
        let mixed = std::fs::read(dir.join("s000001_temperature.ibis")).unwrap();
        assert_eq!(&mixed[..4], BLOB_MAGIC_TAGGED);
        assert_eq!(mixed[4], MIXED_TAG, "mixed plan must carry the mixed tag");

        let mut store = Store::open(&dir).unwrap();
        for step in [0usize, 1] {
            assert_eq!(
                store.get(step, "temperature").unwrap().counts(),
                sample_index(step).counts(),
                "tagged blob must decode back to the same index"
            );
        }
        assert!(store.fsck().is_clean(), "honest tags must pass fsck");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_quarantines_frame_tag_payload_mismatch() {
        let dir = tmp("tagmismatch");
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap(); // uniform Roaring
        w.put(1, "temperature", &sample_index(1)).unwrap(); // mixed
        w.finish().unwrap();

        // The tag byte sits outside the payload CRC, so neither the frame
        // CRC nor the manifest notices a flipped tag — only fsck's
        // cross-check against the decoded payload does.
        let f0 = dir.join("s000000_temperature.ibis");
        let mut bytes = std::fs::read(&f0).unwrap();
        bytes[4] = MIXED_TAG; // claim mixed over a uniform payload
        std::fs::write(&f0, &bytes).unwrap();
        let f1 = dir.join("s000001_temperature.ibis");
        let mut bytes = std::fs::read(&f1).unwrap();
        bytes[4] = ibis_core::CodecId::Wah.tag(); // claim WAH over mixed
        std::fs::write(&f1, &bytes).unwrap();

        let store = Store::open(&dir).unwrap();
        // plain reads ignore the tag and still verify + decode
        assert_eq!(
            store.get(0, "temperature").unwrap().counts(),
            sample_index(0).counts()
        );
        drop(store);

        let mut store = Store::open(&dir).unwrap();
        let report = store.fsck();
        assert_eq!(report.checked, 2);
        assert_eq!(report.quarantined.len(), 2, "{report:?}");
        for q in &report.quarantined {
            assert!(
                q.reason.contains("tag") || q.reason.contains("mixed"),
                "reason must name the tag mismatch: {}",
                q.reason
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn order_blob_round_trips_and_stays_hidden() {
        let dir = tmp("orderblob");
        let data: Vec<f64> = (0..500).map(|i| ((i * 7) % 40) as f64).collect();
        let binner = Binner::distinct_ints(0, 39);
        let order = ibis_core::RowOrder::HistogramSorted;
        let perm = order.permutation(&[], &binner, &data).unwrap();
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(
            3,
            "temperature",
            &BitmapIndex::build_permuted(&data, binner, &perm),
        )
        .unwrap();
        w.put_order(3, order, &perm).unwrap();
        w.finish().unwrap();

        let bytes = std::fs::read(dir.join("s000003___order.ibis")).unwrap();
        assert_eq!(&bytes[..4], BLOB_MAGIC_PERM);
        assert_eq!(bytes[4], order.tag());

        let mut store = Store::open(&dir).unwrap();
        // hidden from the data catalog, unreadable as an index
        assert_eq!(store.variables(3), vec!["temperature"]);
        assert!(matches!(
            store.get(3, ORDER_VARIABLE).unwrap_err(),
            IbisError::NotFound { .. }
        ));
        // but loads back exactly, and fsck accepts it
        let (got_order, got_perm) = store.load_order(3).unwrap().unwrap();
        assert_eq!(got_order, order);
        assert_eq!(got_perm, perm);
        assert_eq!(store.load_order(4).unwrap(), None);
        assert!(store.fsck().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_quarantines_corrupt_order_blob() {
        let dir = tmp("orderfsck");
        let data: Vec<f64> = (0..400).map(|i| ((i * 3) % 40) as f64).collect();
        let binner = Binner::distinct_ints(0, 39);
        let order = ibis_core::RowOrder::GrayBin;
        let perm = order.permutation(&[], &binner, &data).unwrap();
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &sample_index(0)).unwrap();
        w.put_order(0, order, &perm).unwrap();
        w.finish().unwrap();

        // An unknown order tag sits outside the payload CRC — only the
        // load/fsck tag check catches it.
        let f = dir.join("s000000___order.ibis");
        let clean = std::fs::read(&f).unwrap();
        let mut bytes = clean.clone();
        bytes[4] = 0x7E;
        std::fs::write(&f, &bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store.load_order(0).unwrap_err();
        assert!(matches!(err, IbisError::Corrupt { .. }), "{err}");

        // A payload edit with a fixed-up frame CRC still trips the
        // manifest's independent payload CRC, and fsck quarantines it.
        let payload_at = 13usize; // IBP1 + tag + u64 len
        let mut bytes = clean.clone();
        for b in &mut bytes[payload_at + 8..payload_at + 16] {
            *b = 0;
        }
        let payload_len = bytes.len() - payload_at - 4;
        let crc = crc32c(&bytes[payload_at..payload_at + payload_len]);
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&f, &bytes).unwrap();
        let mut store = Store::open(&dir).unwrap();
        let report = store.fsck();
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        assert_eq!(report.quarantined[0].variable, ORDER_VARIABLE);
        assert!(dir.join("s000000___order.ibis.quarantined").exists());
        // the data entry survives and still reads
        assert_eq!(
            store.get(0, "temperature").unwrap().counts(),
            sample_index(0).counts()
        );
        assert_eq!(store.load_order(0).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reserved_order_variable_and_identity_rejected() {
        let dir = tmp("orderreserved");
        let mut w = StoreWriter::create(&dir).unwrap();
        let err = w.put(0, ORDER_VARIABLE, &sample_index(0)).unwrap_err();
        assert!(matches!(err, IbisError::Config(_)), "{err}");
        let identity = ibis_core::RowPermutation::from_inverse(vec![0, 1, 2]).unwrap();
        let err = w
            .put_order(0, ibis_core::RowOrder::GrayBin, &identity)
            .unwrap_err();
        assert!(matches!(err, IbisError::Config(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_variable_name_rejected() {
        let dir = tmp("hostilevar");
        let mut w = StoreWriter::create(&dir).unwrap();
        let err = w.put(0, "../evil", &sample_index(0)).unwrap_err();
        assert!(matches!(err, IbisError::Config(_)), "{err}");
        assert!(w.put(0, "", &sample_index(0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_companion_round_trip() {
        let dir = tmp("lossyroundtrip");
        let exact = sample_index(7);
        let (lossy, stats) = exact.lossy(1e-2);
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &exact).unwrap();
        w.put_lossy(0, "temperature", &lossy, 1e-2, &stats).unwrap();
        w.finish().unwrap();

        let store = Store::open(&dir).unwrap();
        // the companion entry is hidden from the data-variable catalog
        assert_eq!(store.variables(0), vec!["temperature"]);
        assert!(matches!(
            store.get(0, "__lossy_temperature").unwrap_err(),
            IbisError::NotFound { .. }
        ));
        let companion = store.load_lossy(0, "temperature").unwrap().unwrap();
        assert!((companion.fpr - 1e-2).abs() < 1e-12);
        assert_eq!(companion.bits_dropped, stats.bits_dropped);
        assert_eq!(companion.zeros, stats.zeros);
        assert!(companion.measured_fpr() <= 1e-2);
        for b in 0..exact.nbins() {
            assert_eq!(
                exact.bin(b).and(companion.index.bin(b)),
                *exact.bin(b),
                "bin {b} superset"
            );
        }
        assert_eq!(store.load_lossy(0, "salinity").unwrap().map(|_| ()), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_reserved_prefix_and_bad_fpr_rejected() {
        let dir = tmp("lossyreserved");
        let mut w = StoreWriter::create(&dir).unwrap();
        let err = w
            .put(0, "__lossy_temperature", &sample_index(0))
            .unwrap_err();
        assert!(matches!(err, IbisError::Config(_)), "{err}");
        let (lossy, stats) = sample_index(0).lossy(1e-2);
        for bad in [0.0, 1e-5, 0.5, f64::NAN] {
            let err = w
                .put_lossy(0, "temperature", &lossy, bad, &stats)
                .unwrap_err();
            assert!(matches!(err, IbisError::Config(_)), "fpr {bad}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_cross_checks_lossy_class_byte() {
        // the FPR class in the frame tag sits outside the payload CRC, so
        // only fsck's cross-check against the payload FPR catches it
        let dir = tmp("lossytag");
        let exact = sample_index(3);
        let (lossy, stats) = exact.lossy(1e-1);
        let mut w = StoreWriter::create(&dir).unwrap();
        w.put(0, "temperature", &exact).unwrap();
        w.put_lossy(0, "temperature", &lossy, 1e-1, &stats).unwrap();
        let finished = w.finish().unwrap();

        let f = finished.join("s000000___lossy_temperature.ibis");
        let mut bytes = std::fs::read(&f).unwrap();
        assert_eq!(&bytes[..4], BLOB_MAGIC_LOSSY);
        assert_eq!(bytes[4], 1, "1e-1 is class 1");
        bytes[4] = 3; // claim class 3 (≤1e-3): a stricter FPR than real
        std::fs::write(&f, &bytes).unwrap();

        let mut store = Store::open(&dir).unwrap();
        let err = store.load_lossy(0, "temperature").unwrap_err();
        assert!(matches!(err, IbisError::Corrupt { .. }), "{err}");
        let report = store.fsck();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].variable, "__lossy_temperature");
        // after quarantine the companion is simply absent; data survives
        assert!(store.load_lossy(0, "temperature").unwrap().is_none());
        assert_eq!(
            store.get(0, "temperature").unwrap().counts(),
            exact.counts()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
