//! Regenerates the paper's Figure 08 — run with
//! `cargo bench -p ibis-bench --bench fig08_heat3d_mic`.

fn main() {
    ibis_bench::figures::fig08();
}
