//! Correlation *queries* over data subsets — the interactive framework the
//! paper's Section 4.1 describes as its own prior work and builds the miner
//! on: "users can submit different SQL queries to specify the data subsets
//! (either value-based or dimension-based subsets) they are interested in
//! for correlation analysis".
//!
//! A [`SubsetQuery`] combines an optional value predicate with an optional
//! spatial predicate (a contiguous position range — a Z-order block when the
//! data was laid out with [`ibis_core::ZOrderLayout`]); evaluation yields a
//! compressed selection vector, and [`correlation_query`] computes the
//! relationship metrics of two variables restricted to the selected
//! sub-population — all from bitmaps.

use crate::aggregate::{self, Estimate};
use crate::entropy::{conditional_entropy_from_counts, mutual_information_from_counts};
use ibis_core::{BitmapIndex, WahVec};
use std::ops::Range;

/// A subset specification over one variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubsetQuery {
    /// Keep elements whose value lies in `[lo, hi)` (bin-granular: a bin is
    /// included when its range intersects the interval, the usual bitmap
    /// index semantics).
    pub value_range: Option<(f64, f64)>,
    /// Keep elements at these positions (half-open; a spatial block under a
    /// Z-order layout).
    pub position_range: Option<Range<u64>>,
}

impl SubsetQuery {
    /// Matches everything.
    pub fn all() -> Self {
        SubsetQuery::default()
    }

    /// Value-based subset (`WHERE lo <= v AND v < hi`).
    pub fn value(lo: f64, hi: f64) -> Self {
        SubsetQuery {
            value_range: Some((lo, hi)),
            position_range: None,
        }
    }

    /// Dimension-based subset (a contiguous position / Z-order block).
    pub fn region(range: Range<u64>) -> Self {
        SubsetQuery {
            value_range: None,
            position_range: Some(range),
        }
    }

    /// Restricts this query to a value range as well.
    pub fn with_value(mut self, lo: f64, hi: f64) -> Self {
        self.value_range = Some((lo, hi));
        self
    }

    /// Restricts this query to a position range as well.
    pub fn with_region(mut self, range: Range<u64>) -> Self {
        self.position_range = Some(range);
        self
    }

    /// Evaluates to a selection vector over the index's positions.
    pub fn evaluate(&self, index: &BitmapIndex) -> WahVec {
        let n = index.len();
        let mut sel = match self.value_range {
            Some((lo, hi)) => index.query_range(lo, hi),
            None => WahVec::ones(n),
        };
        if let Some(range) = &self.position_range {
            assert!(
                range.start <= range.end && range.end <= n,
                "region out of range"
            );
            let mask = region_mask(range.clone(), n);
            sel = sel.and(&mask);
        }
        sel
    }
}

/// A compressed mask with ones exactly in `range`.
pub fn region_mask(range: Range<u64>, len: u64) -> WahVec {
    assert!(
        range.start <= range.end && range.end <= len,
        "region out of range"
    );
    let mut b = ibis_core::WahBuilder::new();
    b.append_run(false, range.start);
    b.append_run(true, range.end - range.start);
    b.append_run(false, len - range.end);
    b.finish()
}

/// The answer to a correlation query over two variables.
#[derive(Debug, Clone)]
pub struct CorrelationAnswer {
    /// Elements in the combined selection.
    pub selected: u64,
    /// Mutual information (bits) of the two variables within the selection.
    pub mutual_information: f64,
    /// Conditional entropy `H(A|B)` within the selection.
    pub conditional_entropy: f64,
    /// Approximate Pearson correlation (bin midpoints); `None` when a
    /// variable is constant within the selection.
    pub pearson: Option<f64>,
    /// Approximate mean of variable A within the selection.
    pub mean_a: Option<Estimate>,
    /// Approximate mean of variable B within the selection.
    pub mean_b: Option<Estimate>,
}

/// Computes the relationship of two variables restricted to the
/// intersection of their subset queries — the paper's correlation-query
/// primitive, evaluated purely on bitmaps.
pub fn correlation_query(
    a: &BitmapIndex,
    b: &BitmapIndex,
    query_a: &SubsetQuery,
    query_b: &SubsetQuery,
) -> CorrelationAnswer {
    assert_eq!(a.len(), b.len(), "variables must cover the same elements");
    let sel = query_a.evaluate(a).and(&query_b.evaluate(b));
    let selected = sel.count_ones();
    // joint distribution restricted to the selection
    let nb = b.nbins();
    let mut joint = vec![0u64; a.nbins() * nb];
    if selected > 0 {
        for j in 0..a.nbins() {
            if a.counts()[j] == 0 {
                continue;
            }
            let masked = a.bin(j).and(&sel);
            if masked.count_ones() == 0 {
                continue;
            }
            for (k, slot) in joint[j * nb..(j + 1) * nb].iter_mut().enumerate() {
                if b.counts()[k] != 0 {
                    *slot = masked.and_count(b.bin(k));
                }
            }
        }
    }
    CorrelationAnswer {
        selected,
        mutual_information: mutual_information_from_counts(&joint, a.nbins(), nb),
        conditional_entropy: conditional_entropy_from_counts(&joint, a.nbins(), nb),
        pearson: aggregate::pearson_selected(a, b, &sel),
        mean_a: aggregate::mean_selected(a, &sel),
        mean_b: aggregate::mean_selected(b, &sel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::Binner;

    fn index(data: &[f64]) -> BitmapIndex {
        BitmapIndex::build(data, Binner::fixed_width(0.0, 10.0, 100))
    }

    #[test]
    fn all_selects_everything() {
        let data: Vec<f64> = (0..500).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::all().evaluate(&idx);
        assert_eq!(sel.count_ones(), 500);
    }

    #[test]
    fn value_query_matches_scan() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::value(2.0, 5.0).evaluate(&idx);
        let want = data.iter().filter(|&&v| (2.0..5.0).contains(&v)).count() as u64;
        assert_eq!(sel.count_ones(), want);
    }

    #[test]
    fn region_query_is_positional() {
        let data: Vec<f64> = (0..300).map(|i| i as f64 / 100.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::region(100..200).evaluate(&idx);
        assert_eq!(sel.count_ones(), 100);
        assert!(!sel.get(99));
        assert!(sel.get(100));
        assert!(sel.get(199));
        assert!(!sel.get(200));
    }

    #[test]
    fn combined_query_intersects() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let idx = index(&data);
        let sel = SubsetQuery::region(0..500)
            .with_value(2.0, 5.0)
            .evaluate(&idx);
        let want = data[..500]
            .iter()
            .filter(|&&v| (2.0..5.0).contains(&v))
            .count() as u64;
        assert_eq!(sel.count_ones(), want);
    }

    #[test]
    fn region_mask_edges() {
        let m = region_mask(0..0, 10);
        assert_eq!(m.count_ones(), 0);
        let m = region_mask(0..10, 10);
        assert_eq!(m.count_ones(), 10);
        let m = region_mask(3..7, 10);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "region out of range")]
    fn region_out_of_range_panics() {
        let _ = region_mask(5..20, 10);
    }

    #[test]
    fn correlation_query_finds_planted_relationship() {
        // b tracks a inside positions [0, 500); independent-ish outside
        let n = 1000usize;
        let a: Vec<f64> = (0..n).map(|i| (i % 90) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if i < 500 {
                    (i % 90) as f64 / 10.0
                } else {
                    ((i.wrapping_mul(2654435761) >> 13) % 90) as f64 / 10.0
                }
            })
            .collect();
        let ia = index(&a);
        let ib = index(&b);
        let inside = correlation_query(
            &ia,
            &ib,
            &SubsetQuery::region(0..500),
            &SubsetQuery::region(0..500),
        );
        let outside = correlation_query(
            &ia,
            &ib,
            &SubsetQuery::region(500..1000),
            &SubsetQuery::region(500..1000),
        );
        assert_eq!(inside.selected, 500);
        assert!(inside.mutual_information > outside.mutual_information + 1.0);
        assert!(inside.pearson.unwrap() > 0.99);
        assert!(outside.pearson.unwrap().abs() < 0.3);
        assert!(inside.conditional_entropy < outside.conditional_entropy);
    }

    #[test]
    fn empty_selection_is_well_defined() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let idx = index(&data);
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::value(9.0, 10.0), // nothing up there
            &SubsetQuery::all(),
        );
        assert_eq!(ans.selected, 0);
        assert_eq!(ans.mutual_information, 0.0);
        assert!(ans.pearson.is_none());
        assert!(ans.mean_a.is_none());
    }

    #[test]
    fn query_means_are_bounded_estimates() {
        let data: Vec<f64> = (0..400).map(|i| (i % 40) as f64 / 4.0).collect();
        let idx = index(&data);
        let ans = correlation_query(
            &idx,
            &idx,
            &SubsetQuery::region(0..200),
            &SubsetQuery::all(),
        );
        let true_mean = data[..200].iter().sum::<f64>() / 200.0;
        assert!(ans.mean_a.unwrap().contains(true_mean));
    }
}
