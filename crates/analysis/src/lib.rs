#![warn(missing_docs)]
//! # ibis-analysis — online and offline analytics on bitmaps
//!
//! Every analysis in the paper, in both its *full data* form (scans over raw
//! arrays) and its *bitmaps* form (popcounts + compressed AND/XOR on
//! [`ibis_core::BitmapIndex`]) — with **exactly equal results** under the
//! same binning scale, the paper's central no-accuracy-loss claim (asserted
//! bit-for-bit by this crate's tests):
//!
//! * [`entropy`] — Shannon entropy, mutual information, conditional entropy
//!   (Equations 4–6).
//! * [`emd`] — Earth Mover's Distance, count-based and spatial/XOR variants
//!   (Equation 3, Figure 4).
//! * [`selection`] — greedy importance-driven time-steps selection with
//!   fixed-length and information-volume partitioning, plus a
//!   dynamic-programming selector (Section 3).
//! * [`mining`] — correlation mining over value and spatial subsets
//!   (Algorithm 2), single- and multi-level.
//! * [`sampling`] — the in-situ sampling baseline and its information-loss
//!   measurements (Section 5.5).
//! * [`cfp`] — cumulative frequency plots, the paper's accuracy-loss
//!   presentation.
//! * [`aggregate`] / [`query`] — the prior-work capabilities the paper
//!   builds on: approximate aggregation with guaranteed error bounds, and
//!   correlation queries over value/dimension subsets (Section 4.1).

pub mod aggregate;
pub mod cfp;
pub mod emd;
pub mod entropy;
pub mod histogram;
pub mod impute;
pub mod mining;
pub mod query;
pub mod sampling;
pub mod selection;
pub mod subgroup;
pub mod summary;

pub use aggregate::Estimate;
pub use cfp::Cfp;
pub use impute::{impute_from, ImputeStrategy, Imputed, MaskedIndex};
pub use mining::{
    mine_full, mine_index, mine_index_serial, mine_multilevel, MinedSubset, MiningConfig,
    MiningResult,
};
pub use query::{
    correlation_partial_ml_shard, correlation_query, correlation_query_mapped,
    correlation_query_ml, correlation_query_ml_mapped, evaluate_ml_shard, execute_range_plan,
    finish_correlation, joint_counts_selected, joint_counts_selected_naive, plan_value_range,
    region_mask, region_mask_mapped, CorrelationAnswer, CorrelationPartial, QueryError, RangePlan,
    SubsetQuery,
};
pub use sampling::{lossy_summaries, sample, SamplingMethod};
pub use selection::{
    select_dp, select_dp_serial, select_greedy, select_greedy_lossy, select_greedy_serial,
    Partitioning, Selection,
};
pub use subgroup::{discover_subgroups, Subgroup, SubgroupConfig};
pub use summary::{Metric, StepSummary, VarSummary};
