//! Automatic core allocation for the Separate-Cores strategy —
//! Equations 1 and 2 of the paper:
//!
//! ```text
//! Core_simulate = Core_total × Time_simulate / (Time_simulate + Time_bitmap)
//! Core_bitmap   = Core_total − Core_simulate
//! ```
//!
//! A short probe run measures the average per-step simulation and bitmap
//! generation times; the split then balances the two pipelines so the queue
//! neither starves nor overflows.

use crate::machine::MachineModel;
use crate::pipeline::{CoreAllocation, Reduction};
use ibis_core::{Binner, BitmapIndex, RowOrder};
use ibis_datagen::{Simulation, StepOutput};
use std::time::{Duration, Instant};

/// Measured probe times.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Mean per-step simulation seconds (serial-equivalent).
    pub time_simulate: f64,
    /// Mean per-step bitmap-generation seconds (serial-equivalent).
    pub time_bitmap: f64,
}

impl Calibration {
    /// Applies Equations 1–2 for a `total`-core budget; both sets get at
    /// least one core.
    pub fn allocate(&self, total: usize) -> CoreAllocation {
        assert!(total >= 2, "separate cores need at least two cores");
        let frac = self.time_simulate / (self.time_simulate + self.time_bitmap).max(1e-12);
        let sim = ((total as f64 * frac).round() as usize).clamp(1, total - 1);
        CoreAllocation::Separate {
            sim_cores: sim,
            bitmap_cores: total - sim,
        }
    }
}

/// Probes `probe_steps` steps of the simulation with an Algorithm-1 bitmap
/// build per step, measuring both phases.
pub fn calibrate<S: Simulation>(
    sim: &mut S,
    binners: &[Binner],
    machine: &MachineModel,
    probe_cores: usize,
    probe_steps: usize,
) -> Calibration {
    assert!(probe_steps >= 1, "need at least one probe step");
    let pool = machine.pool(probe_cores);
    let mut sim_t = Duration::ZERO;
    let mut bm_t = Duration::ZERO;
    for _ in 0..probe_steps {
        let t0 = Instant::now();
        let out = pool.install(|| sim.step());
        sim_t += t0.elapsed();
        let t0 = Instant::now();
        pool.install(|| {
            for (f, binner) in out.fields.iter().zip(binners) {
                let _ = ibis_core::build_index_parallel(&f.data, binner.clone());
            }
        });
        bm_t += t0.elapsed();
    }
    Calibration {
        time_simulate: sim_t.as_secs_f64() / probe_steps as f64,
        time_bitmap: bm_t.as_secs_f64() / probe_steps as f64,
    }
}

/// Convenience: probe then allocate (`Reduction::Bitmaps` assumed — the only
/// reduction with a meaningful split).
pub fn auto_allocate<S: Simulation>(
    sim: &mut S,
    binners: &[Binner],
    machine: &MachineModel,
    total_cores: usize,
    probe_steps: usize,
) -> CoreAllocation {
    calibrate(sim, binners, machine, total_cores, probe_steps).allocate(total_cores)
}

/// Sanity helper used by benches: the reduction an allocation is meant for.
pub fn default_reduction() -> Reduction {
    Reduction::Bitmaps
}

/// Suggests the [`RowOrder`] whose reordered index of the probe step's
/// first field is smallest — the same bin histogram the probed index
/// caches drives the data-dependent orders, so the probe costs one index
/// build per candidate. Spatial orders are only candidates when `dims`
/// is known; [`RowOrder::Identity`] wins ties (nothing extra to persist
/// or map at query time).
pub fn suggest_row_order(out: &StepOutput, binner: &Binner, dims: Option<[usize; 3]>) -> RowOrder {
    let Some(f0) = out.fields.first() else {
        return RowOrder::Identity;
    };
    let identity_bytes = BitmapIndex::build(&f0.data, binner.clone()).size_bytes();
    let mut best = (RowOrder::Identity, identity_bytes);
    for order in RowOrder::ALL {
        if order == RowOrder::Identity || (order.is_spatial() && dims.is_none()) {
            continue;
        }
        let d: Vec<usize> = dims.map(|a| a.to_vec()).unwrap_or_default();
        let Some(perm) = order.permutation(&d, binner, &f0.data) else {
            continue;
        };
        let size = BitmapIndex::build_permuted(&f0.data, binner.clone(), &perm).size_bytes();
        if size < best.1 {
            best = (order, size);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_datagen::{Heat3D, Heat3DConfig};

    #[test]
    fn allocation_follows_time_ratio() {
        // equal times: even split
        let c = Calibration {
            time_simulate: 1.0,
            time_bitmap: 1.0,
        };
        assert_eq!(
            c.allocate(28),
            CoreAllocation::Separate {
                sim_cores: 14,
                bitmap_cores: 14
            }
        );
        // simulation 3x heavier: it gets ~3/4 of the cores (the paper's
        // LULESH case, where few bitmap cores suffice)
        let c = Calibration {
            time_simulate: 3.0,
            time_bitmap: 1.0,
        };
        assert_eq!(
            c.allocate(28),
            CoreAllocation::Separate {
                sim_cores: 21,
                bitmap_cores: 7
            }
        );
        // bitmap heavier (the paper's Heat3D case): more cores to bitmaps
        let c = Calibration {
            time_simulate: 1.0,
            time_bitmap: 1.5,
        };
        let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = c.allocate(28)
        else {
            panic!()
        };
        assert!(bitmap_cores > sim_cores);
    }

    #[test]
    fn allocation_never_empties_a_set() {
        let c = Calibration {
            time_simulate: 1000.0,
            time_bitmap: 0.0001,
        };
        let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = c.allocate(4)
        else {
            panic!()
        };
        assert!(sim_cores >= 1 && bitmap_cores >= 1);
        let c = Calibration {
            time_simulate: 0.0001,
            time_bitmap: 1000.0,
        };
        let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = c.allocate(4)
        else {
            panic!()
        };
        assert!(sim_cores >= 1 && bitmap_cores >= 1);
    }

    #[test]
    fn probe_measures_positive_times() {
        let mut sim = Heat3D::new(Heat3DConfig::tiny());
        let binners = vec![Binner::precision(-1.0, 101.0, 1)];
        let cal = calibrate(&mut sim, &binners, &MachineModel::xeon32(), 2, 2);
        assert!(cal.time_simulate > 0.0);
        assert!(cal.time_bitmap > 0.0);
        let alloc = cal.allocate(8);
        let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = alloc
        else {
            panic!()
        };
        assert_eq!(sim_cores + bitmap_cores, 8);
    }

    #[test]
    fn suggests_a_size_winning_order() {
        // Scattered-by-position but heavily skewed values: sorting rows by
        // bin frequency turns the bitmaps into near-pure runs, so a
        // data-dependent order must beat identity.
        let data: Vec<f64> = (0..20_000).map(|i| ((i * 37) % 50) as f64).collect();
        let out = StepOutput {
            step: 0,
            fields: vec![ibis_datagen::Field::new("temperature", data)],
        };
        let binner = Binner::distinct_ints(0, 49);
        let suggested = suggest_row_order(&out, &binner, None);
        assert!(
            suggested.is_data_dependent(),
            "expected a data-dependent order, got {}",
            suggested.name()
        );

        // Constant data: every order ties with identity, identity wins.
        let flat = StepOutput {
            step: 0,
            fields: vec![ibis_datagen::Field::new("temperature", vec![1.0; 4096])],
        };
        assert_eq!(
            suggest_row_order(&flat, &binner, Some([16, 16, 16])),
            RowOrder::Identity
        );
    }

    #[test]
    #[should_panic(expected = "at least two cores")]
    fn rejects_single_core_split() {
        let c = Calibration {
            time_simulate: 1.0,
            time_bitmap: 1.0,
        };
        let _ = c.allocate(1);
    }
}
