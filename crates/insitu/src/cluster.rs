//! Parallel in-situ environment (Section 5.3, Figure 13): `N` nodes each
//! simulate a z-slab of the Heat3D mesh, exchange boundary planes with
//! their neighbours every sweep (the paper's MPI communication, carried
//! over channels), build local bitmaps, and cooperate on a *global*
//! time-steps selection.
//!
//! Global selection works because every quantity the conditional-entropy
//! metric needs is **additive across nodes**: each node computes the joint
//! bin counts of (candidate, previously-selected) over its own slab, a
//! coordinator sums them and evaluates the metric on the global counts —
//! bit-identical to a single-node run over the whole mesh.
//!
//! Output goes either to node-local disks (independent, parallel) or to one
//! shared remote data server whose link serializes all writers
//! ([`crate::io::RemoteLink`]) — the contrast that yields the paper's
//! 1.24×–3.79× remote-case speedups.
//!
//! ## Fault tolerance
//!
//! A node that panics is contained by `catch_unwind` on its own thread and
//! surfaces as a structured [`IbisError::NodeFailure`], never as a hung
//! cluster: the dead node's channels disconnect, its neighbours' halo
//! exchanges fail fast, and the coordinator's per-vote `recv_timeout`
//! backstop catches any node that can no longer vote. Storage writes go
//! through the retrying [`write_with_retry`] path. Cascade errors (a
//! healthy node aborting because its neighbour vanished) are folded into
//! the root-cause report rather than listed as independent failures.

use crate::error::{panic_message, IbisError, Result, WorkerRole};
use crate::fault::{FaultInjector, FaultSite};
use crate::io::{LocalDisk, RemoteLink, Storage};
use crate::machine::{
    decontend, modeled_seconds, timed_in_pool, MachineModel, PhaseClock, ScalingModel,
};
use crate::pipeline::RobustnessConfig;
use crate::report::PhaseTimes;
use crate::retry::write_with_retry;
use crossbeam::channel::{bounded, Receiver, Sender};
use ibis_analysis::entropy::conditional_entropy_from_counts;
use ibis_analysis::histogram::{joint_counts_from_indexes, joint_histogram};
use ibis_analysis::selection::fixed_intervals;
use ibis_core::{Binner, BitmapIndex};
use ibis_datagen::{Heat3DConfig, Heat3DPartition};
use ibis_obs::{LazyCounter, LazyHistogram, TIME_NS_BOUNDS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

static OBS_CLUSTER_RUNS: LazyCounter = LazyCounter::new("cluster.runs");
static OBS_CLUSTER_NODE_STEPS: LazyCounter = LazyCounter::new("cluster.node.steps");
/// Wall time one node spends on one time-step (halo exchange + sweeps +
/// reduction + its share of the coordinated selection).
static OBS_CLUSTER_STEP_NS: LazyHistogram = LazyHistogram::new("cluster.step.ns", TIME_NS_BOUNDS);
static OBS_CLUSTER_VOTES: LazyCounter = LazyCounter::new("cluster.votes");
static OBS_CLUSTER_NODE_FAILURES: LazyCounter = LazyCounter::new("cluster.node.failures");
static OBS_CLUSTER_CASCADES: LazyCounter = LazyCounter::new("cluster.cascades");

/// Where each node's selected summaries are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterIo {
    /// Node-local disks: writes proceed in parallel.
    Local,
    /// One shared remote data server (~100 MB/s): writes contend.
    Remote,
}

/// Reduction method for the cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterReduction {
    /// Local WAH bitmap indices.
    Bitmaps,
    /// Keep (and ship) the raw slabs.
    FullData,
}

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes (threads-as-nodes).
    pub nodes: usize,
    /// Cores used on each node.
    pub cores_per_node: usize,
    /// Per-node platform profile.
    pub machine: MachineModel,
    /// The Heat3D mesh, split along z across the nodes.
    pub heat: Heat3DConfig,
    /// Jacobi sweeps per output time-step.
    pub sweeps_per_step: usize,
    /// Time-steps to simulate.
    pub steps: usize,
    /// Time-steps to select.
    pub select_k: usize,
    /// Shared binning scale for the temperature variable.
    pub binner: Binner,
    /// Reduction method.
    pub reduction: ClusterReduction,
    /// Output target.
    pub io: ClusterIo,
    /// Bandwidth of the shared remote link in bytes/second (the paper's
    /// data server runs at ~100 MB/s; benches rescale it to preserve the
    /// paper's data-to-bandwidth ratio at reduced problem sizes).
    pub remote_bw: f64,
    /// Simulation scalability per node.
    pub sim_scaling: ScalingModel,
    /// Fault-tolerance configuration. The coordinated global selection
    /// needs every node's vote, so a node failure always aborts the run
    /// (the `policy` field is not consulted); the `retry` schedule and
    /// `faults` plan apply as in the single-node pipeline.
    pub robustness: RobustnessConfig,
    /// How long the coordinator waits for any single node's vote before
    /// declaring the cluster wedged (the deadlock backstop). Keep this
    /// comfortably above one selection interval's compute time.
    pub coordinator_timeout: Duration,
}

/// The cluster run's result.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Slowest node's modeled per-phase times (nodes run in parallel).
    pub phases: PhaseTimes,
    /// End-to-end modeled time (slowest node, I/O contention included).
    pub total_modeled: f64,
    /// Globally selected step indices.
    pub selected: Vec<usize>,
    /// Total bytes shipped to storage across all nodes.
    pub bytes_written: u64,
    /// Nodes used.
    pub nodes: usize,
    /// Deterministic log of injected faults that fired (empty without
    /// injection).
    pub fault_events: Vec<String>,
}

/// One node's local summary of a step.
enum LocalSummary {
    Bitmap(BitmapIndex),
    Full(Vec<f64>),
}

impl LocalSummary {
    fn size_bytes(&self) -> u64 {
        match self {
            LocalSummary::Bitmap(idx) => idx.size_bytes() as u64,
            LocalSummary::Full(d) => (d.len() * 8) as u64,
        }
    }

    /// Joint bin counts of (self = candidate, prev) over this node's slab.
    fn joint_counts(&self, prev: &LocalSummary, binner: &Binner) -> Vec<u64> {
        match (self, prev) {
            (LocalSummary::Bitmap(a), LocalSummary::Bitmap(b)) => joint_counts_from_indexes(a, b),
            (LocalSummary::Full(a), LocalSummary::Full(b)) => joint_histogram(a, b, binner, binner),
            _ => unreachable!("a run uses one reduction throughout"),
        }
    }
}

/// Per-interval message from a node: local joint counts per candidate step.
struct NodeVote {
    /// `(step index, flattened joint counts vs prev)` per buffered candidate.
    candidates: Vec<(usize, Vec<u64>)>,
}

/// A node aborted because a peer it depends on went away.
fn disconnected(waiting_for: &str) -> IbisError {
    IbisError::Disconnected {
        role: WorkerRole::Node,
        waiting_for: waiting_for.to_string(),
    }
}

/// Runs the cluster experiment; returns the per-node-max report, or a
/// structured error naming every failed node — a node panic can no longer
/// hang the halo exchange or the coordinator.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterReport> {
    if cfg.nodes < 1 {
        return Err(IbisError::Config("need at least one node".into()));
    }
    if cfg.steps < 1 || cfg.select_k < 1 || cfg.select_k > cfg.steps {
        return Err(IbisError::Config(format!(
            "bad steps/k: select {} of {}",
            cfg.select_k, cfg.steps
        )));
    }
    cfg.robustness.retry.validate()?;
    OBS_CLUSTER_RUNS.inc();
    let injector = Arc::new(FaultInjector::new(cfg.robustness.faults.clone()));
    let nbins = cfg.binner.nbins();
    // the partitions' source clock must tick with this run's sweep count
    let mut heat = cfg.heat.clone();
    heat.sweeps_per_step = cfg.sweeps_per_step;
    let parts = Heat3DPartition::split(&heat, cfg.nodes);
    let intervals = if cfg.select_k > 1 {
        fixed_intervals(cfg.steps, cfg.select_k - 1)
    } else {
        vec![]
    };

    // Storage: one shared remote link, or one disk per node.
    let remote = RemoteLink::new(cfg.remote_bw);
    let locals: Vec<LocalDisk> = (0..cfg.nodes)
        .map(|_| LocalDisk::new(cfg.machine.disk_bw))
        .collect();

    // Halo channels: one pair per adjacent node boundary.
    let mut up_tx: Vec<Option<Sender<Vec<f64>>>> = vec![None; cfg.nodes];
    let mut up_rx: Vec<Option<Receiver<Vec<f64>>>> = vec![None; cfg.nodes];
    let mut down_tx: Vec<Option<Sender<Vec<f64>>>> = vec![None; cfg.nodes];
    let mut down_rx: Vec<Option<Receiver<Vec<f64>>>> = vec![None; cfg.nodes];
    for i in 0..cfg.nodes.saturating_sub(1) {
        let (tx, rx) = bounded(1); // i -> i+1 (upward boundary plane)
        up_tx[i] = Some(tx);
        up_rx[i + 1] = Some(rx);
        let (tx, rx) = bounded(1); // i+1 -> i (downward boundary plane)
        down_tx[i + 1] = Some(tx);
        down_rx[i] = Some(rx);
    }

    // Selection coordination channels, bounded to the cluster size so a
    // node-failure storm can never grow an unbounded backlog: each node
    // sends exactly one vote per selection interval and then blocks on
    // its decision receive, so at most `nodes` votes are ever in flight,
    // and each decision channel holds at most the single broadcast winner.
    let (vote_tx, vote_rx) = bounded::<NodeVote>(cfg.nodes.max(1));
    let mut decision_tx: Vec<Sender<usize>> = Vec::new();
    let mut decision_rx: Vec<Option<Receiver<usize>>> = Vec::new();
    for _ in 0..cfg.nodes {
        let (tx, rx) = bounded::<usize>(1);
        decision_tx.push(tx);
        decision_rx.push(Some(rx));
    }

    struct NodeResult {
        phases: PhaseTimes,
        total: f64,
        bytes: u64,
        selected: Vec<usize>,
    }

    let (results, coordinator_err) =
        std::thread::scope(|scope| -> (Vec<Result<NodeResult>>, Option<IbisError>) {
            let mut handles = Vec::new();
            for (node_id, mut part) in parts.into_iter().enumerate() {
                let utx = up_tx[node_id].take();
                let urx = up_rx[node_id].take();
                let dtx = down_tx[node_id].take();
                let drx = down_rx[node_id].take();
                let Some(my_decisions) = decision_rx[node_id].take() else {
                    unreachable!("one decision channel per node");
                };
                let vote_tx = vote_tx.clone();
                let intervals = intervals.clone();
                let remote = &remote;
                let local_disk = &locals[node_id];
                let cfg = &cfg;
                let injector = Arc::clone(&injector);
                handles.push(scope.spawn(move || -> Result<NodeResult> {
                    let body = move || -> Result<NodeResult> {
                        let pool = cfg.machine.pool(cfg.cores_per_node);
                        let threads = pool.current_num_threads();
                        let mut sim_t = Duration::ZERO;
                        let mut reduce_t = Duration::ZERO;
                        let mut select_t = Duration::ZERO;
                        let mut output_modeled = 0.0f64;
                        let mut bytes = 0u64;
                        let mut prev: Option<LocalSummary> = None;
                        let mut buffer: Vec<(usize, LocalSummary)> = Vec::new();
                        let mut selected = Vec::new();
                        let mut cur_interval = 0usize;

                        let storage: &dyn Storage = match cfg.io {
                            ClusterIo::Remote => remote,
                            ClusterIo::Local => local_disk,
                        };
                        let ship = |bytes_out: u64,
                                    sim_t: Duration,
                                    reduce_t: Duration,
                                    select_t: Duration,
                                    output_modeled: &mut f64|
                         -> Result<()> {
                            let now =
                                node_time(sim_t, reduce_t, select_t, *output_modeled, threads, cfg);
                            let receipt = write_with_retry(
                                storage,
                                &injector,
                                &cfg.robustness.retry,
                                now,
                                bytes_out,
                            )?;
                            *output_modeled += receipt.seconds;
                            Ok(())
                        };

                        for step in 0..cfg.steps {
                            OBS_CLUSTER_NODE_STEPS.inc();
                            let _step_span = OBS_CLUSTER_STEP_NS.span();
                            injector.maybe_panic(FaultSite::Node(node_id), step);
                            // --- simulate (halo exchange + sweeps) ---
                            // Boundary copies are timed on the node thread;
                            // the sweep inside its pool. Waits on neighbours
                            // are excluded (on an oversubscribed host they
                            // measure the scheduler, not the algorithm). A
                            // failed send/recv means the neighbour died —
                            // abort this node instead of hanging.
                            for _ in 0..cfg.sweeps_per_step {
                                let c = PhaseClock::start();
                                if let Some(tx) = &utx {
                                    tx.send(part.boundary_high())
                                        .map_err(|_| disconnected("upper halo neighbour"))?;
                                }
                                if let Some(tx) = &dtx {
                                    tx.send(part.boundary_low())
                                        .map_err(|_| disconnected("lower halo neighbour"))?;
                                }
                                sim_t += c.elapsed();
                                if let Some(rx) = &urx {
                                    let plane = rx
                                        .recv()
                                        .map_err(|_| disconnected("lower halo neighbour"))?;
                                    let c = PhaseClock::start();
                                    part.set_halo_low(&plane);
                                    sim_t += c.elapsed();
                                }
                                if let Some(rx) = &drx {
                                    let plane = rx
                                        .recv()
                                        .map_err(|_| disconnected("upper halo neighbour"))?;
                                    let c = PhaseClock::start();
                                    part.set_halo_high(&plane);
                                    sim_t += c.elapsed();
                                }
                                let ((), d) = timed_in_pool(&pool, || part.sweep());
                                sim_t += d;
                            }
                            let c = PhaseClock::start();
                            let data = part.owned_data();
                            sim_t += c.elapsed();

                            // --- reduce ---
                            let (summary, d) = timed_in_pool(&pool, || match cfg.reduction {
                                ClusterReduction::Bitmaps => LocalSummary::Bitmap(
                                    ibis_core::build_index_parallel(&data, cfg.binner.clone()),
                                ),
                                ClusterReduction::FullData => LocalSummary::Full(data),
                            });
                            reduce_t += d;

                            // --- select (global, coordinated) ---
                            if step == 0 {
                                selected.push(0);
                                bytes += summary.size_bytes();
                                ship(
                                    summary.size_bytes(),
                                    sim_t,
                                    reduce_t,
                                    select_t,
                                    &mut output_modeled,
                                )?;
                                prev = Some(summary);
                                continue;
                            }
                            buffer.push((step, summary));
                            let done = intervals
                                .get(cur_interval)
                                .is_some_and(|iv| step + 1 == iv.end);
                            if !done {
                                continue;
                            }
                            cur_interval += 1;
                            let clock = PhaseClock::start();
                            let Some(p) = prev.as_ref() else {
                                unreachable!("seeded at step 0");
                            };
                            let candidates: Vec<(usize, Vec<u64>)> = buffer
                                .iter()
                                .map(|(idx, s)| (*idx, s.joint_counts(p, &cfg.binner)))
                                .collect();
                            select_t += clock.elapsed();
                            OBS_CLUSTER_VOTES.inc();
                            vote_tx
                                .send(NodeVote { candidates })
                                .map_err(|_| disconnected("coordinator (vote)"))?;
                            let winner = my_decisions
                                .recv()
                                .map_err(|_| disconnected("coordinator (decision)"))?;
                            selected.push(winner);
                            let mut kept = None;
                            for (idx, s) in buffer.drain(..) {
                                if idx == winner {
                                    kept = Some(s);
                                }
                            }
                            let Some(kept) = kept else {
                                return Err(IbisError::Coordination(format!(
                                    "coordinator picked step {winner} outside the interval"
                                )));
                            };
                            bytes += kept.size_bytes();
                            ship(
                                kept.size_bytes(),
                                sim_t,
                                reduce_t,
                                select_t,
                                &mut output_modeled,
                            )?;
                            prev = Some(kept);
                        }

                        // CPU-time clocks (one-thread pools, node-thread
                        // work) need no correction; wall-measured wide
                        // pools do.
                        let active = cfg.nodes * threads;
                        let sim_t = if threads == 1 {
                            sim_t
                        } else {
                            decontend(sim_t, active)
                        };
                        let reduce_t = if threads == 1 {
                            reduce_t
                        } else {
                            decontend(reduce_t, active)
                        };
                        let select_t = select_t; // always node-thread CPU time
                        let speed = cfg.machine.core_speed;
                        let phases = PhaseTimes {
                            simulate: modeled_seconds(
                                sim_t,
                                threads,
                                cfg.cores_per_node,
                                &cfg.sim_scaling,
                                speed,
                            ),
                            reduce: modeled_seconds(
                                reduce_t,
                                threads,
                                cfg.cores_per_node,
                                &ScalingModel::bitmap_gen(),
                                speed,
                            ),
                            select: modeled_seconds(
                                select_t,
                                threads,
                                cfg.cores_per_node,
                                &ScalingModel::selection(),
                                speed,
                            ),
                            output: output_modeled,
                        };
                        Ok(NodeResult {
                            total: phases.sum(),
                            phases,
                            bytes,
                            selected,
                        })
                    };
                    // Containment boundary: a panic anywhere in this node
                    // (injected or real) becomes a structured error, and
                    // dropping the node's channel endpoints on exit is what
                    // unblocks its neighbours.
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(result) => result,
                        Err(payload) => Err(IbisError::WorkerPanic {
                            role: WorkerRole::Node,
                            step: None,
                            message: panic_message(payload.as_ref()),
                        }),
                    }
                }));
            }
            drop(vote_tx);

            // Coordinator: sum each interval's joint counts across nodes,
            // evaluate conditional entropy on the *global* counts, broadcast
            // the winner. Each vote wait is bounded: if a node can no longer
            // vote (died mid-interval while its peers already voted and
            // still hold their vote senders), the timeout fires, the
            // decision channels drop, and every blocked node unwinds with a
            // Disconnected error instead of deadlocking.
            let mut coordinator_err = None;
            let mut pending: Vec<NodeVote> = Vec::new();
            'intervals: for _ in 0..intervals.len() {
                pending.clear();
                for _ in 0..cfg.nodes {
                    match vote_rx.recv_timeout(cfg.coordinator_timeout) {
                        Ok(vote) => pending.push(vote),
                        Err(e) => {
                            coordinator_err =
                                Some(IbisError::Coordination(format!("collecting votes: {e}")));
                            break 'intervals;
                        }
                    }
                }
                let candidates = &pending[0].candidates;
                let mut best: Option<(usize, f64)> = None;
                for (c, (step_idx, _)) in candidates.iter().enumerate() {
                    let mut global = vec![0u64; nbins * nbins];
                    for vote in &pending {
                        debug_assert_eq!(vote.candidates[c].0, *step_idx);
                        for (g, v) in global.iter_mut().zip(&vote.candidates[c].1) {
                            *g += v;
                        }
                    }
                    let score = conditional_entropy_from_counts(&global, nbins, nbins);
                    if best.is_none_or(|(_, b)| score > b) {
                        best = Some((*step_idx, score));
                    }
                }
                let Some((winner, _)) = best else {
                    coordinator_err = Some(IbisError::Coordination("empty interval vote".into()));
                    break 'intervals;
                };
                for tx in &decision_tx {
                    // a dead node's decision endpoint is gone; its failure
                    // is collected at join time
                    let _ = tx.send(winner);
                }
            }
            // Dropping the decision senders releases any node still blocked
            // waiting for a verdict.
            drop(decision_tx);

            let results = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(IbisError::WorkerPanic {
                        role: WorkerRole::Node,
                        step: None,
                        message: panic_message(payload.as_ref()),
                    }),
                })
                .collect();
            (results, coordinator_err)
        });

    // Fold per-node results. Root-cause failures (panics, storage
    // exhaustion) are reported; pure cascade errors (Disconnected /
    // Coordination) are kept only when no root cause exists, so the report
    // is deterministic for a deterministic fault plan.
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut cascades: Vec<(usize, String)> = Vec::new();
    let mut oks: Vec<NodeResult> = Vec::new();
    for (node_id, r) in results.into_iter().enumerate() {
        match r {
            Ok(res) => oks.push(res),
            Err(e @ (IbisError::Disconnected { .. } | IbisError::Coordination(_))) => {
                OBS_CLUSTER_CASCADES.inc();
                cascades.push((node_id, e.to_string()))
            }
            Err(e) => {
                OBS_CLUSTER_NODE_FAILURES.inc();
                failures.push((node_id, e.to_string()))
            }
        }
    }
    if !failures.is_empty() {
        return Err(IbisError::NodeFailure { failures });
    }
    if !cascades.is_empty() {
        return Err(IbisError::NodeFailure { failures: cascades });
    }
    if let Some(e) = coordinator_err {
        return Err(e);
    }

    // Parallel nodes: the cluster finishes when the slowest node does.
    let mut phases = PhaseTimes::default();
    let mut total = 0.0f64;
    let mut bytes = 0u64;
    for r in &oks {
        phases.simulate = phases.simulate.max(r.phases.simulate);
        phases.reduce = phases.reduce.max(r.phases.reduce);
        phases.select = phases.select.max(r.phases.select);
        phases.output = phases.output.max(r.phases.output);
        total = total.max(r.total);
        bytes += r.bytes;
    }
    let selected = oks[0].selected.clone();
    debug_assert!(
        oks.iter().all(|r| r.selected == selected),
        "nodes must agree"
    );
    Ok(ClusterReport {
        phases,
        total_modeled: total,
        selected,
        bytes_written: bytes,
        nodes: cfg.nodes,
        fault_events: injector.events(),
    })
}

/// A node's modeled elapsed time so far (used as the arrival time for
/// contended remote writes).
fn node_time(
    sim_t: Duration,
    reduce_t: Duration,
    select_t: Duration,
    output_so_far: f64,
    threads: usize,
    cfg: &ClusterConfig,
) -> f64 {
    let active = cfg.nodes * threads;
    let sim_t = if threads == 1 {
        sim_t
    } else {
        decontend(sim_t, active)
    };
    let reduce_t = if threads == 1 {
        reduce_t
    } else {
        decontend(reduce_t, active)
    };
    let speed = cfg.machine.core_speed;
    modeled_seconds(sim_t, threads, cfg.cores_per_node, &cfg.sim_scaling, speed)
        + modeled_seconds(
            reduce_t,
            threads,
            cfg.cores_per_node,
            &ScalingModel::bitmap_gen(),
            speed,
        )
        + modeled_seconds(
            select_t,
            threads,
            cfg.cores_per_node,
            &ScalingModel::selection(),
            speed,
        )
        + output_so_far
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn base(nodes: usize, reduction: ClusterReduction, io: ClusterIo) -> ClusterConfig {
        ClusterConfig {
            nodes,
            cores_per_node: 4,
            machine: MachineModel::oakley_node(),
            heat: Heat3DConfig {
                nx: 16,
                ny: 16,
                nz: 24,
                ..Heat3DConfig::tiny()
            },
            sweeps_per_step: 1,
            steps: 9,
            select_k: 3,
            binner: Binner::precision(-1.0, 101.0, 0),
            reduction,
            io,
            remote_bw: MachineModel::remote_link_bw(),
            sim_scaling: ScalingModel::heat3d(),
            robustness: RobustnessConfig::default(),
            coordinator_timeout: Duration::from_secs(30),
        }
    }

    #[test]
    fn single_node_runs() {
        let r = run_cluster(&base(1, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        assert_eq!(r.nodes, 1);
        assert_eq!(r.selected.len(), 3);
        assert_eq!(r.selected[0], 0);
        assert!(r.bytes_written > 0);
        assert!(r.fault_events.is_empty());
    }

    #[test]
    fn nodes_agree_and_match_single_node_selection() {
        // additive joint counts ⇒ the 3-node global selection equals the
        // 1-node selection over the same mesh
        let r1 = run_cluster(&base(1, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        let r3 = run_cluster(&base(3, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        assert_eq!(r1.selected, r3.selected);
    }

    #[test]
    fn bitmap_and_full_reductions_select_identically() {
        let rb = run_cluster(&base(2, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        let rf = run_cluster(&base(2, ClusterReduction::FullData, ClusterIo::Local)).unwrap();
        assert_eq!(rb.selected, rf.selected, "no accuracy loss in the cluster");
        assert!(
            rb.bytes_written < rf.bytes_written,
            "bitmaps ship fewer bytes"
        );
    }

    #[test]
    fn remote_io_is_contended() {
        // full data over the shared link must cost more output time than
        // bitmaps over the same link
        let rb = run_cluster(&base(3, ClusterReduction::Bitmaps, ClusterIo::Remote)).unwrap();
        let rf = run_cluster(&base(3, ClusterReduction::FullData, ClusterIo::Remote)).unwrap();
        assert!(
            rf.phases.output > rb.phases.output,
            "full {} vs bitmaps {}",
            rf.phases.output,
            rb.phases.output
        );
    }

    #[test]
    fn more_nodes_less_sim_time_per_node() {
        let r1 = run_cluster(&base(1, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        let r4 = run_cluster(&base(4, ClusterReduction::Bitmaps, ClusterIo::Local)).unwrap();
        assert!(
            r4.phases.simulate < r1.phases.simulate,
            "4 nodes {} vs 1 node {}",
            r4.phases.simulate,
            r1.phases.simulate
        );
    }

    #[test]
    fn rejects_bad_config() {
        let mut cfg = base(1, ClusterReduction::Bitmaps, ClusterIo::Local);
        cfg.select_k = 50;
        assert!(matches!(run_cluster(&cfg), Err(IbisError::Config(_))));
    }

    #[test]
    fn node_panic_is_contained_and_reported() {
        let mut cfg = base(3, ClusterReduction::Bitmaps, ClusterIo::Local);
        cfg.coordinator_timeout = Duration::from_secs(5);
        cfg.robustness.faults = FaultPlan::none().with_node_panic_at(1, 4);
        let err = run_cluster(&cfg).unwrap_err();
        let IbisError::NodeFailure { failures } = err else {
            panic!("expected NodeFailure, got {err}");
        };
        assert_eq!(failures.len(), 1, "cascades folded away: {failures:?}");
        assert_eq!(failures[0].0, 1);
        assert!(
            failures[0]
                .1
                .contains("injected fault: node 1 panic at step 4"),
            "{}",
            failures[0].1
        );
    }

    #[test]
    fn node_panic_failure_report_is_deterministic() {
        let run = || {
            let mut cfg = base(3, ClusterReduction::Bitmaps, ClusterIo::Local);
            cfg.coordinator_timeout = Duration::from_secs(5);
            cfg.robustness.faults = FaultPlan::none().with_node_panic_at(0, 2);
            run_cluster(&cfg).unwrap_err()
        };
        assert_eq!(run(), run());
    }
}
