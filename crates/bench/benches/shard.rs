//! Sharded scatter-gather sweep: proves the distributed tier's three
//! headline properties and writes `BENCH_shard.json` at the repository
//! root.
//!
//!     cargo bench -p ibis-bench --bench shard
//!
//! Phases:
//! 1. identity: every sharded answer (k ∈ {1, 2, 4}, cold and warm) is
//!    asserted equal to the flat single-store engine before anything is
//!    timed — the numbers below are only meaningful for a correct tier;
//! 2. scaling: warm region-local throughput at 1, 2 and 4 shards. On
//!    this single-core host the win is *pruning*, not parallelism: a
//!    region query only evaluates the shards whose row ranges overlap
//!    it, so WAH work shrinks with the shard span. Asserts
//!    qps(4) / qps(1) >= 2.5;
//! 3. over-budget serving: the 4-shard store is fronted by
//!    `QueryServer` with a cache budget *half* the decoded dataset (so
//!    each shard's slice cannot stay resident). Asserts eviction churn
//!    actually happened and p99 stays interactive (<= 150 ms, ~5x the
//!    PR 7 fault-free serving p99);
//! 4. node-kill: a sharded writer dies mid-ingest (one shard with a
//!    torn journal tail), resumes from each shard's durable state,
//!    repairs by idempotent re-put, and the recovered tier answers
//!    exactly like a never-killed flat store.
//!
//! `IBIS_SHARD_SMOKE=1` shrinks everything and writes to
//! `target/BENCH_shard.smoke.json` so CI can schema-check the report
//! without clobbering the committed full-size numbers.

use ibis_analysis::SubsetQuery;
use ibis_core::{Binner, BitmapIndex};
use ibis_insitu::{
    CachedStore, QueryEngine, QueryRequest, QueryServer, ServeConfig, ShardedEngine, ShardedWriter,
    Store, StoreWriter,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const NBINS: usize = 64;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const SCALING_TARGET: f64 = 2.5;
const INTERACTIVE_P99_MS: f64 = 150.0;

/// Ocean-like field: a large-scale gradient along the row axis (regions
/// are spatially meaningful) plus smooth waves.
fn temperature(step: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            30.0 + 24.0 * x + 8.0 * (x * 11.0 + step as f64 * 0.7).sin() + 2.0 * (x * 173.0).sin()
        })
        .collect()
}

fn salinity(temp: &[f64]) -> Vec<f64> {
    temp.iter()
        .enumerate()
        .map(|(i, &t)| 18.0 + t * 0.4 + 5.0 * ((i as f64 * 0.011).cos()))
        .collect()
}

/// splitmix64 (the bench must be self-deterministic).
struct Mix64(u64);

impl Mix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Region-local catalog: every query pins a region to one of 32 slots of
/// width n/8 (so at 4 shards a slot sits entirely inside one shard), with
/// a value window on top — the paper's Algorithm 2 regime, where mining
/// probes spatial subsets. A few correlations keep the merge path hot.
fn catalog(nsteps: usize, n: u64) -> Vec<QueryRequest> {
    let slot = n / 8;
    let mut out = Vec::new();
    for step in 0..nsteps {
        for s in 0..8u64 {
            for w in 0..4u64 {
                let lo = 28.0 + (w as f64) * 8.0;
                out.push(QueryRequest::Subset {
                    step,
                    variable: if w % 2 == 0 {
                        "temperature"
                    } else {
                        "salinity"
                    }
                    .into(),
                    query: SubsetQuery::value(lo, lo + 12.0).with_region(s * slot..(s + 1) * slot),
                });
            }
        }
        for s in 0..4u64 {
            out.push(QueryRequest::Correlation {
                step,
                var_a: "temperature".into(),
                var_b: "salinity".into(),
                query_a: SubsetQuery::value(30.0, 52.0).with_region(s * slot..(s + 1) * slot),
                query_b: SubsetQuery::region(s * slot..(s + 1) * slot),
            });
        }
    }
    out
}

fn zipf_cum(len: usize) -> Vec<f64> {
    let mut acc = 0.0;
    (0..len)
        .map(|i| {
            acc += 1.0 / (i + 1) as f64;
            acc
        })
        .collect()
}

fn pick<'a>(cat: &'a [QueryRequest], cum: &[f64], rng: &mut Mix64) -> &'a QueryRequest {
    let total = cum[cum.len() - 1];
    let x = rng.unit() * total;
    &cat[cum.partition_point(|&c| c < x).min(cat.len() - 1)]
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let i = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[i] as f64 / 1e6
}

fn build_indexes(nsteps: usize, n: usize, binner: &Binner) -> Vec<[(String, BitmapIndex); 2]> {
    (0..nsteps)
        .map(|step| {
            let t = temperature(step, n);
            let s = salinity(&t);
            [
                (
                    "temperature".to_string(),
                    BitmapIndex::build(&t, binner.clone()),
                ),
                (
                    "salinity".to_string(),
                    BitmapIndex::build(&s, binner.clone()),
                ),
            ]
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("IBIS_SHARD_SMOKE").is_ok_and(|v| v == "1");
    let n: usize = if smoke { 1 << 14 } else { 1 << 18 };
    // 8 steps x 2 vars = 16 cache entries per shard: more entries than
    // the cache's internal lock shards, so the over-budget phase *must*
    // evict (a lock shard never drops its last resident entry).
    let nsteps: usize = 8;
    let scaling_queries: usize = if smoke { 150 } else { 1200 };
    let serve_requests: usize = if smoke { 150 } else { 1500 };
    let binner = Binner::fixed_width(25.0, 60.0, NBINS);
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");

    // --- build: one dataset, one flat store, one store per shard count ---
    let indexes = build_indexes(nsteps, n, &binner);
    let flat_dir = root.join("bench-shard-flat");
    std::fs::remove_dir_all(&flat_dir).ok();
    let mut fw = StoreWriter::create(&flat_dir).expect("create flat store");
    for (step, vars) in indexes.iter().enumerate() {
        for (var, idx) in vars {
            fw.put(step, var, idx).expect("put flat");
        }
    }
    fw.finish().expect("finish flat store");
    let mut shard_dirs: Vec<(usize, PathBuf)> = Vec::new();
    for &k in &SHARD_COUNTS {
        let dir = root.join(format!("bench-shard-k{k}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = ShardedWriter::create(&dir, k).expect("create sharded store");
        for (step, vars) in indexes.iter().enumerate() {
            for (var, idx) in vars {
                w.put(step, var, idx).expect("put shard");
            }
        }
        w.finish().expect("finish sharded store");
        shard_dirs.push((k, dir));
    }
    let decoded_bytes: u64 = {
        let probe = CachedStore::new(Store::open(&flat_dir).expect("open flat"), u64::MAX);
        let mut total = 0u64;
        for (step, vars) in indexes.iter().enumerate() {
            for (var, _) in vars {
                total += probe.get(var, step).expect("decode probe").size_bytes() as u64;
            }
        }
        total
    };
    println!(
        "shard: dataset {n} rows x {nsteps} steps x 2 vars, {:.1} MiB decoded",
        decoded_bytes as f64 / (1 << 20) as f64
    );

    let cat = catalog(nsteps, n as u64);
    let cum = zipf_cum(cat.len());
    let oracle = QueryEngine::new(CachedStore::new(
        Store::open(&flat_dir).expect("open flat"),
        u64::MAX,
    ));

    // --- phase 1 + 2: identity, then warm region-local throughput ---
    let mut identity_checked = 0usize;
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    for (k, dir) in &shard_dirs {
        let engine = ShardedEngine::open(dir, u64::MAX).expect("open sharded engine");
        // identity first — cold pass, then warm pass (the pruned path)
        for pass in 0..2 {
            for req in &cat {
                let got = engine.run(req).expect("sharded answer");
                let want = oracle.run(req).expect("oracle answer");
                assert_eq!(got, want, "k={k} pass={pass} diverged on {req:?}");
                identity_checked += 1;
            }
        }
        // timed warm loop: zipf-picked region-local queries, single thread
        let mut rng = Mix64(0x5AAD ^ (*k as u64) << 8);
        let t0 = Instant::now();
        for _ in 0..scaling_queries {
            let req = pick(&cat, &cum, &mut rng);
            engine.run(req).expect("timed query");
        }
        let wall = t0.elapsed().as_secs_f64();
        let qps = scaling_queries as f64 / wall.max(1e-9);
        println!("shard: k={k} warm region-local {qps:.0} q/s ({scaling_queries} queries)");
        throughput.push((*k, qps));
    }
    let qps1 = throughput[0].1;
    let qps4 = throughput[throughput.len() - 1].1;
    let speedup = qps4 / qps1;
    let scaling_met = speedup >= SCALING_TARGET;
    // At smoke size the per-query dispatch overhead dwarfs the WAH work
    // pruning saves, so the full 2.5x gate only binds on the real run;
    // the smoke run still catches a pruning regression outright.
    let enforced_target = if smoke { 1.2 } else { SCALING_TARGET };
    assert!(
        speedup >= enforced_target,
        "4-shard region-local throughput must be >= {enforced_target}x the 1-shard \
         baseline, got {speedup:.2}x ({qps4:.0} vs {qps1:.0} q/s)"
    );
    println!("shard: pruning speedup 4 shards over 1 = {speedup:.2}x (target {SCALING_TARGET}x)");

    // --- phase 3: over-budget dataset behind the serving tier ---
    // Budget = half the decoded dataset: each shard's slice cannot stay
    // resident, so the tier must churn and *still* answer interactively.
    let budget = decoded_bytes / 2;
    let dir4 = &shard_dirs[shard_dirs.len() - 1].1;
    let engine = ShardedEngine::open(dir4, budget).expect("open budgeted engine");
    let server = Arc::new(
        QueryServer::start(
            engine,
            ServeConfig {
                record_latencies: true,
                ..ServeConfig::default()
            },
        )
        .expect("start sharded server"),
    );
    let mut rng = Mix64(0x0CEA);
    for _ in 0..serve_requests / 10 {
        // warmup: populate whatever fits under the squeezed budget
        server
            .submit(pick(&cat, &cum, &mut rng), None)
            .expect("warmup");
    }
    server.take_latencies();
    for _ in 0..serve_requests {
        server
            .submit(pick(&cat, &cum, &mut rng), None)
            .expect("serve query");
    }
    let mut lat_ns = server.take_latencies();
    lat_ns.sort_unstable();
    let p50 = percentile_ms(&lat_ns, 0.50);
    let p99 = percentile_ms(&lat_ns, 0.99);
    let cache = server.engine().cache_stats();
    let over_budget = decoded_bytes > budget;
    let interactive = p99 <= INTERACTIVE_P99_MS;
    assert!(over_budget, "the dataset must not fit the serving budget");
    assert!(
        cache.evictions > 0,
        "an over-budget tier must churn, stats: {cache:?}"
    );
    assert!(
        interactive,
        "over-budget p99 {p99:.2} ms exceeds the {INTERACTIVE_P99_MS} ms interactive bound"
    );
    println!(
        "shard: over-budget serve ({:.1} MiB data / {:.1} MiB budget) p50 {p50:.3} ms  \
         p99 {p99:.3} ms  evictions {}",
        decoded_bytes as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64,
        cache.evictions
    );
    server.shutdown();

    // --- phase 4: node-kill, shard-local resume, repair ---
    let kill_dir = root.join("bench-shard-nodekill");
    std::fs::remove_dir_all(&kill_dir).ok();
    {
        let mut w = ShardedWriter::create(&kill_dir, 4).expect("create kill store");
        for (var, idx) in &indexes[0] {
            w.put(0, var, idx).expect("put step 0");
        }
        w.put(1, "temperature", &indexes[1][0].1)
            .expect("put step 1 half");
        // killed here: no finish()
    }
    let journal = kill_dir.join("shard-002").join("JOURNAL");
    let bytes = std::fs::read(&journal).expect("read journal");
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).expect("tear journal");
    let t0 = Instant::now();
    let mut w = ShardedWriter::resume(&kill_dir).expect("resume killed writer");
    assert_eq!(
        w.durable_steps(),
        vec![0],
        "only step 0 survived everywhere"
    );
    for (var, idx) in &indexes[1] {
        w.put(1, var, idx).expect("repair step 1");
    }
    let resume_ms = t0.elapsed().as_secs_f64() * 1e3;
    // the recovered node then finishes the rest of the run as normal
    for (step, vars) in indexes.iter().enumerate().skip(2) {
        for (var, idx) in vars {
            w.put(step, var, idx).expect("complete run");
        }
    }
    w.finish().expect("finish recovered store");
    let recovered = ShardedEngine::open(&kill_dir, u64::MAX).expect("open recovered");
    for req in &cat {
        assert_eq!(
            recovered.run(req).expect("recovered answer"),
            oracle.run(req).expect("oracle answer"),
            "recovered tier diverged on {req:?}"
        );
    }
    let nodekill_resumed = true;
    println!("shard: node-kill resume + repair in {resume_ms:.1} ms, answers re-verified");

    // --- report ---
    let samples = identity_checked + scaling_queries * SHARD_COUNTS.len() + lat_ns.len();
    let per_shard: Vec<String> = throughput
        .iter()
        .map(|(k, qps)| format!("{{\"shards\": {k}, \"qps\": {qps:.0}}}"))
        .collect();
    let out = format!(
        "{{\n  \"workload\": \"region-local zipf mix, {n} rows/step, {nsteps} steps, \
         {} catalog entries, shard counts {SHARD_COUNTS:?}\",\n  \
         \"samples\": {samples},\n  \
         \"shards\": [{}],\n  \
         \"throughput_qps\": {qps4:.0},\n  \
         \"speedup_4x_over_1\": {speedup:.3},\n  \
         \"scaling_target\": {SCALING_TARGET},\n  \
         \"scaling_target_met\": {scaling_met},\n  \
         \"identity_checked\": {identity_checked},\n  \
         \"ocean_rows\": {n},\n  \
         \"ocean_decoded_mib\": {:.2},\n  \
         \"ocean_budget_mib\": {:.2},\n  \
         \"ocean_over_budget\": {over_budget},\n  \
         \"ocean_p50_ms\": {p50:.4},\n  \
         \"ocean_p99_ms\": {p99:.4},\n  \
         \"ocean_p99_interactive\": {interactive},\n  \
         \"cache_evictions\": {},\n  \
         \"nodekill_resume_ms\": {resume_ms:.1},\n  \
         \"nodekill_resumed\": {nodekill_resumed}\n}}\n",
        cat.len(),
        per_shard.join(", "),
        decoded_bytes as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64,
        cache.evictions,
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_shard.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json")
    };
    std::fs::write(path, out).expect("write BENCH_shard report");
    std::fs::remove_dir_all(&flat_dir).ok();
    for (_, dir) in &shard_dirs {
        std::fs::remove_dir_all(dir).ok();
    }
    std::fs::remove_dir_all(&kill_dir).ok();
    println!("shard: wrote {path}");
}
