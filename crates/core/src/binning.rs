//! Binning: mapping attribute values to bitvector ids.
//!
//! Bitmap indexing bins value-based attributes (Section 2.1 of the paper):
//! low-cardinality integer data gets one bitvector per distinct value, while
//! floating-point data is grouped into bins. The paper's Heat3D runs bin by
//! *decimal precision* ("retain 1 digit after the decimal point"), which
//! [`Binner::precision`] reproduces.
//!
//! Two analyses agree exactly if and only if they use the same binning scale
//! — the root of the paper's "no accuracy loss" claim — so the [`Binner`] is
//! carried inside every index and compared when metrics combine two of them.

/// Maps `f64` values to bin ids in `0..nbins`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    kind: Kind,
}

/// A serializable description of a binning scale; round-trips a [`Binner`]
/// exactly (`Binner::from_spec(b.spec()) == b`), which the on-disk index
/// format relies on so that reloaded indices stay metric-compatible with
/// in-memory ones.
#[derive(Debug, Clone, PartialEq)]
pub enum BinnerSpec {
    /// Equal-width bins starting at `min`.
    Width {
        /// Low edge of bin 0.
        min: f64,
        /// Bin width.
        width: f64,
        /// Bin count.
        nbins: usize,
    },
    /// Explicit ascending edges.
    Edges(Vec<f64>),
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Equal-width bins over `[min, min + width * nbins)`; out-of-range
    /// values clamp to the first/last bin.
    Width { min: f64, width: f64, nbins: usize },
    /// Explicit ascending edges; bin `i` covers `[edges[i], edges[i+1])`.
    Edges(Vec<f64>),
}

impl Binner {
    /// `nbins` equal-width bins covering `[min, max]`.
    ///
    /// # Panics
    /// Panics if `max <= min`, `nbins == 0`, or either bound is not finite.
    pub fn fixed_width(min: f64, max: f64, nbins: usize) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(max > min, "max must exceed min");
        assert!(nbins > 0, "need at least one bin");
        Binner {
            kind: Kind::Width {
                min,
                width: (max - min) / nbins as f64,
                nbins,
            },
        }
    }

    /// Bins of width `10^-digits` covering `[min, max]` — the paper's
    /// "retain `digits` digits after the decimal point" scale. With
    /// `digits = 1`, values 3.13 and 3.18 share a bin; 3.13 and 3.24 do not.
    ///
    /// # Panics
    /// Panics if the range would need more than 2^22 bins (that means the
    /// precision is wrong for the data range, and the index would be huge).
    pub fn precision(min: f64, max: f64, digits: i32) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(max >= min, "max must not be below min");
        let width = 10f64.powi(-digits);
        let nbins = ((max - min) / width).floor() as usize + 1;
        assert!(
            nbins <= 1 << 22,
            "precision {digits} over [{min}, {max}] needs {nbins} bins"
        );
        Binner {
            kind: Kind::Width { min, width, nbins },
        }
    }

    /// One bin per integer in `[min, max]` — the low-level index of Figure 1,
    /// where each bitvector corresponds to one distinct value.
    pub fn distinct_ints(min: i64, max: i64) -> Self {
        assert!(max >= min, "max must not be below min");
        let nbins = (max - min) as usize + 1;
        Binner {
            kind: Kind::Width {
                min: min as f64,
                width: 1.0,
                nbins,
            },
        }
    }

    /// Bins from explicit ascending edges; bin `i` covers
    /// `[edges[i], edges[i+1])`, out-of-range values clamp.
    ///
    /// # Panics
    /// Panics with fewer than two edges or non-increasing edges.
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        Binner {
            kind: Kind::Edges(edges),
        }
    }

    /// Equal-width bins fitted to the observed data range. Empty data or a
    /// constant value yields a single bin.
    pub fn fit(data: &[f64], nbins: usize) -> Self {
        assert!(nbins > 0, "need at least one bin");
        let (min, max) = min_max(data);
        if max <= min {
            return Binner {
                kind: Kind::Width {
                    min,
                    width: 1.0,
                    nbins: 1,
                },
            };
        }
        // Widen slightly so `max` itself lands inside the last bin.
        let width = (max - min) / nbins as f64;
        Binner {
            kind: Kind::Width {
                min,
                width: width * (1.0 + 1e-12),
                nbins,
            },
        }
    }

    /// Precision bins fitted to the observed data range (the paper's Heat3D
    /// configuration: bin count then depends on the value range of the
    /// time-step, 64–206 bins in their runs).
    pub fn fit_precision(data: &[f64], digits: i32) -> Self {
        let (min, max) = min_max(data);
        Self::precision(min, max, digits)
    }

    /// Like [`Binner::fit_precision`], but the low edge snaps *down* to a
    /// multiple of the bin width, so binners fitted to different time-steps
    /// of the same variable share a global bin lattice: their bins either
    /// coincide exactly or don't overlap at all. That is what makes the
    /// paper's per-step bin counts ("64 to 206, depending on the temperature
    /// range of different time-steps") compatible with cross-step metrics —
    /// see [`Binner::alignment_offset`].
    pub fn fit_precision_anchored(data: &[f64], digits: i32) -> Self {
        let (min, max) = min_max(data);
        let width = 10f64.powi(-digits);
        let min = (min / width).floor() * width;
        Self::precision(min, max.max(min), digits)
    }

    /// If `self` and `other` bin on the same lattice (equal widths, low
    /// edges an integer number of bins apart), returns `other`'s bin offset
    /// relative to `self`: `self` bin `j` covers the same value range as
    /// `other` bin `j - offset`. `None` when the lattices differ.
    ///
    /// Floating-point caveat: a value lying *exactly* on a bin edge may
    /// round into either adjacent cell depending on the binner's anchor;
    /// interior values always agree.
    pub fn alignment_offset(&self, other: &Binner) -> Option<i64> {
        let (
            Kind::Width {
                min: m1, width: w1, ..
            },
            Kind::Width {
                min: m2, width: w2, ..
            },
        ) = (&self.kind, &other.kind)
        else {
            return (self == other).then_some(0);
        };
        let rel = (w1 - w2).abs() / w1.abs().max(1e-300);
        if rel > 1e-9 {
            return None;
        }
        let shift = (m2 - m1) / w1;
        let rounded = shift.round();
        ((shift - rounded).abs() < 1e-6).then_some(rounded as i64)
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        match &self.kind {
            Kind::Width { nbins, .. } => *nbins,
            Kind::Edges(e) => e.len() - 1,
        }
    }

    /// Maps a value to its bin id (out-of-range values clamp to the edge
    /// bins; NaN maps to bin 0).
    #[inline]
    pub fn bin_of(&self, v: f64) -> u32 {
        match &self.kind {
            Kind::Width { min, width, nbins } => {
                let raw = (v - min) / width;
                if raw.is_nan() || raw <= 0.0 {
                    return 0; // below range, and NaN by convention
                }
                (raw as usize).min(nbins - 1) as u32
            }
            Kind::Edges(edges) => {
                let n = edges.len() - 1;
                let i = edges.partition_point(|&e| e <= v);
                i.saturating_sub(1).min(n - 1) as u32
            }
        }
    }

    /// The half-open value range `[lo, hi)` covered by a bin.
    pub fn bin_range(&self, bin: usize) -> (f64, f64) {
        assert!(bin < self.nbins(), "bin {bin} out of range");
        match &self.kind {
            Kind::Width { min, width, .. } => {
                (min + width * bin as f64, min + width * (bin + 1) as f64)
            }
            Kind::Edges(e) => (e[bin], e[bin + 1]),
        }
    }

    /// The serializable description of this binner.
    pub fn spec(&self) -> BinnerSpec {
        match &self.kind {
            Kind::Width { min, width, nbins } => BinnerSpec::Width {
                min: *min,
                width: *width,
                nbins: *nbins,
            },
            Kind::Edges(e) => BinnerSpec::Edges(e.clone()),
        }
    }

    /// Reconstructs a binner from its description (exact round-trip).
    ///
    /// # Panics
    /// Panics on invalid specs (zero bins / width, non-increasing edges).
    pub fn from_spec(spec: BinnerSpec) -> Binner {
        match spec {
            BinnerSpec::Width { min, width, nbins } => {
                assert!(
                    min.is_finite() && width > 0.0 && nbins > 0,
                    "invalid width spec"
                );
                Binner {
                    kind: Kind::Width { min, width, nbins },
                }
            }
            BinnerSpec::Edges(edges) => Binner::from_edges(edges),
        }
    }

    /// Maps every value in `data` to its bin id.
    pub fn bin_all(&self, data: &[f64]) -> Vec<u32> {
        let mut out = Vec::new();
        self.bin_into(data, &mut out);
        out
    }

    /// Like [`Binner::bin_all`], but reuses `out`'s allocation — the
    /// per-time-step pipelines call this with a scratch buffer so steady
    /// state does no binning allocation. `out` is cleared first and holds
    /// exactly `data.len()` ids afterwards.
    pub fn bin_into(&self, data: &[f64], out: &mut Vec<u32>) {
        out.clear();
        out.resize(data.len(), 0);
        self.bin_slice_into(data, out);
    }

    /// Fills `out[i] = self.bin_of(data[i])` for equal-length slices. The
    /// fixed-width arm is branchless (Rust's saturating `f64 as usize` cast
    /// sends NaN and negatives to 0, exactly matching [`Binner::bin_of`]'s
    /// clamp-and-NaN convention), which is what lets the fused generation
    /// loop in `MultiWahBuilder::extend_binned` stay tight.
    #[inline]
    pub(crate) fn bin_slice_into(&self, data: &[f64], out: &mut [u32]) {
        debug_assert_eq!(data.len(), out.len());
        match &self.kind {
            Kind::Width { min, width, nbins } => {
                let top = *nbins - 1;
                for (o, &v) in out.iter_mut().zip(data) {
                    // `as usize` saturates: NaN -> 0, negative -> 0,
                    // +inf/huge -> usize::MAX (then clamped) — byte-identical
                    // to the branchy bin_of for every input.
                    *o = (((v - *min) / *width) as usize).min(top) as u32;
                }
            }
            Kind::Edges(_) => {
                for (o, &v) in out.iter_mut().zip(data) {
                    *o = self.bin_of(v);
                }
            }
        }
    }

    /// A coarser binner whose bin `h` covers low bins
    /// `h*group .. min((h+1)*group, nbins)` — the high-level index of the
    /// paper's multi-level bitmaps. The two levels align exactly, which the
    /// top-down correlation miner relies on.
    pub fn coarsen(&self, group: usize) -> Binner {
        assert!(group >= 1, "group must be at least 1");
        let n_high = self.nbins().div_ceil(group);
        match &self.kind {
            Kind::Width { min, width, nbins } => {
                // The last high bin may be ragged; edges keep it exact.
                let mut edges: Vec<f64> = (0..n_high)
                    .map(|h| min + width * (h * group) as f64)
                    .collect();
                edges.push(min + width * *nbins as f64);
                Binner {
                    kind: Kind::Edges(edges),
                }
            }
            Kind::Edges(e) => {
                let mut edges: Vec<f64> = (0..n_high).map(|h| e[h * group]).collect();
                edges.push(*e.last().unwrap());
                Binner {
                    kind: Kind::Edges(edges),
                }
            }
        }
    }
}

fn min_max(data: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in data {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    if !min.is_finite() {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_partitions_range() {
        let b = Binner::fixed_width(0.0, 10.0, 5);
        assert_eq!(b.nbins(), 5);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(1.99), 0);
        assert_eq!(b.bin_of(2.0), 1);
        assert_eq!(b.bin_of(9.99), 4);
        assert_eq!(b.bin_of(10.0), 4, "max clamps to last bin");
        assert_eq!(b.bin_of(-5.0), 0, "below range clamps");
        assert_eq!(b.bin_of(50.0), 4, "above range clamps");
        assert_eq!(b.bin_of(f64::NAN), 0, "NaN goes to bin 0");
    }

    #[test]
    fn precision_one_decimal_digit() {
        let b = Binner::precision(0.0, 5.0, 1);
        assert_eq!(b.nbins(), 51);
        assert_eq!(b.bin_of(3.13), b.bin_of(3.18));
        assert_ne!(b.bin_of(3.13), b.bin_of(3.24));
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(0.05), 0);
        assert_eq!(b.bin_of(0.15), 1);
    }

    #[test]
    fn distinct_ints_one_bin_per_value() {
        let b = Binner::distinct_ints(1, 4); // Figure 1's four values
        assert_eq!(b.nbins(), 4);
        for v in 1..=4i64 {
            assert_eq!(b.bin_of(v as f64), (v - 1) as u32);
        }
    }

    #[test]
    fn edges_partition() {
        let b = Binner::from_edges(vec![0.0, 1.0, 10.0, 100.0]);
        assert_eq!(b.nbins(), 3);
        assert_eq!(b.bin_of(0.5), 0);
        assert_eq!(b.bin_of(1.0), 1);
        assert_eq!(b.bin_of(9.99), 1);
        assert_eq!(b.bin_of(10.0), 2);
        assert_eq!(b.bin_of(-1.0), 0);
        assert_eq!(b.bin_of(1e9), 2);
        assert_eq!(b.bin_range(1), (1.0, 10.0));
    }

    #[test]
    fn fit_covers_all_data() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 37.0).collect();
        let b = Binner::fit(&data, 20);
        for &v in &data {
            let bin = b.bin_of(v) as usize;
            let (lo, hi) = b.bin_range(bin);
            let in_bin = v >= lo && (v < hi || bin == 19);
            assert!(in_bin, "{v} not in bin {bin} [{lo},{hi})");
        }
    }

    #[test]
    fn fit_constant_data_single_bin() {
        let b = Binner::fit(&[5.0; 10], 8);
        assert_eq!(b.nbins(), 1);
        assert_eq!(b.bin_of(5.0), 0);
        let b = Binner::fit(&[], 8);
        assert_eq!(b.nbins(), 1);
    }

    #[test]
    fn every_value_in_exactly_one_bin() {
        let b = Binner::fixed_width(-2.0, 2.0, 16);
        for i in 0..4000 {
            let v = -2.0 + i as f64 * 0.001;
            let bin = b.bin_of(v) as usize;
            assert!(bin < 16);
            let (lo, hi) = b.bin_range(bin);
            assert!(v >= lo - 1e-9 && v < hi + 1e-9);
        }
    }

    #[test]
    fn coarsen_aligns_with_low_bins() {
        let low = Binner::fixed_width(0.0, 10.0, 10);
        let high = low.coarsen(3); // groups: [0..3), [3..6), [6..9), [9..10)
        assert_eq!(high.nbins(), 4);
        for i in 0..1000 {
            let v = i as f64 * 0.01;
            let lo_bin = low.bin_of(v) as usize;
            let hi_bin = high.bin_of(v) as usize;
            assert_eq!(hi_bin, lo_bin / 3, "v={v}");
        }
    }

    #[test]
    fn coarsen_group_one_is_identityish() {
        let low = Binner::fixed_width(0.0, 1.0, 7);
        let high = low.coarsen(1);
        assert_eq!(high.nbins(), 7);
        for i in 0..100 {
            let v = i as f64 * 0.01;
            assert_eq!(low.bin_of(v), high.bin_of(v));
        }
    }

    #[test]
    fn coarsen_of_edges() {
        let low = Binner::from_edges(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let high = low.coarsen(2);
        assert_eq!(high.nbins(), 3);
        assert_eq!(high.bin_range(0), (0.0, 2.0));
        assert_eq!(high.bin_range(2), (4.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "max must exceed min")]
    fn rejects_empty_range() {
        let _ = Binner::fixed_width(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_edges() {
        let _ = Binner::from_edges(vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn spec_round_trips_exactly() {
        let binners = [
            Binner::fixed_width(-3.0, 7.0, 12),
            Binner::precision(0.0, 5.0, 1),
            Binner::distinct_ints(-2, 9),
            Binner::from_edges(vec![0.0, 0.5, 2.0, 9.0]),
            Binner::fixed_width(0.0, 1.0, 5).coarsen(2),
        ];
        for b in binners {
            let back = Binner::from_spec(b.spec());
            assert_eq!(back, b, "round trip must be exact, not just equivalent");
        }
    }

    #[test]
    #[should_panic(expected = "invalid width spec")]
    fn from_spec_rejects_garbage() {
        let _ = Binner::from_spec(BinnerSpec::Width {
            min: 0.0,
            width: 0.0,
            nbins: 3,
        });
    }

    #[test]
    fn anchored_precision_shares_a_lattice() {
        let a: Vec<f64> = (0..100).map(|i| 3.17 + i as f64 * 0.05).collect();
        let b: Vec<f64> = (0..100).map(|i| 7.62 + i as f64 * 0.02).collect();
        let ba = Binner::fit_precision_anchored(&a, 1);
        let bb = Binner::fit_precision_anchored(&b, 1);
        let off = ba.alignment_offset(&bb).expect("same lattice");
        // a value covered by both binners must land in corresponding bins
        // (values on exact bin edges may round into either adjacent cell —
        // see alignment_offset's doc — so probe interior values)
        for v in [7.63, 7.94, 8.11] {
            let ja = ba.bin_of(v) as i64;
            let jb = bb.bin_of(v) as i64;
            assert_eq!(ja, jb + off, "v={v}");
        }
    }

    #[test]
    fn alignment_offset_cases() {
        let base = Binner::fixed_width(0.0, 10.0, 10); // width 1, min 0
        let shifted = Binner::fixed_width(3.0, 8.0, 5); // width 1, min 3
        assert_eq!(base.alignment_offset(&shifted), Some(3));
        assert_eq!(shifted.alignment_offset(&base), Some(-3));
        assert_eq!(base.alignment_offset(&base), Some(0));
        // different width: no lattice
        let other = Binner::fixed_width(0.0, 10.0, 20);
        assert_eq!(base.alignment_offset(&other), None);
        // fractional shift: no lattice
        let frac = Binner::fixed_width(0.5, 10.5, 10);
        assert_eq!(base.alignment_offset(&frac), None);
        // edge binners align only when identical
        let e = Binner::from_edges(vec![0.0, 1.0, 10.0]);
        assert_eq!(e.alignment_offset(&e.clone()), Some(0));
        assert_eq!(e.alignment_offset(&base), None);
    }

    #[test]
    fn bin_all_matches_bin_of() {
        let b = Binner::fixed_width(0.0, 1.0, 4);
        let data = [0.1, 0.3, 0.6, 0.9];
        assert_eq!(b.bin_all(&data), vec![0, 1, 2, 3]);
    }
}
