//! Integration tests for the query-serving layer against real run
//! directories: the adversarial query corpus (no input may panic the
//! engine — everything surfaces as a structured [`IbisError`], in both obs
//! configurations since this file runs under each), the out-of-range
//! region regression the panic-free rewrite exists for, and a
//! multi-threaded stress test of the sharded cache.

use ibis_analysis::{QueryError, SubsetQuery};
use ibis_core::{Binner, BitmapIndex};
use ibis_insitu::engine::parse_batch;
use ibis_insitu::{
    CachedStore, IbisError, QueryAnswer, QueryEngine, QueryRequest, Store, StoreWriter,
};
use std::path::PathBuf;
use std::sync::Arc;

const N: usize = 4096;

fn field(step: usize, phase: usize) -> Vec<f64> {
    (0..N)
        .map(|i| ((i * 7 + step * 13 + phase * 101) % 640) as f64 / 16.0)
        .collect()
}

/// Builds a real durable store: 3 steps × 2 variables.
fn build_store(name: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ibis-qe-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut w = StoreWriter::create(&dir).unwrap();
    for step in [0usize, 4, 9] {
        for (phase, var) in ["temperature", "salinity"].iter().enumerate() {
            let idx = BitmapIndex::build(&field(step, phase), Binner::fixed_width(0.0, 40.0, 64));
            w.put(step, var, &idx).unwrap();
        }
    }
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

#[test]
fn out_of_range_region_on_live_store_is_err_not_panic() {
    let (dir, store) = build_store("oob-region");
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20));
    let err = engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::region(0..(N as u64) * 10),
        })
        .unwrap_err();
    match err {
        IbisError::Query(QueryError::RegionOutOfRange { start, end, len }) => {
            assert_eq!((start, end, len), (0, N as u64 * 10, N as u64));
        }
        other => panic!("expected RegionOutOfRange, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adversarial_corpus_returns_structured_errors() {
    let (dir, store) = build_store("adversarial");
    let engine = QueryEngine::new(CachedStore::new(store, 64 << 20));

    // --- typed API corpus: NaN bounds (inexpressible in strict JSON) ---
    for (lo, hi) in [(f64::NAN, 5.0), (5.0, f64::NAN), (f64::NAN, f64::NAN)] {
        let err = engine
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(lo, hi),
            })
            .unwrap_err();
        assert!(matches!(err, IbisError::Query(QueryError::NanBound { .. })));
    }
    // inverted / empty value intervals are NOT errors: empty selections
    for (lo, hi) in [(9.0, 3.0), (7.0, 7.0)] {
        let ans = engine
            .run(&QueryRequest::Subset {
                step: 0,
                variable: "temperature".into(),
                query: SubsetQuery::value(lo, hi),
            })
            .unwrap();
        assert_eq!(
            ans,
            QueryAnswer::Subset {
                selected: 0,
                of: N as u64
            }
        );
    }
    // unknown variable / step
    for (step, var) in [(0usize, "vorticity"), (3, "temperature")] {
        let err = engine
            .run(&QueryRequest::Subset {
                step,
                variable: var.into(),
                query: SubsetQuery::all(),
            })
            .unwrap_err();
        assert!(matches!(err, IbisError::NotFound { .. }), "{err}");
    }

    // --- JSON batch corpus: every document either parses or errors ---
    let corpus: &[&str] = &[
        "",
        "\u{0}\u{1}\u{2}",
        "{\"queries\": [",
        "{\"queries\": {}}",
        "[1,2,3]",
        r#"{"queries": [{"kind": "subset", "variable": 7}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "value_range": [1e400, 2]}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [2, 1e300]}]}"#,
        r#"{"queries": [{"kind": "correlation", "var_a": "temperature", "var_b": "salinity", "step": 99999999}]}"#,
        r#"{"queries": [{"kind": "subset", "variable": "temperature", "region": [4096, 0]}]}"#,
    ];
    for doc in corpus {
        // must never panic; a top-level Err must be BadRequest
        match engine.run_batch_json(doc) {
            Ok(answers) => assert!(answers.starts_with("{\"answers\""), "{doc:?}"),
            Err(IbisError::BadRequest { .. }) => {}
            Err(other) => panic!("{doc:?} → unexpected error class {other}"),
        }
    }
    // deep nesting is bounded, not a stack overflow
    let deep = format!("{{\"queries\": {}1{}}}", "[".repeat(500), "]".repeat(500));
    assert!(matches!(
        parse_batch(&deep),
        Err(IbisError::BadRequest { .. })
    ));

    // an inverted region *through the JSON protocol* is a per-query error,
    // inline, and the rest of the batch still answers
    let out = engine
        .run_batch_json(
            r#"{"queries": [
                {"kind": "subset", "variable": "temperature", "region": [4000, 100]},
                {"kind": "subset", "variable": "temperature"}
            ]}"#,
        )
        .unwrap();
    assert!(out.contains("\"error\""), "{out}");
    assert!(out.contains(&format!("\"selected\": {N}")), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_store_rejects_queries_cleanly() {
    let dir = std::env::temp_dir().join("ibis-qe-empty");
    std::fs::remove_dir_all(&dir).ok();
    let w = StoreWriter::create(&dir).unwrap();
    w.finish().unwrap();
    let store = Store::open(&dir).unwrap();
    assert!(store.steps().is_empty());
    let engine = QueryEngine::new(CachedStore::new(store, 1 << 20));
    let err = engine
        .run(&QueryRequest::Subset {
            step: 0,
            variable: "temperature".into(),
            query: SubsetQuery::all(),
        })
        .unwrap_err();
    assert!(matches!(err, IbisError::NotFound { .. }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_readers_share_one_cache_safely() {
    let (dir, store) = build_store("stress");
    // tiny budget on few shards so eviction churns *while* readers race
    let one = CachedStore::new(Store::open(&dir).unwrap(), u64::MAX)
        .get("temperature", 0)
        .unwrap()
        .size_bytes() as u64;
    let engine = Arc::new(QueryEngine::new(CachedStore::with_shards(
        store,
        3 * one,
        2,
    )));

    let nthreads = 8;
    let rounds = 40;
    let handles: Vec<_> = (0..nthreads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    let step = [0usize, 4, 9][(t + r) % 3];
                    let (lo, hi) = (1.0 + (r % 7) as f64, 30.0 + (t % 5) as f64);
                    let ans = engine
                        .run(&QueryRequest::Correlation {
                            step,
                            var_a: "temperature".into(),
                            var_b: "salinity".into(),
                            query_a: SubsetQuery::value(lo, hi),
                            query_b: SubsetQuery::region(0..(N as u64 / 2)),
                        })
                        .unwrap();
                    let QueryAnswer::Correlation(c) = ans else {
                        panic!("wrong answer kind")
                    };
                    assert!(c.mutual_information.is_finite());
                    // malformed queries from racing threads stay contained
                    let inverted = std::ops::Range {
                        start: 1u64,
                        end: 0u64,
                    };
                    let err = engine
                        .run(&QueryRequest::Subset {
                            step,
                            variable: "temperature".into(),
                            query: SubsetQuery::region(inverted),
                        })
                        .unwrap_err();
                    assert!(matches!(err, IbisError::Query(_)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no reader thread may panic");
    }

    // every thread's answers agree with a cold, uncached engine
    let cold = QueryEngine::new(CachedStore::new(Store::open(&dir).unwrap(), u64::MAX));
    let probe = QueryRequest::Correlation {
        step: 4,
        var_a: "temperature".into(),
        var_b: "salinity".into(),
        query_a: SubsetQuery::value(1.0, 30.0),
        query_b: SubsetQuery::region(0..(N as u64 / 2)),
    };
    assert_eq!(engine.run(&probe).unwrap(), cold.run(&probe).unwrap());

    let st = engine.cache_stats();
    let total = st.hits + st.misses;
    // 3 cache reads per round (2 for the correlation, 1 for the subset,
    // whose region check runs after the fetch) plus 2 for the final probe
    assert_eq!(
        total,
        (nthreads * rounds * 3 + 2) as u64,
        "every cache access accounted for: {st:?}"
    );
    assert!(st.evictions > 0, "tiny budget must churn: {st:?}");
    std::fs::remove_dir_all(&dir).ok();
}
