//! Regenerates the paper's Figure 13 — run with
//! `cargo bench -p ibis-bench --bench fig13_cluster`.

fn main() {
    ibis_bench::figures::fig13();
}
