//! Property tests for the codec layer: every codec round-trips a WAH
//! vector exactly (including its serialized byte form), every cross-codec
//! operand pairing produces the same answer as the uncompressed oracle,
//! Roaring containers upgrade/downgrade at the documented thresholds, and
//! the thread-local operation scratch never leaks state between
//! operations.

use ibis_core::{
    BbcVec, Bitset, Codec, CodecId, CodecVec, ContainerForm, RoaringVec, WahVec, ARRAY_MAX,
    CONTAINER_BITS,
};
use proptest::prelude::*;

const CODECS: [CodecId; 3] = [CodecId::Wah, CodecId::Bbc, CodecId::Roaring];

/// Bit patterns spanning every codec's sweet and sour spots: long fills
/// (WAH/BBC territory), scattered singletons (Roaring arrays), dense
/// noise (Roaring bitsets), and container-boundary-straddling runs.
fn codec_bits() -> impl Strategy<Value = Vec<bool>> {
    prop_oneof![
        // one value end to end
        (any::<bool>(), 0usize..2000).prop_map(|(b, n)| vec![b; n]),
        // run-structured: a few (value, length) segments
        proptest::collection::vec((any::<bool>(), 1usize..400), 0..8).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect()
        }),
        // scattered singletons over a long domain
        (1usize..6000, proptest::collection::vec(0usize..6000, 0..60)).prop_map(|(len, ones)| {
            let mut v = vec![false; len];
            for i in ones {
                if i < len {
                    v[i] = true;
                }
            }
            v
        }),
        // dense random noise
        proptest::collection::vec(any::<bool>(), 0..1200),
    ]
}

/// Two same-length vectors drawn independently from the pool.
fn codec_pair() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
    (codec_bits(), codec_bits()).prop_map(|(mut a, mut b)| {
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        (a, b)
    })
}

fn oracle(bits: &[bool]) -> Bitset {
    Bitset::from_bits(bits.iter().copied())
}

proptest! {
    /// WAH → codec → WAH is the identity for every codec, and the
    /// serialized byte forms round-trip too.
    #[test]
    fn every_codec_round_trips_exactly(bits in codec_bits()) {
        let wah = WahVec::from_bits(bits.iter().copied());
        for id in CODECS {
            let cv = CodecVec::with_codec(&wah, id);
            prop_assert_eq!(cv.id(), id);
            prop_assert_eq!(cv.len(), wah.len());
            prop_assert_eq!(cv.count_ones(), wah.count_ones());
            let back = cv.to_wah();
            back.check_canonical().unwrap();
            prop_assert_eq!(back.words(), wah.words(), "codec {}", id.name());
        }

        // byte-level round-trips
        let r = RoaringVec::from_wah(&wah);
        let r2 = RoaringVec::deserialize(&r.serialize()).unwrap();
        let r2w = r2.to_wah();
        prop_assert_eq!(r2w.words(), wah.words());
        prop_assert_eq!(r2.container_forms(), r.container_forms());

        let b = <BbcVec as Codec>::from_wah(&wah);
        let b2 = BbcVec::from_encoded(b.encoded_bytes().to_vec(), Codec::len_bits(&b)).unwrap();
        let b2w = <BbcVec as Codec>::to_wah(&b2);
        prop_assert_eq!(b2w.words(), wah.words());
    }

    /// Every (codec, codec) operand pairing agrees with the uncompressed
    /// oracle on all six operations, for every result codec.
    #[test]
    fn cross_codec_ops_match_oracle((a_bits, b_bits) in codec_pair()) {
        let wa = WahVec::from_bits(a_bits.iter().copied());
        let wb = WahVec::from_bits(b_bits.iter().copied());

        let mut want_and = oracle(&a_bits);
        want_and.and_assign(&oracle(&b_bits));
        let mut want_or = oracle(&a_bits);
        want_or.or_assign(&oracle(&b_bits));
        let mut want_xor = oracle(&a_bits);
        want_xor.xor_assign(&oracle(&b_bits));
        let want_andnot: Vec<bool> = a_bits
            .iter()
            .zip(&b_bits)
            .map(|(&x, &y)| x && !y)
            .collect();

        for ca in CODECS {
            for cb in CODECS {
                let a = CodecVec::with_codec(&wa, ca);
                let b = CodecVec::with_codec(&wb, cb);
                let label = |op: &str| format!("{} {} {}", ca.name(), op, cb.name());

                prop_assert_eq!(a.and_count(&b), want_and.count_ones(), "{}", label("and_count"));
                prop_assert_eq!(a.xor_count(&b), want_xor.count_ones(), "{}", label("xor_count"));

                for (op, got, want) in [
                    ("and", a.and(&b), &want_and),
                    ("or", a.or(&b), &want_or),
                    ("xor", a.xor(&b), &want_xor),
                ] {
                    let got = got.to_wah();
                    got.check_canonical().unwrap();
                    prop_assert_eq!(got.len(), want.len(), "{}", label(op));
                    for i in 0..got.len() {
                        prop_assert_eq!(got.get(i), want.get(i), "{} bit {}", label(op), i);
                    }
                }
                let got = a.andnot(&b).to_wah();
                got.check_canonical().unwrap();
                prop_assert_eq!(got.len() as usize, want_andnot.len());
                for (i, &w) in want_andnot.iter().enumerate() {
                    prop_assert_eq!(got.get(i as u64), w, "{} bit {}", label("andnot"), i);
                }
            }
        }
    }

    /// Mutating across the array↔bitset threshold upgrades and downgrades
    /// the container, and membership stays exact throughout.
    #[test]
    fn array_bitset_threshold_is_tight(extra in 1usize..40, probe in 0u64..CONTAINER_BITS) {
        // exactly ARRAY_MAX scattered ones: maximal array container
        let mut v = RoaringVec::zeros(CONTAINER_BITS);
        for i in 0..ARRAY_MAX as u64 {
            v.set(i * 16, true);
        }
        prop_assert_eq!(v.container_forms(), vec![ContainerForm::Array]);

        // pushing past the threshold upgrades to a bitset
        for i in 0..extra as u64 {
            v.set(i * 16 + 1, true);
        }
        prop_assert_eq!(v.container_forms(), vec![ContainerForm::Bits]);
        prop_assert_eq!(v.count_ones(), (ARRAY_MAX + extra) as u64);
        prop_assert_eq!(v.get(probe), probe % 16 == 0 || (probe % 16 == 1 && probe / 16 < extra as u64));

        // removing the same ones downgrades back to an array
        for i in 0..extra as u64 {
            v.set(i * 16 + 1, false);
        }
        prop_assert_eq!(v.container_forms(), vec![ContainerForm::Array]);
        prop_assert_eq!(v.count_ones(), ARRAY_MAX as u64);
    }

    /// Runs straddling 64Ki container edges split, convert, and round-trip
    /// exactly.
    #[test]
    fn container_edge_runs_are_exact(
        start_off in -40i64..40,
        run_len in 1u64..200_000,
        ncontainers in 2u64..5,
    ) {
        let len = ncontainers * CONTAINER_BITS;
        let start = (CONTAINER_BITS as i64 + start_off).max(0) as u64;
        let end = (start + run_len).min(len);
        let bits = (0..len).map(|i| i >= start && i < end);
        let v = RoaringVec::from_bits(bits.clone());
        prop_assert_eq!(v.count_ones(), end - start);
        let wah = WahVec::from_bits(bits);
        let vw = v.to_wah();
        prop_assert_eq!(vw.words(), wah.words());
        let v2 = RoaringVec::deserialize(&v.serialize()).unwrap();
        let v2w = v2.to_wah();
        prop_assert_eq!(v2w.words(), wah.words());
        // spot-check membership at the container seams
        for c in 0..=ncontainers {
            for d in [-1i64, 0, 1] {
                let i = (c * CONTAINER_BITS) as i64 + d;
                if i >= 0 && (i as u64) < len {
                    let i = i as u64;
                    prop_assert_eq!(v.get(i), i >= start && i < end, "bit {}", i);
                }
            }
        }
    }

    /// Back-to-back operations reuse the same thread-local scratch pair;
    /// results must not depend on what a previous operation left there.
    #[test]
    fn scratch_reuse_is_clean(pairs in proptest::collection::vec(codec_pair(), 2..5)) {
        for (a_bits, b_bits) in &pairs {
            let a = RoaringVec::from_bits(a_bits.iter().copied());
            let b = RoaringVec::from_bits(b_bits.iter().copied());
            // run every op in sequence on the same thread — each one sees
            // whatever the previous op wrote into the scratch words
            for (op, want) in [
                (a.and(&b), a_bits.iter().zip(b_bits).map(|(&x, &y)| x && y).collect::<Vec<_>>()),
                (a.or(&b), a_bits.iter().zip(b_bits).map(|(&x, &y)| x || y).collect()),
                (a.xor(&b), a_bits.iter().zip(b_bits).map(|(&x, &y)| x != y).collect()),
                (a.andnot(&b), a_bits.iter().zip(b_bits).map(|(&x, &y)| x && !y).collect()),
            ] {
                prop_assert_eq!(op.count_ones(), want.iter().filter(|&&x| x).count() as u64);
                for (i, &w) in want.iter().enumerate() {
                    prop_assert_eq!(op.get(i as u64), w, "bit {}", i);
                }
            }
        }
    }
}
