//! Property-based tests for the simulation substrates: distribution
//! invariance of the partitioned Heat3D, numerical sanity of all
//! generators, determinism of the ocean model.

use ibis_datagen::{
    Heat3D, Heat3DConfig, Heat3DPartition, LuleshConfig, MiniLulesh, OceanConfig, OceanModel,
    Simulation, OCEAN_FIELDS,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn heat3d_partitioning_is_exact(
        nx in 4usize..10,
        ny in 4usize..10,
        nz in 6usize..14,
        nodes in 1usize..5,
        sweeps in 1usize..6,
    ) {
        prop_assume!(nodes <= nz);
        // both versions must share the source clock: sweeps_per_step drives
        // when the boundary condition advances
        let cfg =
            Heat3DConfig { nx, ny, nz, sweeps_per_step: sweeps, ..Heat3DConfig::tiny() };
        let mut parts = Heat3DPartition::split(&cfg, nodes);
        // drive the distributed version
        for _ in 0..sweeps {
            for p in 0..parts.len() {
                if p > 0 {
                    let b = parts[p - 1].boundary_high();
                    parts[p].set_halo_low(&b);
                }
                if p + 1 < parts.len() {
                    let b = parts[p + 1].boundary_low();
                    parts[p].set_halo_high(&b);
                }
            }
            for p in parts.iter_mut() {
                p.sweep();
            }
        }
        // drive the monolithic version through the same number of sweeps
        let mut mono = Heat3D::new(cfg);
        let out = mono.step();
        let distributed: Vec<f64> = parts.iter().flat_map(|p| p.owned_data()).collect();
        for (i, (a, b)) in out.fields[0].data.iter().zip(&distributed).enumerate() {
            prop_assert!((a - b).abs() < 1e-12, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn heat3d_stays_bounded(steps in 1usize..12, dim in 6usize..14) {
        let cfg = Heat3DConfig { nx: dim, ny: dim, nz: dim, ..Heat3DConfig::tiny() };
        let peak = cfg.source_peak;
        let mut sim = Heat3D::new(cfg);
        for _ in 0..steps {
            let out = sim.step();
            for &v in &out.fields[0].data {
                prop_assert!(v.is_finite());
                prop_assert!((-1e-9..=peak * 1.01).contains(&v));
            }
        }
    }

    #[test]
    fn lulesh_all_arrays_finite(edge in 4usize..9, steps in 1usize..5) {
        let mut sim = MiniLulesh::new(LuleshConfig { edge, ..LuleshConfig::tiny() });
        for _ in 0..steps {
            let out = sim.step();
            prop_assert_eq!(out.fields.len(), 12);
            for f in &out.fields {
                prop_assert!(f.data.iter().all(|v| v.is_finite()), "{}", f.name);
            }
        }
    }

    #[test]
    fn ocean_deterministic_and_finite(
        seed in any::<u64>(),
        nlon in 8usize..20,
        nlat in 6usize..16,
        ndepth in 1usize..5,
    ) {
        let cfg = OceanConfig { nlon, nlat, ndepth, seed, ..OceanConfig::tiny() };
        let a = OceanModel::new(cfg.clone());
        let b = OceanModel::new(cfg);
        for name in OCEAN_FIELDS {
            let va = a.variable(name);
            prop_assert_eq!(&va, &b.variable(name), "{} must be deterministic", name);
            prop_assert!(va.iter().all(|v| v.is_finite()), "{} must be finite", name);
            prop_assert_eq!(va.len(), nlon * nlat * ndepth);
        }
    }
}
