//! Property tests for the lossy superset pass: whatever the binner, codec,
//! row order, or build path, `exact & lossy == exact` — the lossy bitmap
//! only ever *adds* bits, and never more of them than the FPR budget
//! allows. Set-op pairings between lossy and exact operands inherit the
//! same one-sided guarantee.

use ibis_core::{Binner, BitmapIndex, CodecId, CodecVec, MultiWahBuilder, RowOrder, WahVec};
use proptest::prelude::*;

/// Field shapes biased toward the regimes where absorption actually fires:
/// run-heavy piecewise-constant data with short interruptions, plus noise
/// and constants for the degenerate paths.
fn field() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        // piecewise-constant with mostly-short runs — many absorbable gaps
        proptest::collection::vec((-4.0f64..4.0, 1usize..40), 1..60).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v, n))
                .collect()
        }),
        proptest::collection::vec(-4.0f64..4.0, 0..600),
        (-4.0f64..4.0, 0usize..600).prop_map(|(v, n)| vec![v; n]),
        (1usize..600, -4.0f64..4.0, 0.0f64..0.02)
            .prop_map(|(n, base, slope)| (0..n).map(|i| base + slope * i as f64).collect()),
    ]
}

fn binner() -> impl Strategy<Value = Binner> {
    prop_oneof![
        (1usize..24).prop_map(|n| Binner::fixed_width(-4.0, 4.0, n)),
        Just(Binner::precision(-4.0, 4.0, 0)),
        Just(Binner::distinct_ints(-4, 4)),
        (2usize..9).prop_map(|n| {
            Binner::from_edges((0..=n).map(|i| -4.0 + 8.0 * i as f64 / n as f64).collect())
        }),
    ]
}

fn fpr() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1e-4),
        Just(1e-3),
        Just(1e-2),
        Just(1e-1),
        1e-4f64..1e-1,
    ]
}

/// `sup` is a superset of `sub` (same length, `sub & sup == sub`).
fn assert_superset(sub: &WahVec, sup: &WahVec) -> Result<(), TestCaseError> {
    prop_assert_eq!(sub.len(), sup.len());
    prop_assert_eq!(&sub.and(sup), sub, "lossy lost a set bit");
    Ok(())
}

proptest! {
    #[test]
    fn lossy_index_is_superset_for_every_binner_codec_and_row_order(
        data in field(), binner in binner(), fpr in fpr()
    ) {
        // Row-order dimension: identity plus both data-dependent orders.
        let exact_builds: Vec<BitmapIndex> = {
            let mut v = vec![BitmapIndex::build(&data, binner.clone())];
            for order in [RowOrder::GrayBin, RowOrder::HistogramSorted] {
                if let Some(p) = order.permutation(&[], &binner, &data) {
                    v.push(BitmapIndex::build_permuted(&data, binner.clone(), &p));
                }
            }
            v
        };
        for exact in &exact_builds {
            let (lossy, stats) = exact.lossy(fpr);
            prop_assert_eq!(lossy.nbins(), exact.nbins());
            // budget: the absorbed zeros never exceed fpr × zeros
            prop_assert!(stats.measured_fpr() <= fpr,
                "measured {} > requested {}", stats.measured_fpr(), fpr);
            for b in 0..exact.nbins() {
                let (e, l) = (exact.bin(b), lossy.bin(b));
                l.check_canonical().unwrap();
                assert_superset(e, l)?;
                // Codec dimension: the lossy bin survives every codec
                // round-trip bit-exactly, so the superset guarantee is
                // codec-independent.
                for id in [CodecId::Wah, CodecId::Bbc, CodecId::Roaring] {
                    let rt = CodecVec::with_codec(l, id).to_wah();
                    prop_assert_eq!(&rt, l, "{:?} round-trip changed the lossy bin", id);
                }
            }
        }
    }

    #[test]
    fn fused_lossy_build_is_superset_of_exact(
        data in field(), binner in binner(), fpr in fpr()
    ) {
        // The streaming variant (absorption inside extend_binned) makes the
        // same promise as the offline pass, without being byte-identical
        // to it.
        let exact = BitmapIndex::build(&data, binner.clone());
        let mut mb = MultiWahBuilder::new(binner.nbins());
        mb.set_lossy_fpr(fpr);
        mb.extend_binned(&binner, &data);
        let lossy = mb.finish();
        prop_assert_eq!(lossy.len(), exact.nbins());
        for (b, l) in lossy.iter().enumerate() {
            l.check_canonical().unwrap();
            assert_superset(exact.bin(b), l)?;
        }
    }

    #[test]
    fn set_op_pairings_preserve_the_one_sided_guarantee(
        a in field(), binner in binner(), fpr in fpr()
    ) {
        // Two same-length operands from one field: its bins partition the
        // rows, so distinct bins have disjoint exact bitmaps — a worthwhile
        // adversarial AND case (exact AND is empty, lossy AND need not be).
        let idx = BitmapIndex::build(&a, binner.clone());
        let (lidx, _) = idx.lossy(fpr);
        for i in 0..idx.nbins() {
            for j in (i..idx.nbins()).take(3) {
                let (ea, eb) = (idx.bin(i), idx.bin(j));
                let (la, lb) = (lidx.bin(i), lidx.bin(j));
                // AND: every pairing with a lossy operand is a superset of
                // the exact AND
                let exact_and = ea.and(eb);
                for sup in [la.and(eb), ea.and(lb), la.and(lb)] {
                    assert_superset(&exact_and, &sup)?;
                }
                // OR: same one-sided containment
                let exact_or = ea.or(eb);
                for sup in [la.or(eb), ea.or(lb), la.or(lb)] {
                    assert_superset(&exact_or, &sup)?;
                }
                // and the lossy-lossy forms contain the half-lossy ones
                assert_superset(&la.and(eb), &la.and(lb))?;
                assert_superset(&la.or(eb), &la.or(lb))?;
            }
        }
    }

    #[test]
    fn refine_recovers_the_exact_answer(
        data in field(), binner in binner(), fpr in fpr()
    ) {
        // The engine's refine protocol in miniature: filter with the lossy
        // bin, then AND with the exact — the result is byte-identical to
        // the exact answer, and an empty lossy filter proves emptiness.
        let idx = BitmapIndex::build(&data, binner.clone());
        let (lidx, _) = idx.lossy(fpr);
        for b in 0..idx.nbins() {
            let (e, l) = (idx.bin(b), lidx.bin(b));
            if l.count_ones() == 0 {
                prop_assert_eq!(e.count_ones(), 0, "empty lossy must prove emptiness");
            }
            prop_assert_eq!(&e.and(l), e);
        }
    }
}

/// WAH-level deterministic cross-check: the absorbed bitmap is canonical,
/// is a superset, and drops at most `fpr × zeros` bits even on a pattern
/// built to sit exactly at the budget edge.
#[test]
fn budget_edge_stays_within_bound() {
    for fpr in [1e-4, 1e-3, 1e-2, 1e-1] {
        // 10k ones with a 1-bit gap every 100 bits: many equal-length
        // interior runs competing for the budget.
        let bits = (0..10_000).map(|i| i % 100 != 50);
        let exact = WahVec::from_bits(bits);
        let (lossy, stats) = exact.lossy_superset(fpr);
        lossy.check_canonical().unwrap();
        assert_eq!(&exact.and(&lossy), &exact);
        let zeros = exact.len() - exact.count_ones();
        assert!(
            stats.bits_dropped as f64 <= fpr * zeros as f64,
            "fpr {fpr}: dropped {} of {} zeros",
            stats.bits_dropped,
            zeros
        );
        assert_eq!(lossy.count_ones(), exact.count_ones() + stats.bits_dropped);
    }
}
