//! Storage cost models and a real file sink.
//!
//! The paper's win comes from writing compressed bitmaps instead of raw
//! arrays. We model write time as `bytes / bandwidth` for the local-disk
//! case, and for the cluster's shared remote data server we serialize
//! transfers through a single contended link ([`RemoteLink`]), which is
//! what produces the Figure 13 remote-case speedups. [`FileSink`] writes
//! real bytes for the examples — atomically (temp file + rename), so a
//! crash mid-write never leaves a half-written blob under its final name.
//!
//! All writes are fallible: [`Storage::write`] returns a typed
//! [`StorageError`] instead of panicking, and the pipeline routes every
//! write through [`crate::retry::write_with_retry`].

use crate::error::DecodeError;
use crate::fault::{FaultInjector, WriteFault};
use parking_lot::Mutex;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a storage target rejected a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// The storage target's description.
    pub site: String,
    /// What went wrong.
    pub message: String,
    /// Whether a retry may succeed.
    pub transient: bool,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.site, self.message)
    }
}

impl std::error::Error for StorageError {}

/// A storage target with modeled write cost.
pub trait Storage: Send + Sync {
    /// Records a write of `bytes` starting at pipeline time `now` (seconds);
    /// returns the seconds until the write completes (including any queueing
    /// behind other writers), or a typed error when the target rejects it.
    fn write(&self, now: f64, bytes: u64) -> Result<f64, StorageError>;

    /// Total bytes accepted so far.
    fn bytes_written(&self) -> u64;

    /// Human-readable description of the target, used in error reports.
    fn describe(&self) -> String {
        "storage".to_string()
    }
}

/// A node-local disk with fixed bandwidth: no contention between nodes.
#[derive(Debug)]
pub struct LocalDisk {
    bw: f64,
    written: Mutex<u64>,
}

impl LocalDisk {
    /// A disk writing at `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        LocalDisk {
            bw: bandwidth,
            written: Mutex::new(0),
        }
    }
}

impl Storage for LocalDisk {
    fn write(&self, _now: f64, bytes: u64) -> Result<f64, StorageError> {
        *self.written.lock() += bytes;
        Ok(bytes as f64 / self.bw)
    }

    fn bytes_written(&self) -> u64 {
        *self.written.lock()
    }

    fn describe(&self) -> String {
        "local disk".to_string()
    }
}

/// The single remote data server of the cluster experiment: one shared link
/// of ~100 MB/s. Concurrent writers queue — a node's write completes only
/// after everything ahead of it has drained, so the *effective* per-node
/// bandwidth falls as the node count grows, exactly the effect that makes
/// the bitmaps method pull ahead remotely (1.24×→3.79× in Figure 13).
#[derive(Debug)]
pub struct RemoteLink {
    bw: f64,
    state: Mutex<RemoteState>,
}

#[derive(Debug, Default)]
struct RemoteState {
    busy_until: f64,
    written: u64,
}

impl RemoteLink {
    /// A link transferring at `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        RemoteLink {
            bw: bandwidth,
            state: Mutex::new(RemoteState::default()),
        }
    }
}

impl Storage for RemoteLink {
    fn write(&self, now: f64, bytes: u64) -> Result<f64, StorageError> {
        let mut st = self.state.lock();
        let start = st.busy_until.max(now);
        let end = start + bytes as f64 / self.bw;
        st.busy_until = end;
        st.written += bytes;
        Ok(end - now)
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().written
    }

    fn describe(&self) -> String {
        "remote link".to_string()
    }
}

/// A real on-disk sink (used by the examples to demonstrate that selected
/// bitmaps are genuinely persisted and reloadable).
///
/// Writes are atomic — bytes land in `<name>.tmp` first and are renamed
/// over the final name only when complete — and transient failures
/// (injected or real) are retried up to a small fixed budget. Retries do
/// not sleep: backoff is a property of the *modeled* pipeline clock, not
/// of the host.
#[derive(Debug)]
pub struct FileSink {
    dir: PathBuf,
    written: Mutex<u64>,
    injector: Option<Arc<FaultInjector>>,
    max_attempts: u32,
}

impl FileSink {
    /// Creates (if needed) `dir` and sinks files into it.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FileSink {
            dir: dir.as_ref().to_path_buf(),
            written: Mutex::new(0),
            injector: None,
            max_attempts: 4,
        })
    }

    /// Routes this sink's writes through a fault injector (testing).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Writes one named blob atomically; returns its path. Transient
    /// failures are retried; a torn write leaves at most a `.tmp` file,
    /// never a truncated blob under the final name.
    pub fn write_blob(&self, name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let op = self.injector.as_ref().map(|i| i.begin_write());
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..self.max_attempts {
            if let (Some(inj), Some(op)) = (self.injector.as_deref(), op) {
                match inj.write_fault_for(op, attempt) {
                    Some(WriteFault::IoError) => {
                        last_err = Some(std::io::Error::other("injected I/O error"));
                        continue;
                    }
                    Some(WriteFault::Torn) => {
                        // a real torn transfer: half the bytes, then death
                        let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
                        last_err = Some(std::io::Error::other("injected torn write"));
                        continue;
                    }
                    Some(WriteFault::DelayedAck(_)) | None => {}
                }
            }
            match write_atomic(&tmp, &path, bytes) {
                Ok(()) => {
                    *self.written.lock() += bytes.len() as u64;
                    return Ok(path);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("write failed")))
    }

    /// Total bytes physically written.
    pub fn bytes_written(&self) -> u64 {
        *self.written.lock()
    }
}

/// Writes `bytes` to `tmp`, syncs, and renames onto `path` — the atomic
/// write primitive the sink and the store share. On any failure the final
/// name is untouched.
pub(crate) fn write_atomic(tmp: &Path, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(tmp, path)
}

/// Serializes a WAH bitvector into a portable byte blob (little-endian
/// `len` + words) and back — the on-disk format for selected bitmaps.
///
/// Decoding is *total*: any byte string either decodes to a valid value or
/// yields a typed [`DecodeError`]; no input panics the decoder (the
/// adversarial property tests feed it arbitrary mutations of valid blobs).
pub mod codec {
    use super::DecodeError;
    use ibis_core::{BbcVec, Binner, BinnerSpec, BitmapIndex, Codec, CodecId, RoaringVec, WahVec};
    use ibis_obs::LazyCounter;

    const INDEX_MAGIC: &[u8; 4] = b"IBIS";
    const INDEX_VERSION: u32 = 1;
    /// Version 2 carries one codec tag per bin ahead of each blob; version
    /// 1 (untagged) remains fully readable and means all-WAH.
    const INDEX_VERSION_TAGGED: u32 = 2;

    // Per-bin payload traffic through the index codec, by bitmap codec —
    // no-ops when ibis-obs is built without its `obs` feature.
    static OBS_ENCODE_BINS: LazyCounter = LazyCounter::new("codec.encode.bins");
    static OBS_DECODE_BINS: LazyCounter = LazyCounter::new("codec.decode.bins");
    static OBS_DECODE_NONWAH: LazyCounter = LazyCounter::new("codec.decode.nonwah_bins");

    /// Encodes a complete index — binner, element count, every bitvector —
    /// into one blob. The binner round-trips exactly, so analyses on a
    /// reloaded index remain metric-compatible with in-memory indices.
    pub fn encode_index(index: &BitmapIndex) -> Vec<u8> {
        let mut out = Vec::with_capacity(index.size_bytes() + 64);
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        match index.binner().spec() {
            BinnerSpec::Width { min, width, nbins } => {
                out.push(0u8);
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&width.to_le_bytes());
                out.extend_from_slice(&(nbins as u64).to_le_bytes());
            }
            BinnerSpec::Edges(edges) => {
                out.push(1u8);
                out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
                for e in edges {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&index.len().to_le_bytes());
        out.extend_from_slice(&(index.nbins() as u64).to_le_bytes());
        for bin in index.bins() {
            OBS_ENCODE_BINS.inc();
            let blob = encode(bin);
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out
    }

    /// Encodes an index under its per-bin codec plan
    /// ([`BitmapIndex::codec_plan`]), returning the blob and the plan. An
    /// all-WAH plan emits the untagged version-1 layout **byte-identically**
    /// — coherent data costs nothing and stays readable by version-1
    /// readers. Any non-WAH bin switches the payload to version 2, where
    /// each bin carries a codec tag (`u8`, [`CodecId::tag`]) ahead of its
    /// length-prefixed blob: WAH bins keep the [`encode`] layout, BBC bins
    /// store `len u64 LE` + header stream, Roaring bins store
    /// [`RoaringVec::serialize`].
    pub fn encode_index_auto(index: &BitmapIndex) -> (Vec<u8>, Vec<CodecId>) {
        let plan = index.codec_plan();
        if plan.iter().all(|&c| c == CodecId::Wah) {
            return (encode_index(index), plan);
        }
        let mut out = Vec::with_capacity(index.size_bytes() + 64);
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION_TAGGED.to_le_bytes());
        match index.binner().spec() {
            BinnerSpec::Width { min, width, nbins } => {
                out.push(0u8);
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&width.to_le_bytes());
                out.extend_from_slice(&(nbins as u64).to_le_bytes());
            }
            BinnerSpec::Edges(edges) => {
                out.push(1u8);
                out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
                for e in edges {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&index.len().to_le_bytes());
        out.extend_from_slice(&(index.nbins() as u64).to_le_bytes());
        for (bin, &codec) in index.bins().iter().zip(&plan) {
            OBS_ENCODE_BINS.inc();
            let blob = match codec {
                CodecId::Wah => encode(bin),
                CodecId::Bbc => {
                    let b = BbcVec::from_wah(bin);
                    let mut blob = Vec::with_capacity(8 + b.encoded_bytes().len());
                    blob.extend_from_slice(&b.len().to_le_bytes());
                    blob.extend_from_slice(b.encoded_bytes());
                    blob
                }
                CodecId::Roaring => RoaringVec::from_wah(bin).serialize(),
            };
            out.push(codec.tag());
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        (out, plan)
    }

    /// Decodes an index blob, reporting exactly how a malformed blob fails
    /// (bad magic / version / truncation / bad binner / malformed
    /// bitvectors / trailing bytes). Accepts both the untagged version-1
    /// layout (all bins WAH) and the tagged version-2 layout.
    pub fn decode_index(bytes: &[u8]) -> Result<BitmapIndex, DecodeError> {
        decode_index_with_tags(bytes).map(|(index, _)| index)
    }

    /// [`decode_index`], also returning the codec tag each bin was stored
    /// under (version-1 blobs report all-WAH). Non-WAH bins are converted
    /// back to canonical WAH in memory — the conversions are exact
    /// inverses, so a reloaded index is bit-identical regardless of the
    /// at-rest codec. `fsck` uses the tags to cross-check the frame header.
    pub fn decode_index_with_tags(
        bytes: &[u8],
    ) -> Result<(BitmapIndex, Vec<CodecId>), DecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != INDEX_MAGIC.as_slice() {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != INDEX_VERSION && version != INDEX_VERSION_TAGGED {
            return Err(DecodeError::BadVersion(version));
        }
        let tagged = version == INDEX_VERSION_TAGGED;
        let spec = match r.u8()? {
            0 => BinnerSpec::Width {
                min: r.f64()?,
                width: r.f64()?,
                nbins: r.u64()? as usize,
            },
            1 => {
                let count = r.u64()? as usize;
                if count < 2 || count > bytes.len() / 8 + 2 {
                    return Err(DecodeError::BadBinner);
                }
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push(r.f64()?);
                }
                if !edges.windows(2).all(|w| w[0] < w[1]) {
                    return Err(DecodeError::BadBinner);
                }
                BinnerSpec::Edges(edges)
            }
            _ => return Err(DecodeError::BadBinner),
        };
        // from_spec panics on garbage; validate the width variant first
        if let BinnerSpec::Width { min, width, nbins } = &spec {
            let width_ok = width.is_finite() && *width > 0.0;
            if !min.is_finite() || !width_ok || *nbins == 0 {
                return Err(DecodeError::BadBinner);
            }
        }
        let binner = Binner::from_spec(spec);
        let len = r.u64()?;
        let nbins = r.u64()? as usize;
        if nbins != binner.nbins() {
            return Err(DecodeError::BinCountMismatch {
                expected: binner.nbins(),
                got: nbins,
            });
        }
        let mut bins = Vec::with_capacity(nbins);
        let mut tags = Vec::with_capacity(nbins);
        for b in 0..nbins {
            let codec = if tagged {
                let tag = r.u8()?;
                CodecId::from_tag(tag).ok_or_else(|| DecodeError::BadCodec {
                    bin: b,
                    detail: format!("unknown codec tag {tag}"),
                })?
            } else {
                CodecId::Wah
            };
            let blen = r.u64()? as usize;
            let blob = r.take(blen)?;
            OBS_DECODE_BINS.inc();
            let v = match codec {
                CodecId::Wah => decode(blob)?,
                CodecId::Bbc => {
                    OBS_DECODE_NONWAH.inc();
                    if blob.len() < 8 {
                        return Err(DecodeError::Truncated { at: r.pos });
                    }
                    let blen_bits = u64::from_le_bytes(
                        blob[..8]
                            .try_into()
                            .map_err(|_| DecodeError::Truncated { at: r.pos })?,
                    );
                    BbcVec::from_encoded(blob[8..].to_vec(), blen_bits)
                        .map_err(|detail| DecodeError::BadCodec { bin: b, detail })?
                        .to_wah()
                }
                CodecId::Roaring => {
                    OBS_DECODE_NONWAH.inc();
                    RoaringVec::deserialize(blob)
                        .map_err(|detail| DecodeError::BadCodec { bin: b, detail })?
                        .to_wah()
                }
            };
            if v.len() != len {
                return Err(DecodeError::LengthMismatch {
                    expected: len,
                    got: v.len(),
                });
            }
            bins.push(v);
            tags.push(codec);
        }
        if r.pos != bytes.len() {
            return Err(DecodeError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok((BitmapIndex::from_bins(binner, bins), tags))
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
            let truncated = DecodeError::Truncated { at: self.pos };
            let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
            let s = self.bytes.get(self.pos..end).ok_or(truncated)?;
            self.pos = end;
            Ok(s)
        }

        fn u8(&mut self) -> Result<u8, DecodeError> {
            Ok(self.take(1)?[0])
        }

        fn u32(&mut self) -> Result<u32, DecodeError> {
            let at = self.pos;
            let b = self.take(4)?;
            b.try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| DecodeError::Truncated { at })
        }

        fn u64(&mut self) -> Result<u64, DecodeError> {
            let at = self.pos;
            let b = self.take(8)?;
            b.try_into()
                .map(u64::from_le_bytes)
                .map_err(|_| DecodeError::Truncated { at })
        }

        fn f64(&mut self) -> Result<f64, DecodeError> {
            Ok(f64::from_bits(self.u64()?))
        }
    }

    /// Encodes a bitvector.
    pub fn encode(v: &WahVec) -> Vec<u8> {
        let words = v.words();
        let mut out = Vec::with_capacity(12 + words.len() * 4);
        out.extend_from_slice(&v.len().to_le_bytes());
        out.extend_from_slice(&(words.len() as u32).to_le_bytes());
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a bitvector, reporting the typed malformation on failure
    /// (truncation, trailing bytes, or a malformed word stream such as an
    /// overlong fill).
    pub fn decode(bytes: &[u8]) -> Result<WahVec, DecodeError> {
        if bytes.len() < 12 {
            return Err(DecodeError::Truncated { at: bytes.len() });
        }
        let len = u64::from_le_bytes(
            bytes[..8]
                .try_into()
                .map_err(|_| DecodeError::Truncated { at: 0 })?,
        );
        let nwords = u32::from_le_bytes(
            bytes[8..12]
                .try_into()
                .map_err(|_| DecodeError::Truncated { at: 8 })?,
        ) as usize;
        let body = nwords
            .checked_mul(4)
            .and_then(|n| n.checked_add(12))
            .ok_or(DecodeError::Truncated { at: 12 })?;
        match bytes.len().cmp(&body) {
            std::cmp::Ordering::Less => return Err(DecodeError::Truncated { at: bytes.len() }),
            std::cmp::Ordering::Greater => {
                return Err(DecodeError::TrailingBytes {
                    extra: bytes.len() - body,
                })
            }
            std::cmp::Ordering::Equal => {}
        }
        let words: Vec<u32> = bytes[12..body]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        WahVec::try_from_raw(words, len).map_err(DecodeError::BadBitvector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::WahVec;

    #[test]
    fn local_disk_time_is_linear() {
        let d = LocalDisk::new(100.0);
        assert_eq!(d.write(0.0, 500).unwrap(), 5.0);
        assert_eq!(
            d.write(100.0, 500).unwrap(),
            5.0,
            "no contention on local disk"
        );
        assert_eq!(d.bytes_written(), 1000);
    }

    #[test]
    fn remote_link_serializes_concurrent_writers() {
        let l = RemoteLink::new(100.0);
        // two writers arrive at t=0: the second queues behind the first
        let t1 = l.write(0.0, 500).unwrap();
        let t2 = l.write(0.0, 500).unwrap();
        assert_eq!(t1, 5.0);
        assert_eq!(t2, 10.0, "second writer waits for the first");
        // a writer arriving after the link drained sees no queue
        let t3 = l.write(20.0, 100).unwrap();
        assert_eq!(t3, 1.0);
        assert_eq!(l.bytes_written(), 1100);
    }

    #[test]
    fn file_sink_round_trip() {
        let dir = std::env::temp_dir().join("ibis-test-sink");
        let sink = FileSink::new(&dir).unwrap();
        let v = WahVec::from_bits((0..1000).map(|i| i % 17 == 0));
        let blob = codec::encode(&v);
        let path = sink.write_blob("step0_bin3.wah", &blob).unwrap();
        let read = std::fs::read(&path).unwrap();
        let back = codec::decode(&read).unwrap();
        assert_eq!(back, v);
        assert_eq!(sink.bytes_written(), blob.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_sink_survives_torn_write_via_retry() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dir = std::env::temp_dir().join("ibis-test-sink-torn");
        std::fs::remove_dir_all(&dir).ok();
        let inj = std::sync::Arc::new(FaultInjector::new(FaultPlan::none().with_torn_write_at(0)));
        let sink = FileSink::new(&dir)
            .unwrap()
            .with_fault_injector(inj.clone());
        let v = WahVec::from_bits((0..4000).map(|i| i % 13 == 0));
        let blob = codec::encode(&v);
        let path = sink.write_blob("step0.wah", &blob).unwrap();
        // the retry rewrote the blob fully; the final name is complete
        let back = codec::decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back, v);
        assert!(!inj.events().is_empty(), "the tear fired and was recorded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_sink_exhausts_on_persistent_faults() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dir = std::env::temp_dir().join("ibis-test-sink-persistent");
        std::fs::remove_dir_all(&dir).ok();
        let inj = std::sync::Arc::new(FaultInjector::new(
            FaultPlan::none()
                .with_io_error_at(0)
                .with_persistent_write_faults(),
        ));
        let sink = FileSink::new(&dir).unwrap().with_fault_injector(inj);
        let err = sink.write_blob("doomed.wah", b"payload").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(
            !dir.join("doomed.wah").exists(),
            "no partial blob under the final name"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_rejects_malformed() {
        assert!(codec::decode(&[1, 2, 3]).is_err());
        let v = WahVec::ones(62);
        let mut blob = codec::encode(&v);
        blob.pop();
        assert!(codec::decode(&blob).is_err());
    }

    #[test]
    fn codec_errors_are_typed() {
        use crate::error::DecodeError;
        let v = WahVec::ones(62);
        let good = codec::encode(&v);
        // truncation
        assert!(matches!(
            codec::decode(&good[..good.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        // trailing garbage
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            codec::decode(&bad),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
        // an overlong fill: a 2-segment 0-fill (62 bits) in a 31-bit vector
        let fill_2_segs = 0x8000_0000u32 | 62;
        let blob = {
            let mut b = Vec::new();
            b.extend_from_slice(&31u64.to_le_bytes());
            b.extend_from_slice(&1u32.to_le_bytes());
            b.extend_from_slice(&fill_2_segs.to_le_bytes());
            b
        };
        assert!(matches!(
            codec::decode(&blob),
            Err(DecodeError::BadBitvector(_))
        ));
    }

    #[test]
    fn index_codec_round_trip() {
        use ibis_core::{Binner, BitmapIndex};
        let data: Vec<f64> = (0..2000).map(|i| ((i as f64) * 0.01).sin() * 9.0).collect();
        for binner in [
            Binner::fixed_width(-10.0, 10.0, 25),
            Binner::from_edges(vec![-10.0, -3.0, 0.0, 1.5, 10.0]),
        ] {
            let idx = BitmapIndex::build(&data, binner);
            let blob = codec::encode_index(&idx);
            let back = codec::decode_index(&blob).expect("valid blob");
            assert_eq!(
                back.binner(),
                idx.binner(),
                "binner must round-trip exactly"
            );
            assert_eq!(back.len(), idx.len());
            assert_eq!(back.counts(), idx.counts());
            for b in 0..idx.nbins() {
                assert_eq!(back.bin(b), idx.bin(b));
            }
        }
    }

    #[test]
    fn index_codec_rejects_malformed() {
        use crate::error::DecodeError;
        use ibis_core::{Binner, BitmapIndex};
        let idx = BitmapIndex::build(&[1.0, 2.0, 3.0], Binner::fixed_width(0.0, 4.0, 4));
        let blob = codec::encode_index(&idx);
        assert!(codec::decode_index(&blob).is_ok());
        // truncation
        assert!(matches!(
            codec::decode_index(&blob[..blob.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        // bad magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(
            codec::decode_index(&bad),
            Err(DecodeError::BadMagic)
        ));
        // bad version
        let mut bad = blob.clone();
        bad[4] = 99;
        assert!(matches!(
            codec::decode_index(&bad),
            Err(DecodeError::BadVersion(99))
        ));
        // trailing garbage
        let mut bad = blob.clone();
        bad.push(0);
        assert!(matches!(
            codec::decode_index(&bad),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
        // empty
        assert!(matches!(
            codec::decode_index(&[]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn index_codec_file_round_trip() {
        use ibis_core::{Binner, BitmapIndex};
        let dir = std::env::temp_dir().join("ibis-test-index-sink");
        let sink = FileSink::new(&dir).unwrap();
        let data: Vec<f64> = (0..500).map(|i| (i % 40) as f64).collect();
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 40.0, 40));
        let path = sink
            .write_blob("step7.ibis", &codec::encode_index(&idx))
            .unwrap();
        let back = codec::decode_index(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back.counts(), idx.counts());
        std::fs::remove_dir_all(&dir).ok();
    }
}
