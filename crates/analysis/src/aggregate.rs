//! Approximate aggregation over bitmaps — the prior-work capability the
//! paper builds on ("we demonstrated that approximate data aggregation …
//! can be supported using bitmaps", Section 2.2).
//!
//! After the raw data is discarded, only the binning survives; aggregates
//! are therefore computed from bin counts with each element approximated by
//! its bin's midpoint. Every estimate comes with a *hard error bound*
//! derived from the bin widths: the true value of an element differs from
//! its bin midpoint by at most half the bin width, so sums/means carry a
//! guaranteed interval.

use ibis_core::{Binner, BitmapIndex, WahVec};

/// An aggregate estimate with its guaranteed absolute error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Midpoint-based estimate.
    pub value: f64,
    /// The true value lies within `value ± bound`.
    pub bound: f64,
}

impl Estimate {
    /// `true` if `x` falls inside the guaranteed interval.
    pub fn contains(&self, x: f64) -> bool {
        (x - self.value).abs() <= self.bound + 1e-9
    }
}

/// Number of indexed elements (exact — no binning error).
pub fn count(index: &BitmapIndex) -> u64 {
    index.len()
}

/// Number of elements selected by a selection vector (exact).
pub fn count_selected(selection: &WahVec) -> u64 {
    selection.count_ones()
}

/// Approximate sum of the indexed variable.
pub fn sum(index: &BitmapIndex) -> Estimate {
    sum_from_bin_counts(index.binner(), index.counts())
}

/// Approximate sum restricted to a selection vector (positions with a 1).
pub fn sum_selected(index: &BitmapIndex, selection: &WahVec) -> Estimate {
    assert_eq!(selection.len(), index.len(), "selection length mismatch");
    let counts: Vec<u64> = index
        .bins()
        .iter()
        .map(|bin| bin.and_count(selection))
        .collect();
    sum_from_bin_counts(index.binner(), &counts)
}

/// The sum finisher: per-bin selection counts to a bounded estimate. Pure
/// in the integer counts and the binning scale, so per-shard counts summed
/// at a coordinator and fed through this produce the exact float sequence
/// the unsharded [`sum_selected`] computes.
pub fn sum_from_bin_counts(binner: &Binner, counts: &[u64]) -> Estimate {
    let mut value = 0.0;
    let mut bound = 0.0;
    for (b, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let (lo, hi) = binner.bin_range(b);
        value += c as f64 * (lo + hi) / 2.0;
        bound += c as f64 * (hi - lo) / 2.0;
    }
    Estimate { value, bound }
}

/// Approximate mean of the indexed variable; `None` for an empty index.
pub fn mean(index: &BitmapIndex) -> Option<Estimate> {
    mean_from_sum(sum(index), index.len())
}

/// Approximate mean over a selection.
pub fn mean_selected(index: &BitmapIndex, selection: &WahVec) -> Option<Estimate> {
    mean_from_sum(sum_selected(index, selection), selection.count_ones())
}

/// The mean finisher: a sum estimate over `n` selected elements. `None`
/// when nothing is selected.
pub fn mean_from_sum(sum: Estimate, n: u64) -> Option<Estimate> {
    (n > 0).then(|| Estimate {
        value: sum.value / n as f64,
        bound: sum.bound / n as f64,
    })
}

/// Approximate minimum: the low edge of the first non-empty bin (the true
/// minimum lies inside that bin).
pub fn min(index: &BitmapIndex) -> Option<Estimate> {
    let b = index.counts().iter().position(|&c| c > 0)?;
    let (lo, hi) = index.binner().bin_range(b);
    Some(Estimate {
        value: (lo + hi) / 2.0,
        bound: (hi - lo) / 2.0,
    })
}

/// Approximate maximum: the high edge of the last non-empty bin.
pub fn max(index: &BitmapIndex) -> Option<Estimate> {
    let b = index.counts().iter().rposition(|&c| c > 0)?;
    let (lo, hi) = index.binner().bin_range(b);
    Some(Estimate {
        value: (lo + hi) / 2.0,
        bound: (hi - lo) / 2.0,
    })
}

/// Approximate variance (population), from bin midpoints. The bound is
/// first-order: midpoint displacement of up to `w/2` shifts each squared
/// deviation by at most `w · (|dev| + w/4)`.
pub fn variance(index: &BitmapIndex) -> Option<Estimate> {
    let n = index.len();
    if n == 0 {
        return None;
    }
    let m = mean(index)?.value;
    let mut var = 0.0;
    let mut bound = 0.0;
    for (b, &c) in index.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let (lo, hi) = index.binner().bin_range(b);
        let mid = (lo + hi) / 2.0;
        let w = hi - lo;
        let dev = mid - m;
        var += c as f64 * dev * dev;
        bound += c as f64 * (w * dev.abs() + w * w / 4.0);
    }
    Some(Estimate {
        value: var / n as f64,
        bound: bound / n as f64,
    })
}

/// Approximate Pearson correlation of two indexed variables, from the
/// joint bin counts with midpoint values. Returns `None` when either
/// variable is (approximately) constant.
pub fn pearson(a: &BitmapIndex, b: &BitmapIndex) -> Option<f64> {
    pearson_from_joint_counts(
        a.binner(),
        b.binner(),
        &crate::histogram::joint_counts_adaptive(a, b),
        a.len(),
    )
}

/// Pearson correlation over a selection: joint counts restricted to the
/// selected positions.
pub fn pearson_selected(a: &BitmapIndex, b: &BitmapIndex, selection: &WahVec) -> Option<f64> {
    assert_eq!(selection.len(), a.len(), "selection length mismatch");
    let nb = b.nbins();
    let mut joint = vec![0u64; a.nbins() * nb];
    for j in 0..a.nbins() {
        if a.counts()[j] == 0 {
            continue;
        }
        let masked = a.bin(j).and(selection);
        if masked.count_ones() == 0 {
            continue;
        }
        for (k, slot) in joint[j * nb..(j + 1) * nb].iter_mut().enumerate() {
            if b.counts()[k] != 0 {
                *slot = masked.and_count(b.bin(k));
            }
        }
    }
    pearson_from_joint_counts(a.binner(), b.binner(), &joint, selection.count_ones())
}

/// The Pearson finisher: joint `(bin_a, bin_b)` counts to an approximate
/// correlation with bin-midpoint values. Pure in the integer counts, the
/// two binning scales, and `n`, with a fixed accumulation order — so a
/// coordinator summing per-shard joint tables reproduces the unsharded
/// [`pearson_selected`] float for float.
pub fn pearson_from_joint_counts(
    binner_a: &Binner,
    binner_b: &Binner,
    joint: &[u64],
    n: u64,
) -> Option<f64> {
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mid = |binner: &Binner, bin: usize| {
        let (lo, hi) = binner.bin_range(bin);
        (lo + hi) / 2.0
    };
    let nb = binner_b.nbins();
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for j in 0..binner_a.nbins() {
        for k in 0..nb {
            let c = joint[j * nb + k] as f64;
            if c == 0.0 {
                continue;
            }
            let (x, y) = (mid(binner_a, j), mid(binner_b, k));
            sx += c * x;
            sy += c * y;
            sxx += c * x * x;
            syy += c * y * y;
            sxy += c * x * y;
        }
    }
    let cov = sxy / nf - (sx / nf) * (sy / nf);
    let vx = sxx / nf - (sx / nf).powi(2);
    let vy = syy / nf - (sy / nf).powi(2);
    if vx <= 1e-12 || vy <= 1e-12 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::Binner;

    fn linear_data(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / 10.0).collect()
    }

    #[test]
    fn count_is_exact() {
        let data = linear_data(777);
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 80.0, 40));
        assert_eq!(count(&idx), 777);
    }

    #[test]
    fn sum_and_mean_bounds_hold() {
        let data = linear_data(1000);
        let true_sum: f64 = data.iter().sum();
        let true_mean = true_sum / 1000.0;
        for nbins in [5usize, 50, 500] {
            let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 100.0, nbins));
            let s = sum(&idx);
            assert!(s.contains(true_sum), "nbins={nbins}: {s:?} vs {true_sum}");
            let m = mean(&idx).unwrap();
            assert!(m.contains(true_mean), "nbins={nbins}: {m:?} vs {true_mean}");
        }
    }

    #[test]
    fn finer_bins_tighter_bounds() {
        let data = linear_data(1000);
        let coarse = sum(&BitmapIndex::build(
            &data,
            Binner::fixed_width(0.0, 100.0, 5),
        ));
        let fine = sum(&BitmapIndex::build(
            &data,
            Binner::fixed_width(0.0, 100.0, 200),
        ));
        assert!(fine.bound < coarse.bound / 10.0);
    }

    #[test]
    fn min_max_bracket_truth() {
        let data = vec![3.7, 9.2, 5.5, 4.1];
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 10.0, 20));
        assert!(min(&idx).unwrap().contains(3.7));
        assert!(max(&idx).unwrap().contains(9.2));
        let empty = BitmapIndex::build(&[], Binner::fixed_width(0.0, 1.0, 2));
        assert!(min(&empty).is_none());
        assert!(max(&empty).is_none());
        assert!(mean(&empty).is_none());
    }

    #[test]
    fn variance_bound_holds() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 17) % 90) as f64 / 3.0).collect();
        let m = data.iter().sum::<f64>() / 500.0;
        let true_var = data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / 500.0;
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 30.0, 60));
        let v = variance(&idx).unwrap();
        assert!(v.contains(true_var), "{v:?} vs {true_var}");
    }

    #[test]
    fn selected_aggregates() {
        let data = linear_data(100); // values 0.0 .. 9.9
        let idx = BitmapIndex::build(&data, Binner::fixed_width(0.0, 10.0, 100));
        // select the first 50 positions
        let sel = ibis_core::WahVec::from_bits((0..100).map(|i| i < 50));
        assert_eq!(count_selected(&sel), 50);
        let true_sum: f64 = data[..50].iter().sum();
        assert!(sum_selected(&idx, &sel).contains(true_sum));
        assert!(mean_selected(&idx, &sel).unwrap().contains(true_sum / 50.0));
    }

    #[test]
    fn pearson_tracks_true_correlation() {
        let a: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).sin() * 10.0).collect();
        let pos: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let neg: Vec<f64> = a.iter().map(|v| -v * 0.5).collect();
        let ba = Binner::fit(&a, 64);
        let ia = BitmapIndex::build(&a, ba);
        let ip = BitmapIndex::build(&pos, Binner::fit(&pos, 64));
        let inn = BitmapIndex::build(&neg, Binner::fit(&neg, 64));
        assert!(pearson(&ia, &ip).unwrap() > 0.99);
        assert!(pearson(&ia, &inn).unwrap() < -0.99);
    }

    #[test]
    fn pearson_constant_is_none() {
        let a = vec![1.0; 100];
        let b: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ia = BitmapIndex::build(&a, Binner::fixed_width(0.0, 2.0, 4));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 100.0, 10));
        assert!(pearson(&ia, &ib).is_none());
    }

    #[test]
    fn pearson_selected_isolates_region() {
        // correlated in the first half, anti-correlated in the second
        let n = 2000;
        let a: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) / 10.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                let v = (i % 97) as f64 / 10.0;
                if i < n / 2 {
                    v
                } else {
                    10.0 - v
                }
            })
            .collect();
        let ia = BitmapIndex::build(&a, Binner::fixed_width(0.0, 10.0, 50));
        let ib = BitmapIndex::build(&b, Binner::fixed_width(0.0, 10.0, 50));
        let first = ibis_core::WahVec::from_bits((0..n).map(|i| i < n / 2));
        let second = first.not();
        assert!(pearson_selected(&ia, &ib, &first).unwrap() > 0.99);
        assert!(pearson_selected(&ia, &ib, &second).unwrap() < -0.99);
        // the whole-domain correlation washes out
        assert!(pearson(&ia, &ib).unwrap().abs() < 0.2);
    }
}
