//! The per-figure experiment drivers. Each function regenerates one figure
//! of the paper's evaluation (Section 5) and records paper-vs-measured in
//! `target/figures/*.csv`; EXPERIMENTS.md discusses the comparisons.

use crate::{
    heat3d_binner, heat3d_config, lulesh_binners, lulesh_config, mb, scaled_count, secs, speedup,
    steps_and_k, Figure,
};
use ibis_analysis::entropy::mutual_information_from_counts;
use ibis_analysis::histogram::joint_histogram;
use ibis_analysis::sampling::{
    pairwise_metric_loss, pairwise_relative_loss, sample, SamplingMethod,
};
use ibis_analysis::{mine_full, mine_index, mine_multilevel, Cfp, Metric, MiningConfig};
use ibis_analysis::{StepSummary, VarSummary};
use ibis_core::{Binner, BitmapIndex, MultiLevelIndex, RowOrder, ZOrderLayout};
use ibis_datagen::{Heat3D, MiniLulesh, OceanConfig, OceanModel, Simulation, StepOutput};
use ibis_insitu::{
    auto_allocate, run_cluster, run_pipeline, ClusterConfig, ClusterIo, ClusterReduction,
    CoreAllocation, InsituReport, LocalDisk, MachineModel, PipelineConfig, Reduction,
    RobustnessConfig, ScalingModel,
};
use std::time::Instant;

#[allow(clippy::too_many_arguments)] // a config record, not an API
fn base_pipeline(
    machine: MachineModel,
    cores: usize,
    reduction: Reduction,
    steps: usize,
    k: usize,
    metric: Metric,
    binners: Vec<Binner>,
    sim_scaling: ScalingModel,
) -> PipelineConfig {
    PipelineConfig {
        machine,
        cores,
        allocation: CoreAllocation::Shared,
        reduction,
        steps,
        select_k: k,
        metric,
        binners,
        per_step_precision: None,
        row_order: RowOrder::Identity,
        queue_capacity: 4,
        sim_scaling,
        robustness: RobustnessConfig::default(),
    }
}

/// Shared driver for Figures 7–10: in-situ time breakdown, full data vs
/// bitmaps, across a core sweep.
#[allow(clippy::too_many_arguments)]
fn core_sweep<F>(
    id: &'static str,
    title: &str,
    machine: MachineModel,
    cores_list: &[usize],
    make_sim: F,
    binners: Vec<Binner>,
    metric: Metric,
    sim_scaling: ScalingModel,
) where
    F: Fn() -> Box<dyn Simulation>,
{
    let (steps, k) = steps_and_k();
    let mut fig = Figure::new(
        id,
        title,
        &[
            "cores",
            "method",
            "sim(s)",
            "reduce(s)",
            "select(s)",
            "output(s)",
            "total(s)",
            "speedup",
        ],
    );
    for &cores in cores_list {
        let mut reports: Vec<(&str, InsituReport)> = Vec::new();
        for (label, reduction) in [
            ("bitmaps", Reduction::Bitmaps),
            ("fulldata", Reduction::FullData),
        ] {
            let cfg = base_pipeline(
                machine.clone(),
                cores,
                reduction,
                steps,
                k,
                metric,
                binners.clone(),
                sim_scaling,
            );
            let disk = LocalDisk::new(machine.disk_bw);
            let r = run_pipeline(make_sim(), &cfg, &disk).expect("clean run");
            reports.push((label, r));
        }
        let full_total = reports[1].1.total_modeled;
        for (label, r) in &reports {
            fig.row(&[
                &cores,
                label,
                &secs(r.phases.simulate),
                &secs(r.phases.reduce),
                &secs(r.phases.select),
                &secs(r.phases.output),
                &secs(r.total_modeled),
                &speedup(full_total, r.total_modeled),
            ]);
        }
        // sanity: both methods must pick the same steps
        assert_eq!(
            reports[0].1.selected, reports[1].1.selected,
            "selection must agree"
        );
    }
    fig.finish();
}

/// Figure 7: Heat3D, selecting 25 of 100 time-steps, Xeon, 1–32 cores,
/// conditional entropy.
pub fn fig07() {
    let heat = heat3d_config();
    core_sweep(
        "fig07",
        "Heat3D time-steps selection breakdown (Xeon)",
        MachineModel::xeon32(),
        &[1, 2, 4, 8, 16, 32],
        move || Box::new(Heat3D::new(heat.clone())),
        vec![heat3d_binner()],
        Metric::ConditionalEntropy,
        ScalingModel::heat3d(),
    );
}

/// Figure 8: the same on the MIC profile (more but slower cores, slower
/// disk, smaller problem — the paper uses a quarter-size mesh for the 8 GB
/// node).
pub fn fig08() {
    let mut heat = heat3d_config();
    heat.nz = (heat.nz / 4).max(8); // the paper's 200×1000×1000 vs 800×1000×1000
    core_sweep(
        "fig08",
        "Heat3D time-steps selection breakdown (MIC)",
        MachineModel::mic60(),
        &[1, 4, 16, 32, 60],
        move || Box::new(Heat3D::new(heat.clone())),
        vec![heat3d_binner()],
        Metric::ConditionalEntropy,
        ScalingModel::heat3d(),
    );
}

/// Figure 9: mini-LULESH (12 arrays), Xeon, Earth Mover's Distance.
pub fn fig09() {
    let cfg = lulesh_config();
    let binners = lulesh_binners(&cfg, 3, 48);
    core_sweep(
        "fig09",
        "LULESH time-steps selection breakdown (Xeon)",
        MachineModel::xeon32(),
        &[1, 2, 4, 8, 16, 32],
        move || Box::new(MiniLulesh::new(cfg.clone())),
        binners,
        Metric::EmdSpatial,
        ScalingModel::lulesh(),
    );
}

/// Figure 10: mini-LULESH on the MIC profile (smaller mesh).
pub fn fig10() {
    let mut cfg = lulesh_config();
    cfg.edge = (cfg.edge / 2).max(6);
    let binners = lulesh_binners(&cfg, 3, 48);
    core_sweep(
        "fig10",
        "LULESH time-steps selection breakdown (MIC)",
        MachineModel::mic60(),
        &[1, 4, 16, 32, 60],
        move || Box::new(MiniLulesh::new(cfg.clone())),
        binners,
        Metric::EmdSpatial,
        ScalingModel::lulesh(),
    );
}

/// Figure 11: peak analysis memory, full data vs bitmaps, holding a
/// 10-step selection window (the paper's setting).
pub fn fig11() {
    let mut fig = Figure::new(
        "fig11",
        "Peak analysis memory, 10 steps held for selection",
        &["workload", "method", "peak(MB)", "ratio"],
    );
    // steps/k chosen so each selection interval holds 10 steps
    let steps = 31;
    let k = 4;

    let heat = heat3d_config();
    let run_heat = |reduction: Reduction| {
        let cfg = base_pipeline(
            MachineModel::xeon32(),
            8,
            reduction,
            steps,
            k,
            Metric::ConditionalEntropy,
            vec![heat3d_binner()],
            ScalingModel::heat3d(),
        );
        let disk = LocalDisk::new(1e9);
        run_pipeline(Heat3D::new(heat.clone()), &cfg, &disk).expect("clean run")
    };
    let hb = run_heat(Reduction::Bitmaps);
    let hf = run_heat(Reduction::FullData);
    fig.row(&[&"heat3d", &"fulldata", &mb(hf.peak_memory_bytes), &"1.00x"]);
    fig.row(&[
        &"heat3d",
        &"bitmaps",
        &mb(hb.peak_memory_bytes),
        &speedup(hf.peak_memory_bytes as f64, hb.peak_memory_bytes as f64),
    ]);

    let lcfg = lulesh_config();
    let binners = lulesh_binners(&lcfg, 3, 48);
    let run_lul = |reduction: Reduction| {
        let cfg = base_pipeline(
            MachineModel::xeon32(),
            8,
            reduction,
            21,
            3,
            Metric::EmdSpatial,
            binners.clone(),
            ScalingModel::lulesh(),
        );
        let disk = LocalDisk::new(1e9);
        run_pipeline(MiniLulesh::new(lcfg.clone()), &cfg, &disk).expect("clean run")
    };
    let lb = run_lul(Reduction::Bitmaps);
    let lf = run_lul(Reduction::FullData);
    fig.row(&[&"lulesh", &"fulldata", &mb(lf.peak_memory_bytes), &"1.00x"]);
    fig.row(&[
        &"lulesh",
        &"bitmaps",
        &mb(lb.peak_memory_bytes),
        &speedup(lf.peak_memory_bytes as f64, lb.peak_memory_bytes as f64),
    ]);
    fig.finish();
    assert!(hb.peak_memory_bytes < hf.peak_memory_bytes);
    assert!(lb.peak_memory_bytes < lf.peak_memory_bytes);
}

/// Figure 12: Shared vs Separate core allocation — (a) Heat3D/Xeon-28,
/// (b) Heat3D/MIC-56, (c) LULESH/Xeon-28 — plus the Equations 1–2 split.
pub fn fig12() {
    let mut fig = Figure::new(
        "fig12",
        "Core allocation strategies: simulation + bitmaps time over all steps",
        &["panel", "allocation", "sim(s)", "bitmap(s)", "total(s)"],
    );
    let (steps, k) = steps_and_k();

    let mut panel = |name: &'static str,
                     machine: MachineModel,
                     total: usize,
                     splits: &[(usize, usize)],
                     make_sim: &dyn Fn() -> Box<dyn Simulation>,
                     binners: Vec<Binner>,
                     metric: Metric,
                     scaling: ScalingModel| {
        let base = base_pipeline(
            machine.clone(),
            total,
            Reduction::Bitmaps,
            steps,
            k,
            metric,
            binners.clone(),
            scaling,
        );
        let disk = LocalDisk::new(machine.disk_bw);
        let shared = run_pipeline(make_sim(), &base, &disk).expect("clean run");
        fig.row(&[
            &name,
            &"c_all",
            &secs(shared.phases.simulate),
            &secs(shared.phases.reduce),
            &secs(shared.total_modeled),
        ]);
        for &(sim_c, bm_c) in splits {
            let mut cfg = base.clone();
            cfg.allocation = CoreAllocation::Separate {
                sim_cores: sim_c,
                bitmap_cores: bm_c,
            };
            let disk = LocalDisk::new(machine.disk_bw);
            let r = run_pipeline(make_sim(), &cfg, &disk).expect("clean run");
            fig.row(&[
                &name,
                &format!("c{sim_c}_c{bm_c}"),
                &secs(r.phases.simulate),
                &secs(r.phases.reduce),
                &secs(r.total_modeled),
            ]);
        }
        // Equations 1–2 auto split
        let mut probe = make_sim();
        let alloc = auto_allocate(&mut probe, &binners, &machine, total, 2);
        let CoreAllocation::Separate {
            sim_cores,
            bitmap_cores,
        } = alloc
        else {
            unreachable!()
        };
        let mut cfg = base.clone();
        cfg.allocation = alloc;
        let disk = LocalDisk::new(machine.disk_bw);
        let r = run_pipeline(make_sim(), &cfg, &disk).expect("clean run");
        fig.row(&[
            &name,
            &format!("auto c{sim_cores}_c{bitmap_cores}"),
            &secs(r.phases.simulate),
            &secs(r.phases.reduce),
            &secs(r.total_modeled),
        ]);
    };

    let heat = heat3d_config();
    panel(
        "a:heat3d-xeon28",
        MachineModel::xeon32(),
        28,
        &[(24, 4), (20, 8), (16, 12), (12, 16), (8, 20)],
        &|| Box::new(Heat3D::new(heat.clone())),
        vec![heat3d_binner()],
        Metric::ConditionalEntropy,
        ScalingModel::heat3d(),
    );
    let mut heat_mic = heat3d_config();
    heat_mic.nz = (heat_mic.nz / 4).max(8);
    panel(
        "b:heat3d-mic56",
        MachineModel::mic60(),
        56,
        &[(48, 8), (40, 16), (32, 24), (24, 32), (16, 40)],
        &|| Box::new(Heat3D::new(heat_mic.clone())),
        vec![heat3d_binner()],
        Metric::ConditionalEntropy,
        ScalingModel::heat3d(),
    );
    let lcfg = lulesh_config();
    let lbinners = lulesh_binners(&lcfg, 3, 48);
    panel(
        "c:lulesh-xeon28",
        MachineModel::xeon32(),
        28,
        &[(24, 4), (20, 8), (16, 12), (12, 16)],
        &|| Box::new(MiniLulesh::new(lcfg.clone())),
        lbinners,
        Metric::EmdSpatial,
        ScalingModel::lulesh(),
    );
    fig.finish();
}

/// Figure 13: cluster scalability — Heat3D over 1..N nodes, bitmaps vs
/// full data, local vs shared-remote storage.
pub fn fig13() {
    let mut fig = Figure::new(
        "fig13",
        "Cluster in-situ: total modeled time vs node count",
        &[
            "nodes",
            "method",
            "io",
            "sim(s)",
            "output(s)",
            "total(s)",
            "speedup",
        ],
    );
    let heat = heat3d_config();
    let steps = scaled_count(16);
    let k = (steps / 4).max(2);
    let machine = MachineModel::oakley_node();
    let remote_bw = MachineModel::remote_link_bw();
    for &nodes in &[1usize, 2, 4, 8, 16] {
        let base = ClusterConfig {
            nodes,
            cores_per_node: 8,
            machine: machine.clone(),
            heat: heat.clone(),
            sweeps_per_step: heat.sweeps_per_step,
            steps,
            select_k: k,
            binner: heat3d_binner(),
            reduction: ClusterReduction::Bitmaps,
            io: ClusterIo::Local,
            remote_bw,
            sim_scaling: ScalingModel::heat3d(),
            robustness: RobustnessConfig::default(),
            coordinator_timeout: std::time::Duration::from_secs(60),
        };
        for io in [ClusterIo::Local, ClusterIo::Remote] {
            let mut totals = Vec::new();
            for reduction in [ClusterReduction::Bitmaps, ClusterReduction::FullData] {
                let cfg = ClusterConfig {
                    reduction,
                    io,
                    ..base.clone()
                };
                let r = run_cluster(&cfg).expect("clean run");
                totals.push((reduction, r));
            }
            let full_total = totals[1].1.total_modeled;
            for (reduction, r) in &totals {
                let label = match reduction {
                    ClusterReduction::Bitmaps => "bitmaps",
                    ClusterReduction::FullData => "fulldata",
                };
                let io_label = match io {
                    ClusterIo::Local => "local",
                    ClusterIo::Remote => "remote",
                };
                fig.row(&[
                    &nodes,
                    &label,
                    &io_label,
                    &secs(r.phases.simulate),
                    &secs(r.phases.output),
                    &secs(r.total_modeled),
                    &speedup(full_total, r.total_modeled),
                ]);
            }
        }
    }
    fig.finish();
}

/// Figure 14: correlation-mining time vs data size, bitmaps (single- and
/// multi-level) vs full data, on the ocean (POP-substitute) dataset.
///
/// This is the paper's *offline* scenario: the bitmaps were already
/// generated in-situ, so each method pays for loading its representation
/// from storage (modeled at the Xeon disk bandwidth) plus the mining
/// compute. Bitmaps load a fraction of the bytes and prune with cheap
/// compressed ANDs.
pub fn fig14() {
    let mut fig = Figure::new(
        "fig14",
        "Correlation mining: load + mine vs data size (ocean temp x salinity)",
        &[
            "elements",
            "full_load(s)",
            "full_mine(s)",
            "bm_load(s)",
            "bm_mine(s)",
            "ml_mine(s)",
            "speedup",
            "subsets",
        ],
    );
    let disk_bw = MachineModel::xeon32().disk_bw;
    let mining = MiningConfig {
        value_threshold: 0.002,
        spatial_threshold: 0.08,
        unit_size: 512,
    };
    for &(nlon, nlat, nd) in &[
        (128usize, 96usize, 2usize),
        (160, 120, 3),
        (192, 144, 4),
        (256, 192, 4),
    ] {
        let cfg = OceanConfig {
            nlon,
            nlat,
            ndepth: nd,
            ..Default::default()
        };
        let ocean = OceanModel::new(cfg.clone());
        let z = ZOrderLayout::new(&[nlon, nlat, nd]);
        let t = z.reorder(&ocean.variable("temperature"));
        let s = z.reorder(&ocean.variable("salinity"));
        let bt = Binner::fit(&t, 32);
        let bs = Binner::fit(&s, 32);
        // Generated in-situ; not part of the offline mining cost.
        let it = BitmapIndex::build(&t, bt.clone());
        let is = BitmapIndex::build(&s, bs.clone());
        let mt = MultiLevelIndex::from_low(it.clone(), 4);
        let ms = MultiLevelIndex::from_low(is.clone(), 4);

        let full_load = (t.len() + s.len()) as f64 * 8.0 / disk_bw;
        let bm_load = (it.size_bytes() + is.size_bytes()) as f64 / disk_bw;

        let t0 = Instant::now();
        let rf = mine_full(&t, &s, &bt, &bs, &mining);
        let full_mine = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let rb = mine_index(&it, &is, &mining);
        let bm_mine = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (rm, _) = mine_multilevel(&mt, &ms, &mining);
        let ml_mine = t0.elapsed().as_secs_f64();

        assert_eq!(
            rb.subsets, rf.subsets,
            "bitmap miner must equal full-data miner"
        );
        let _ = rm;
        fig.row(&[
            &(nlon * nlat * nd),
            &secs(full_load),
            &secs(full_mine),
            &secs(bm_load),
            &secs(bm_mine),
            &secs(ml_mine),
            &speedup(full_load + full_mine, bm_load + bm_mine.min(ml_mine)),
            &rb.subsets.len(),
        ]);
    }
    fig.finish();
}

/// Figure 15: bitmaps vs in-situ sampling (30/15/5/1%) — time breakdown at
/// 32 cores.
pub fn fig15() {
    let mut fig = Figure::new(
        "fig15",
        "Bitmaps vs sampling: in-situ time breakdown (Heat3D, 32 cores)",
        &[
            "method",
            "sim(s)",
            "reduce(s)",
            "select(s)",
            "output(s)",
            "total(s)",
        ],
    );
    let heat = heat3d_config();
    let (steps, k) = steps_and_k();
    let machine = MachineModel::xeon32();
    let mut run = |label: String, reduction: Reduction| {
        let cfg = base_pipeline(
            machine.clone(),
            32,
            reduction,
            steps,
            k,
            Metric::ConditionalEntropy,
            vec![heat3d_binner()],
            ScalingModel::heat3d(),
        );
        let disk = LocalDisk::new(machine.disk_bw);
        let r = run_pipeline(Heat3D::new(heat.clone()), &cfg, &disk).expect("clean run");
        fig.row(&[
            &label,
            &secs(r.phases.simulate),
            &secs(r.phases.reduce),
            &secs(r.phases.select),
            &secs(r.phases.output),
            &secs(r.total_modeled),
        ]);
    };
    run("bitmaps".into(), Reduction::Bitmaps);
    for pct in [30.0, 15.0, 5.0, 1.0] {
        run(
            format!("sample-{pct}%"),
            Reduction::Sampling {
                percent: pct,
                method: SamplingMethod::Stride,
            },
        );
    }
    fig.finish();
}

fn heat3d_step_arrays(steps: usize) -> Vec<Vec<f64>> {
    let mut heat = heat3d_config();
    // accuracy figures need many pairwise metrics: shrink the grid
    heat.nx /= 2;
    heat.ny /= 2;
    heat.nz /= 2;
    let mut sim = Heat3D::new(heat);
    sim.run(steps)
        .into_iter()
        .map(|mut s: StepOutput| s.fields.remove(0).data)
        .collect()
}

/// Figure 16: information loss of sampling for time-steps selection — CFP
/// of per-pair conditional-entropy differences plus mean relative loss.
pub fn fig16() {
    let mut fig = Figure::new(
        "fig16",
        "Sampling accuracy loss for selection metrics (CFP of CE error)",
        &["method", "mean_abs", "p50", "p90", "mean_rel_loss%"],
    );
    let arrays = heat3d_step_arrays(scaled_count(14));
    let binner = heat3d_binner();
    let full: Vec<StepSummary> = arrays
        .iter()
        .enumerate()
        .map(|(i, a)| StepSummary {
            step: i,
            vars: vec![VarSummary::full(a.clone(), binner.clone())],
        })
        .collect();
    // bitmaps: zero loss by construction
    let bitmaps: Vec<StepSummary> = arrays
        .iter()
        .enumerate()
        .map(|(i, a)| StepSummary {
            step: i,
            vars: vec![VarSummary::bitmap(a, binner.clone())],
        })
        .collect();
    let metric = Metric::ConditionalEntropy;
    {
        // compare bitmap metrics against full metrics pair by pair
        let mut diffs = Vec::new();
        for i in 0..full.len() {
            for j in i + 1..full.len() {
                let a = full[j].metric(&full[i], metric);
                let b = bitmaps[j].metric(&bitmaps[i], metric);
                diffs.push((a - b).abs());
            }
        }
        let cfp = Cfp::from_values(diffs);
        fig.row(&[
            &"bitmaps",
            &format!("{:.6}", cfp.mean()),
            &format!("{:.6}", cfp.quantile(0.5)),
            &format!("{:.6}", cfp.quantile(0.9)),
            &"0.00",
        ]);
        assert_eq!(cfp.mean(), 0.0, "bitmaps must incur zero loss");
    }
    for pct in [30.0, 15.0, 5.0] {
        let sampled: Vec<StepSummary> = arrays
            .iter()
            .enumerate()
            .map(|(i, a)| StepSummary {
                step: i,
                vars: vec![VarSummary::full(
                    sample(a, pct, SamplingMethod::Stride),
                    binner.clone(),
                )],
            })
            .collect();
        let abs = pairwise_metric_loss(&full, &sampled, metric);
        let rel = pairwise_relative_loss(&full, &sampled, metric);
        let cfp = Cfp::from_values(abs);
        let mean_rel = 100.0 * rel.iter().sum::<f64>() / rel.len().max(1) as f64;
        fig.row(&[
            &format!("sample-{pct}%"),
            &format!("{:.6}", cfp.mean()),
            &format!("{:.6}", cfp.quantile(0.5)),
            &format!("{:.6}", cfp.quantile(0.9)),
            &format!("{mean_rel:.2}"),
        ]);
    }
    fig.finish();
}

/// Figure 17: information loss of sampling for correlation mining — MI over
/// 60 value×spatial subsets, sampled vs full, as relative-error CFPs.
pub fn fig17() {
    let mut fig = Figure::new(
        "fig17",
        "Sampling accuracy loss for mining MI over 60 subsets",
        &["method", "mean_rel_loss%", "p50%", "p90%"],
    );
    let cfg = OceanConfig {
        nlon: 256,
        nlat: 192,
        ndepth: 4,
        ..Default::default()
    };
    let ocean = OceanModel::new(cfg.clone());
    let z = ZOrderLayout::new(&[cfg.nlon, cfg.nlat, cfg.ndepth]);
    let t = z.reorder(&ocean.variable("temperature"));
    let s = z.reorder(&ocean.variable("salinity"));
    let bt = Binner::fit(&t, 16);
    let bs = Binner::fit(&s, 16);
    let n = t.len();

    // 60 subsets: 10 spatial units × 6 temperature-value groups.
    let units = 10usize;
    let groups = 6usize;
    let unit_len = n.div_ceil(units);
    let group_of = |v: f64| (bt.bin_of(v) as usize * groups / bt.nbins()).min(groups - 1);
    let subset_members = |data_t: &[f64], positions: &[usize]| -> Vec<Vec<usize>> {
        let mut subsets = vec![Vec::new(); units * groups];
        for &p in positions {
            let u = (p / unit_len).min(units - 1);
            let g = group_of(data_t[p]);
            subsets[u * groups + g].push(p);
        }
        subsets
    };
    let mi_of = |members: &[usize]| -> f64 {
        if members.len() < 8 {
            return 0.0;
        }
        let ta: Vec<f64> = members.iter().map(|&p| t[p]).collect();
        let sa: Vec<f64> = members.iter().map(|&p| s[p]).collect();
        let joint = joint_histogram(&ta, &sa, &bt, &bs);
        mutual_information_from_counts(&joint, bt.nbins(), bs.nbins())
    };

    let all_positions: Vec<usize> = (0..n).collect();
    let full_subsets = subset_members(&t, &all_positions);
    let full_mi: Vec<f64> = full_subsets.iter().map(|m| mi_of(m)).collect();

    // bitmaps row: exact
    fig.row(&[&"bitmaps", &"0.00", &"0.00", &"0.00"]);

    for pct in [50.0, 30.0, 15.0, 5.0] {
        let keep = ((n as f64 * pct / 100.0) as usize).max(1);
        let positions: Vec<usize> = (0..keep).map(|i| i * n / keep).collect();
        let sampled_subsets = subset_members(&t, &positions);
        let mut rels = Vec::new();
        for (idx, full) in full_mi.iter().enumerate() {
            if *full < 1e-9 {
                continue;
            }
            let sampled = mi_of(&sampled_subsets[idx]);
            rels.push(100.0 * ((full - sampled) / full).abs());
        }
        let cfp = Cfp::from_values(rels.clone());
        let mean = rels.iter().sum::<f64>() / rels.len().max(1) as f64;
        fig.row(&[
            &format!("sample-{pct}%"),
            &format!("{mean:.2}"),
            &format!("{:.2}", cfp.quantile(0.5)),
            &format!("{:.2}", cfp.quantile(0.9)),
        ]);
    }
    fig.finish();
}
