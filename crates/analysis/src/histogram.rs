//! Full-data histograms — the scan-based path the paper's *full data* method
//! uses, and the shared substrate all metrics are computed from.
//!
//! Every metric in this crate is a pure function of (joint) bin counts. The
//! bitmap path obtains the same counts from cached popcounts and compressed
//! AND operations; this module obtains them by scanning the raw arrays.
//! Because both paths feed identical counts into identical scoring code, the
//! bitmap results match the full-data results *exactly* (the paper's
//! no-accuracy-loss claim), which the tests assert bit-for-bit.

use ibis_core::{Binner, BitmapIndex};
use rayon::prelude::*;

/// Per-bin counts of `data` under `binner` (sequential scan).
pub fn histogram(data: &[f64], binner: &Binner) -> Vec<u64> {
    let mut h = vec![0u64; binner.nbins()];
    for &v in data {
        h[binner.bin_of(v) as usize] += 1;
    }
    h
}

/// Per-bin counts computed in parallel on the current rayon pool.
pub fn histogram_par(data: &[f64], binner: &Binner) -> Vec<u64> {
    let nbins = binner.nbins();
    data.par_chunks(64 * 1024)
        .map(|chunk| histogram(chunk, binner))
        .reduce(
            || vec![0u64; nbins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Joint bin counts of two equal-length arrays, flattened row-major
/// (`joint[j * nb + k]` = elements with `a` in bin `j` and `b` in bin `k`).
pub fn joint_histogram(a: &[f64], b: &[f64], binner_a: &Binner, binner_b: &Binner) -> Vec<u64> {
    assert_eq!(
        a.len(),
        b.len(),
        "joint histogram needs equal-length arrays"
    );
    let nb = binner_b.nbins();
    let mut h = vec![0u64; binner_a.nbins() * nb];
    for (&x, &y) in a.iter().zip(b) {
        h[binner_a.bin_of(x) as usize * nb + binner_b.bin_of(y) as usize] += 1;
    }
    h
}

/// Parallel joint histogram.
pub fn joint_histogram_par(a: &[f64], b: &[f64], binner_a: &Binner, binner_b: &Binner) -> Vec<u64> {
    assert_eq!(
        a.len(),
        b.len(),
        "joint histogram needs equal-length arrays"
    );
    let (na, nb) = (binner_a.nbins(), binner_b.nbins());
    a.par_chunks(64 * 1024)
        .zip(b.par_chunks(64 * 1024))
        .map(|(ca, cb)| joint_histogram(ca, cb, binner_a, binner_b))
        .reduce(
            || vec![0u64; na * nb],
            |mut x, y| {
                for (p, q) in x.iter_mut().zip(y) {
                    *p += q;
                }
                x
            },
        )
}

/// Joint bin counts obtained from two bitmap indices: `AND` + popcount per
/// bin pair, the paper's Figure 5 kernel. Exactly equals
/// [`joint_histogram`] on the underlying data when the binners match.
///
/// Two exact shortcuts keep the `m × n` loop cheap on the near-diagonal
/// joint tables that evolving simulation steps produce: a row stops as soon
/// as its counts sum to bin `j`'s total, and columns are probed outward
/// from `k = j` first (values drift slowly between steps, so the mass sits
/// near the diagonal).
pub fn joint_counts_from_indexes(a: &BitmapIndex, b: &BitmapIndex) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "indexes cover different element counts");
    let (na, nb) = (a.nbins(), b.nbins());
    let mut h = vec![0u64; na * nb];
    // The row early-exit assumes B's bins partition the domain (each
    // element in exactly one bin, so a row's AND counts sum to the row
    // total). A lossy superset index overlaps its bins; its rows get the
    // plain exhaustive probe instead.
    let b_partitions = b.counts().iter().sum::<u64>() == b.len();
    for j in 0..na {
        let mut remaining = a.counts()[j];
        if remaining == 0 {
            continue; // empty bin: the whole row is zero
        }
        // The row vector participates in up to `nb` ANDs: prepare it once
        // so a dense row pays its decode cost a single time.
        let row = a.bin(j).prepare();
        if !b_partitions {
            for (k, cell) in h[j * nb..(j + 1) * nb].iter_mut().enumerate() {
                if b.counts()[k] != 0 {
                    *cell = row.and_count(b.bin(k));
                }
            }
            continue;
        }
        for k in diagonal_order(j.min(nb - 1), nb) {
            if b.counts()[k] == 0 {
                continue;
            }
            let c = row.and_count(b.bin(k));
            h[j * nb + k] = c;
            remaining -= c;
            if remaining == 0 {
                break; // every element of bin j is accounted for
            }
        }
        debug_assert_eq!(remaining, 0, "bins of B must partition the domain");
    }
    h
}

/// Yields `0..n` ordered by distance from `center` (ties: lower first).
fn diagonal_order(center: usize, n: usize) -> impl Iterator<Item = usize> {
    debug_assert!(center < n);
    let mut lo = center as isize; // next candidate below (inclusive)
    let mut hi = center as isize + 1; // next candidate above
    std::iter::from_fn(move || {
        let below_left = lo >= 0;
        let above_left = (hi as usize) < n;
        match (below_left, above_left) {
            (false, false) => None,
            (true, false) => {
                lo -= 1;
                Some((lo + 1) as usize)
            }
            (false, true) => {
                hi += 1;
                Some((hi - 1) as usize)
            }
            (true, true) => {
                // pick whichever is closer to the center
                if center as isize - lo <= hi - center as isize {
                    lo -= 1;
                    Some((lo + 1) as usize)
                } else {
                    hi += 1;
                    Some((hi - 1) as usize)
                }
            }
        }
    })
}

/// Parallel variant of [`joint_counts_from_indexes`] (rows fan out across
/// the rayon pool).
pub fn joint_counts_from_indexes_par(a: &BitmapIndex, b: &BitmapIndex) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "indexes cover different element counts");
    let nb = b.nbins();
    let rows: Vec<Vec<u64>> = (0..a.nbins())
        .into_par_iter()
        .map(|j| {
            let mut row = vec![0u64; nb];
            let mut remaining = a.counts()[j];
            if remaining != 0 {
                let row_op = a.bin(j).prepare();
                for k in diagonal_order(j.min(nb - 1), nb) {
                    if b.counts()[k] == 0 {
                        continue;
                    }
                    let c = row_op.and_count(b.bin(k));
                    row[k] = c;
                    remaining -= c;
                    if remaining == 0 {
                        break;
                    }
                }
            }
            row
        })
        .collect();
    rows.concat()
}

/// Decodes an index back into per-element bin ids — the inverse of
/// building, O(words + n). Purely a bitmap computation (no raw data), used
/// by the adaptive joint-table path below.
pub fn decode_bin_ids(index: &BitmapIndex) -> Vec<u32> {
    let mut ids = vec![0u32; index.len() as usize];
    for (b, vec) in index.bins().iter().enumerate().skip(1) {
        // bin 0 is the default value; only scatter the others
        for pos in vec.iter_ones() {
            ids[pos as usize] = b as u32;
        }
    }
    ids
}

/// Joint bin counts from two indices, choosing the cheaper strategy:
/// the paper's `m × n` compressed ANDs when the indices are small, or a
/// decode-and-scan when the AND table would touch more words than the
/// element count (offline analyses are not memory-constrained, so the
/// transient id arrays are acceptable there). Result is identical either
/// way.
pub fn joint_counts_adaptive(a: &BitmapIndex, b: &BitmapIndex) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "indexes cover different element counts");
    let n = a.len();
    let words = (a.size_bytes() + b.size_bytes()) as u64 / std::mem::size_of::<u32>() as u64;
    let and_bound = a.nbins().min(b.nbins()) as u64 * words;
    if and_bound <= 4 * n {
        return joint_counts_from_indexes(a, b);
    }
    let ids_a = decode_bin_ids(a);
    let ids_b = decode_bin_ids(b);
    let nb = b.nbins();
    let mut h = vec![0u64; a.nbins() * nb];
    for (&ja, &kb) in ids_a.iter().zip(&ids_b) {
        h[ja as usize * nb + kb as usize] += 1;
    }
    h
}

/// Row sums of a flattened joint table (marginal of the first variable).
pub fn marginal_a(joint: &[u64], na: usize, nb: usize) -> Vec<u64> {
    assert_eq!(joint.len(), na * nb);
    (0..na)
        .map(|j| joint[j * nb..(j + 1) * nb].iter().sum())
        .collect()
}

/// Column sums of a flattened joint table (marginal of the second variable).
pub fn marginal_b(joint: &[u64], na: usize, nb: usize) -> Vec<u64> {
    assert_eq!(joint.len(), na * nb);
    (0..nb)
        .map(|k| (0..na).map(|j| joint[j * nb + k]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_a() -> Vec<f64> {
        (0..2000).map(|i| ((i * 13) % 97) as f64).collect()
    }

    fn data_b() -> Vec<f64> {
        (0..2000).map(|i| ((i * 7 + 3) % 89) as f64).collect()
    }

    #[test]
    fn histogram_sums_to_n() {
        let b = Binner::fixed_width(0.0, 100.0, 16);
        let h = histogram(&data_a(), &b);
        assert_eq!(h.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn parallel_histogram_identical() {
        let b = Binner::fixed_width(0.0, 100.0, 16);
        assert_eq!(histogram(&data_a(), &b), histogram_par(&data_a(), &b));
    }

    #[test]
    fn joint_marginals_match_individual_histograms() {
        let ba = Binner::fixed_width(0.0, 100.0, 12);
        let bb = Binner::fixed_width(0.0, 90.0, 9);
        let j = joint_histogram(&data_a(), &data_b(), &ba, &bb);
        assert_eq!(marginal_a(&j, 12, 9), histogram(&data_a(), &ba));
        assert_eq!(marginal_b(&j, 12, 9), histogram(&data_b(), &bb));
    }

    #[test]
    fn parallel_joint_identical() {
        let ba = Binner::fixed_width(0.0, 100.0, 12);
        let bb = Binner::fixed_width(0.0, 90.0, 9);
        assert_eq!(
            joint_histogram(&data_a(), &data_b(), &ba, &bb),
            joint_histogram_par(&data_a(), &data_b(), &ba, &bb)
        );
    }

    #[test]
    fn bitmap_joint_counts_equal_full_scan() {
        let ba = Binner::fixed_width(0.0, 100.0, 12);
        let bb = Binner::fixed_width(0.0, 90.0, 9);
        let ia = BitmapIndex::build(&data_a(), ba.clone());
        let ib = BitmapIndex::build(&data_b(), bb.clone());
        let want = joint_histogram(&data_a(), &data_b(), &ba, &bb);
        assert_eq!(joint_counts_from_indexes(&ia, &ib), want);
        assert_eq!(joint_counts_from_indexes_par(&ia, &ib), want);
    }

    #[test]
    fn decode_bin_ids_inverts_build() {
        let data: Vec<f64> = (0..1234).map(|i| ((i * 11) % 30) as f64).collect();
        let binner = Binner::distinct_ints(0, 29);
        let idx = BitmapIndex::build(&data, binner.clone());
        assert_eq!(decode_bin_ids(&idx), binner.bin_all(&data));
    }

    #[test]
    fn adaptive_joint_equals_direct() {
        // dense many-bin case (decode path) and small case (AND path)
        for nbins in [4usize, 64] {
            let a: Vec<f64> = (0..3000).map(|i| ((i * 7) % nbins) as f64).collect();
            let b: Vec<f64> = (0..3000).map(|i| ((i * 13 + 1) % nbins) as f64).collect();
            let binner = Binner::distinct_ints(0, nbins as i64 - 1);
            let ia = BitmapIndex::build(&a, binner.clone());
            let ib = BitmapIndex::build(&b, binner.clone());
            assert_eq!(
                joint_counts_adaptive(&ia, &ib),
                joint_histogram(&a, &b, &binner, &binner),
                "nbins={nbins}"
            );
        }
    }

    #[test]
    fn empty_data() {
        let b = Binner::fixed_width(0.0, 1.0, 4);
        assert_eq!(histogram(&[], &b), vec![0; 4]);
        assert_eq!(joint_histogram(&[], &[], &b, &b), vec![0; 16]);
    }

    #[test]
    fn diagonal_order_is_a_permutation() {
        for n in [1usize, 2, 5, 10] {
            for c in 0..n {
                let mut seen: Vec<usize> = diagonal_order(c, n).collect();
                assert_eq!(seen[0], c, "center first");
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "c={c} n={n}");
            }
        }
    }

    #[test]
    fn diagonal_order_expands_outward() {
        let order: Vec<usize> = diagonal_order(3, 7).collect();
        assert_eq!(order, vec![3, 2, 4, 1, 5, 0, 6]);
        let order: Vec<usize> = diagonal_order(0, 4).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let order: Vec<usize> = diagonal_order(3, 4).collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn bitmap_joint_counts_rectangular_tables() {
        // na != nb exercises the clamped diagonal start
        let a: Vec<f64> = (0..777).map(|i| ((i * 3) % 50) as f64).collect();
        let b: Vec<f64> = (0..777).map(|i| ((i * 7) % 20) as f64).collect();
        let ba = Binner::distinct_ints(0, 49);
        let bb = Binner::distinct_ints(0, 19);
        let ia = BitmapIndex::build(&a, ba.clone());
        let ib = BitmapIndex::build(&b, bb.clone());
        assert_eq!(
            joint_counts_from_indexes(&ia, &ib),
            joint_histogram(&a, &b, &ba, &bb)
        );
        assert_eq!(
            joint_counts_from_indexes(&ib, &ia),
            joint_histogram(&b, &a, &bb, &ba)
        );
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn joint_rejects_length_mismatch() {
        let b = Binner::fixed_width(0.0, 1.0, 2);
        let _ = joint_histogram(&[0.1], &[0.1, 0.2], &b, &b);
    }
}
