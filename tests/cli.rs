//! End-to-end tests of the `ibis` command-line interface.

use std::process::Command;

fn ibis() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ibis"))
}

#[test]
fn help_prints_usage() {
    let out = ibis().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ibis insitu"));
    assert!(text.contains("ibis mine"));
    assert!(text.contains("ibis query"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ibis().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = ibis()
        .args(["insitu", "--steps", "banana"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--steps"));
}

#[test]
fn query_subcommand_reports_relationship() {
    let out = ibis()
        .args([
            "query",
            "--var-a",
            "temperature",
            "--var-b",
            "oxygen",
            "--grid",
            "32x24x2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mutual information"));
    assert!(text.contains("Pearson"));
    // temperature and oxygen are anticorrelated by construction
    assert!(text.contains("-0.9") || text.contains("-1.0"), "{text}");
}

#[test]
fn query_rejects_unknown_variable() {
    let out = ibis()
        .args(["query", "--var-a", "temperature", "--var-b", "phlogiston"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown variable"));
}

#[test]
fn mine_subcommand_finds_subsets() {
    let out = ibis()
        .args(["mine", "--grid", "64x48x1", "--top", "3"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pairs evaluated"));
    assert!(text.contains("subsets"));
}

#[test]
fn insitu_subcommand_persists_reloadable_indices() {
    let dir = std::env::temp_dir().join("ibis-cli-test-out");
    std::fs::remove_dir_all(&dir).ok();
    let out = ibis()
        .args([
            "insitu", "--sim", "heat3d", "--steps", "8", "--select", "2", "--cores", "4", "--out",
        ])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("selected steps"));
    // the run directory is a valid store with one index per selected step
    let store = ibis::insitu::Store::open(&dir).expect("valid run directory");
    let steps = store.steps();
    assert_eq!(steps.len(), 2, "two selected steps");
    for step in steps {
        let idx = store.get(step, "temperature").expect("valid index");
        assert!(!idx.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn insitu_rejects_out_without_bitmaps() {
    let out = ibis()
        .args([
            "insitu", "--steps", "4", "--select", "2", "--method", "full", "--out", "/tmp/x",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out requires"));
}
