//! Cumulative Frequency Plots (Section 5.5): the paper's accuracy-loss
//! presentation. A point `(x, y)` means a fraction `y` of all measured
//! differences are below `x`; a curve further left means better accuracy.

/// A cumulative frequency plot over a set of non-negative differences.
#[derive(Debug, Clone)]
pub struct Cfp {
    sorted: Vec<f64>,
}

impl Cfp {
    /// Builds the plot from raw values (NaNs are dropped).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cfp { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the plot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v < x) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.sorted.is_empty(), "quantile of empty plot");
        let idx = ((q * (self.sorted.len() - 1) as f64).round()) as usize;
        self.sorted[idx]
    }

    /// Mean of the samples (the paper's "average information loss").
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly-spaced plot points `(x, fraction_below_or_equal)` for printing
    /// a curve with `steps` segments.
    pub fn curve(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 1);
        if self.sorted.is_empty() {
            return vec![];
        }
        let max = *self.sorted.last().unwrap();
        (0..=steps)
            .map(|i| {
                let x = max * i as f64 / steps as f64;
                let y = self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64;
                (x, y)
            })
            .collect()
    }

    /// `true` if this curve is (weakly) left of `other` at every probed
    /// point — i.e. this method is at least as accurate (smaller
    /// differences) as the other.
    pub fn dominates(&self, other: &Cfp, probes: usize) -> bool {
        if self.sorted.is_empty() || other.sorted.is_empty() {
            return other.sorted.is_empty();
        }
        let max = self
            .sorted
            .last()
            .unwrap()
            .max(*other.sorted.last().unwrap());
        (0..=probes).all(|i| {
            let x = max * i as f64 / probes as f64;
            self.fraction_below(x) + 1e-12 >= other.fraction_below(x)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let c = Cfp::from_values(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.5), 0.5);
        assert_eq!(c.fraction_below(100.0), 1.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cfp::from_values((0..100).map(|i| (i as f64).sqrt()).collect());
        let pts = c.curve(20);
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn smaller_errors_dominate() {
        let good = Cfp::from_values(vec![0.1, 0.2, 0.3]);
        let bad = Cfp::from_values(vec![1.0, 2.0, 3.0]);
        assert!(good.dominates(&bad, 50));
        assert!(!bad.dominates(&good, 50));
    }

    #[test]
    fn empty_and_nan_handling() {
        let c = Cfp::from_values(vec![f64::NAN, 1.0]);
        assert_eq!(c.len(), 1);
        let e = Cfp::from_values(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert!(e.curve(10).is_empty());
    }
}
