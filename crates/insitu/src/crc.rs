//! CRC32-C (Castagnoli) — the integrity checksum of store format v2.
//!
//! Software table implementation (reflected polynomial `0x82F63B78`), the
//! same CRC SSE4.2's `crc32` instruction and most storage systems
//! (iSCSI, ext4, Btrfs) compute, so stored checksums remain meaningful to
//! external tooling.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32-C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Continues a CRC32-C over more bytes (for incremental checksumming).
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Little-endian `u32` from the first 4 bytes of `b`; missing bytes read
/// as zero, so short input cannot panic (callers length-check first).
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(a)
}

/// Little-endian `u64` from the first 8 bytes of `b`; same contract as
/// [`le_u32`].
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let oneshot = crc32c(&data);
        let mut inc = 0;
        for chunk in data.chunks(7) {
            inc = crc32c_append(inc, chunk);
        }
        assert_eq!(inc, oneshot);
    }

    #[test]
    fn single_byte_flip_changes_crc() {
        let data = vec![7u8; 100];
        let base = crc32c(&data);
        for i in [0usize, 50, 99] {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(crc32c(&flipped), base, "flip at {i} must be detected");
        }
    }
}
